//! Cross-crate integration: the §4 power pipeline and the §5 combined
//! model, end to end on the simulator.

use mpmc::model::assignment::{Assignment, CombinedModel};
use mpmc::model::power::{build_training_set, CorePowerModel, PowerModel, TrainingOptions};
use mpmc::model::profile::{ProfileOptions, Profiler};
use mpmc::sim::engine::{simulate, Placement, SimOptions};
use mpmc::sim::hpc::EventRates;
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::ProcessSpec;
use mpmc::workloads::spec::{SpecWorkload, WorkloadParams};

fn tiny_machine() -> MachineConfig {
    MachineConfig {
        l2_sets: 64,
        l2_assoc: 8,
        // Short slices keep time-sharing tests fast in debug mode.
        timeslice_s: 0.05,
        ..MachineConfig::two_core_workstation()
    }
}

fn quick_training() -> TrainingOptions {
    TrainingOptions {
        duration_s: 0.3,
        warmup_s: 0.1,
        seed: 21,
        microbench_level_instructions: 60_000,
        microbench_duration_s: 0.9,
        ..Default::default()
    }
}

fn small_suite() -> Vec<WorkloadParams> {
    [SpecWorkload::Gzip, SpecWorkload::Mcf, SpecWorkload::Equake, SpecWorkload::Twolf]
        .iter()
        .map(|w| w.params())
        .collect()
}

fn train(machine: &MachineConfig) -> PowerModel {
    let obs = build_training_set(machine, &small_suite(), &quick_training()).unwrap();
    PowerModel::fit_mvlr(&obs).unwrap()
}

#[test]
fn power_model_tracks_unseen_assignment() {
    let machine = tiny_machine();
    let model = train(&machine);

    // Validate on an assignment the training never saw (two different
    // processes, not N copies of one).
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("vpr", Box::new(SpecWorkload::Vpr.params().generator(64, 1))))
        .unwrap();
    pl.assign(1, ProcessSpec::new("ammp", Box::new(SpecWorkload::Ammp.params().generator(64, 2))))
        .unwrap();
    let run = simulate(
        &machine,
        pl,
        SimOptions { duration_s: 0.6, warmup_s: 0.2, seed: 33, ..Default::default() },
    )
    .unwrap();

    let mut errs = Vec::new();
    for s in run.settled_power() {
        let rates: Vec<EventRates> = run.core_samples.iter().map(|cs| cs[s.period]).collect();
        let est = model.predict_processor(&rates);
        errs.push((est - s.measured_watts).abs() / s.measured_watts);
    }
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(avg < 0.08, "avg sample error {:.2}%", avg * 100.0);
}

#[test]
fn idle_prediction_matches_idle_measurement() {
    let machine = tiny_machine();
    let model = train(&machine);
    let run = simulate(
        &machine,
        Placement::idle(2),
        SimOptions { duration_s: 0.4, warmup_s: 0.1, seed: 3, ..Default::default() },
    )
    .unwrap();
    let est = model.predict_processor(&[EventRates::default(), EventRates::default()]);
    let meas = run.avg_measured_power();
    assert!((est - meas).abs() / meas < 0.08, "idle estimate {est:.2} vs measured {meas:.2}");
}

#[test]
fn combined_model_estimates_pair_power_from_profiles_only() {
    let machine = tiny_machine();
    let model = train(&machine);
    let profiler = Profiler::new(machine.clone()).with_options(ProfileOptions {
        duration_s: 0.3,
        warmup_s: 0.1,
        seed: 17,
        ..Default::default()
    });
    let profiles = vec![
        profiler.profile_full(&SpecWorkload::Mcf.params()).unwrap(),
        profiler.profile_full(&SpecWorkload::Gzip.params()).unwrap(),
    ];

    let combined = CombinedModel::new(&machine, &model);
    let mut asg = Assignment::new(2);
    asg.assign(0, 0).assign(1, 1);
    let est = combined.estimate_processor_power(&profiles, &asg).unwrap();

    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("mcf", Box::new(SpecWorkload::Mcf.params().generator(64, 1))))
        .unwrap();
    pl.assign(1, ProcessSpec::new("gzip", Box::new(SpecWorkload::Gzip.params().generator(64, 2))))
        .unwrap();
    let run = simulate(
        &machine,
        pl,
        SimOptions { duration_s: 0.6, warmup_s: 0.2, seed: 55, ..Default::default() },
    )
    .unwrap();
    let meas = run.avg_measured_power();
    let err = (est - meas).abs() / meas;
    assert!(err < 0.10, "combined estimate {est:.2} vs measured {meas:.2} ({:.1}%)", err * 100.0);
}

#[test]
fn combined_model_ranks_light_vs_heavy_assignments() {
    let machine = tiny_machine();
    let model = train(&machine);
    let profiler = Profiler::new(machine.clone()).with_options(ProfileOptions {
        duration_s: 0.3,
        warmup_s: 0.1,
        seed: 27,
        ..Default::default()
    });
    let profiles = vec![
        profiler.profile_full(&SpecWorkload::Ammp.params()).unwrap(), // busy FP
        profiler.profile_full(&SpecWorkload::Gzip.params()).unwrap(), // light, cache-friendly
    ];
    let combined = CombinedModel::new(&machine, &model);

    // One busy FP process exceeds idle; adding a light second process
    // (which barely contends for cache) raises power further. Note: with
    // a *memory-hog* second process this ordering can legitimately flip —
    // §4.2 of the paper observes that increased cache contention can
    // lower processor power because the fitted c3 is negative.
    let idle = combined.estimate_processor_power(&profiles, &Assignment::new(2)).unwrap();
    let mut one = Assignment::new(2);
    one.assign(0, 0);
    let p_one = combined.estimate_processor_power(&profiles, &one).unwrap();
    let mut two = Assignment::new(2);
    two.assign(0, 0).assign(1, 1);
    let p_two = combined.estimate_processor_power(&profiles, &two).unwrap();
    assert!(p_one > idle + 1.0, "{p_one} vs idle {idle}");
    assert!(p_two > p_one, "{p_two} vs {p_one}");
}

#[test]
fn time_shared_core_estimate_matches_measurement() {
    let machine = tiny_machine();
    let model = train(&machine);
    let profiler = Profiler::new(machine.clone()).with_options(ProfileOptions {
        duration_s: 0.3,
        warmup_s: 0.1,
        seed: 31,
        ..Default::default()
    });
    let profiles = vec![
        profiler.profile_full(&SpecWorkload::Gzip.params()).unwrap(),
        profiler.profile_full(&SpecWorkload::Twolf.params()).unwrap(),
    ];
    let combined = CombinedModel::new(&machine, &model);
    let mut asg = Assignment::new(2);
    asg.assign(0, 0).assign(0, 1); // both on core 0

    let est = combined.estimate_processor_power(&profiles, &asg).unwrap();

    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("gzip", Box::new(SpecWorkload::Gzip.params().generator(64, 1))))
        .unwrap();
    pl.assign(
        0,
        ProcessSpec::new("twolf", Box::new(SpecWorkload::Twolf.params().generator(64, 2))),
    )
    .unwrap();
    let run = simulate(
        &machine,
        pl,
        // Whole number of slice rotations: 0.05 s slices, 2 procs.
        SimOptions { duration_s: 1.0, warmup_s: 0.2, seed: 61, ..Default::default() },
    )
    .unwrap();
    let meas = run.avg_measured_power();
    let err = (est - meas).abs() / meas;
    assert!(err < 0.12, "time-shared estimate {est:.2} vs {meas:.2} ({:.1}%)", err * 100.0);
}
