//! Determinism parity: every parallel fan-out in the pipeline must be
//! bit-identical to its sequential equivalent, for any worker count.
//!
//! The parallel primitives write results into per-index slots and derive
//! all randomness from the task index, never from scheduling order, so
//! `workers ∈ {1, 2, 8}` (and the sequential baseline) must agree on
//! every output bit. These tests pin that contract for the three wired
//! fan-outs: stressmark co-runs inside one profile, batch profiling, and
//! candidate-assignment evaluation.

use mpmc::model::assignment::{Assignment, CombinedModel};
use mpmc::model::feature::FeatureVector;
use mpmc::model::histogram::ReuseHistogram;
use mpmc::model::power::{PowerModel, PowerObservation};
use mpmc::model::profile::{ProcessProfile, ProfileOptions, Profiler};
use mpmc::model::spi::SpiModel;
use mpmc::sim::machine::MachineConfig;
use mpmc::workloads::spec::{SpecWorkload, WorkloadParams};
use rand::Rng;
use rand::SeedableRng;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
}

fn quick_opts(workers: usize) -> ProfileOptions {
    ProfileOptions { duration_s: 0.06, warmup_s: 0.02, seed: 42, workers, ..Default::default() }
}

fn suite() -> Vec<WorkloadParams> {
    [SpecWorkload::Mcf, SpecWorkload::Gzip, SpecWorkload::Art].iter().map(|w| w.params()).collect()
}

/// Exact (bitwise) equality of two feature vectors via their public
/// surface: histogram masses, API, and SPI coefficients determine every
/// derived quantity.
fn assert_features_identical(a: &FeatureVector, b: &FeatureVector, what: &str) {
    assert_eq!(a.name(), b.name(), "{what}: name");
    assert_eq!(a.assoc(), b.assoc(), "{what}: assoc");
    assert_eq!(a.api().to_bits(), b.api().to_bits(), "{what}: api");
    assert_eq!(a.spi_model().alpha().to_bits(), b.spi_model().alpha().to_bits(), "{what}: alpha");
    assert_eq!(a.spi_model().beta().to_bits(), b.spi_model().beta().to_bits(), "{what}: beta");
    assert_eq!(a.histogram().p_inf().to_bits(), b.histogram().p_inf().to_bits(), "{what}: p_inf");
    let (pa, pb) = (a.histogram().probs(), b.histogram().probs());
    assert_eq!(pa.len(), pb.len(), "{what}: histogram depth");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: histogram position {}", i + 1);
    }
}

fn assert_profiles_identical(a: &ProcessProfile, b: &ProcessProfile, what: &str) {
    assert_features_identical(&a.feature, &b.feature, what);
    for (x, y, field) in [
        (a.l1rpi, b.l1rpi, "l1rpi"),
        (a.l2rpi, b.l2rpi, "l2rpi"),
        (a.brpi, b.brpi, "brpi"),
        (a.fppi, b.fppi, "fppi"),
        (a.processor_alone_w, b.processor_alone_w, "processor_alone_w"),
        (a.idle_processor_w, b.idle_processor_w, "idle_processor_w"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field}");
    }
}

#[test]
fn single_profile_is_worker_count_invariant() {
    // The stressmark co-run loop inside one profile fans out over the
    // stress sizes; the derived feature vector must not depend on how
    // many workers ran it.
    let machine = tiny_machine();
    let params = SpecWorkload::Twolf.params();
    let baseline =
        Profiler::new(machine.clone()).with_options(quick_opts(1)).profile(&params).unwrap();
    for workers in [2, 8] {
        let fv = Profiler::new(machine.clone())
            .with_options(quick_opts(workers))
            .profile(&params)
            .unwrap();
        assert_features_identical(&baseline, &fv, &format!("profile workers={workers}"));
    }
}

#[test]
fn batch_profiling_matches_sequential_loop() {
    let machine = tiny_machine();
    let suite = suite();
    // Sequential ground truth: one profile() call per workload.
    let sequential: Vec<FeatureVector> = {
        let p = Profiler::new(machine.clone()).with_options(quick_opts(1));
        suite.iter().map(|w| p.profile(w).unwrap()).collect()
    };
    for workers in WORKER_COUNTS {
        let batch = Profiler::new(machine.clone())
            .with_options(quick_opts(workers))
            .profile_batch(&suite)
            .unwrap();
        assert_eq!(batch.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batch).enumerate() {
            assert_features_identical(s, b, &format!("batch[{i}] workers={workers}"));
        }
    }
}

#[test]
fn full_batch_profiling_matches_sequential_loop() {
    let machine = tiny_machine();
    let suite = suite();
    let sequential: Vec<ProcessProfile> = {
        let p = Profiler::new(machine.clone()).with_options(quick_opts(1));
        suite.iter().map(|w| p.profile_full(w).unwrap()).collect()
    };
    for workers in WORKER_COUNTS {
        let batch = Profiler::new(machine.clone())
            .with_options(quick_opts(workers))
            .profile_full_batch(&suite)
            .unwrap();
        for (i, (s, b)) in sequential.iter().zip(&batch).enumerate() {
            assert_profiles_identical(s, b, &format!("full_batch[{i}] workers={workers}"));
        }
    }
}

/// A hand-built profile so the assignment test needs no simulation runs.
fn synthetic_profile(name: &str, tail: f64, api: f64, machine: &MachineConfig) -> ProcessProfile {
    let head = 1.0 - tail;
    let hist =
        ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail).unwrap();
    let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
    let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
    let feature = FeatureVector::new(
        name,
        hist,
        api,
        SpiModel::new(alpha, beta).unwrap(),
        machine.l2_assoc(),
    )
    .unwrap();
    ProcessProfile {
        feature,
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 60.0,
        idle_processor_w: 44.0,
    }
}

/// A power model fitted on synthetic observations from the machine's
/// ground truth (cheap: no simulator involved).
fn synthetic_power_model(machine: &MachineConfig) -> PowerModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let n = machine.num_cores() as f64;
    let mut obs = Vec::new();
    for _ in 0..200 {
        let ips = rng.gen_range(1e6..2.4e7);
        let rates = mpmc::sim::hpc::EventRates {
            ips,
            l1rps: ips * rng.gen_range(0.2..0.5),
            l2rps: ips * rng.gen_range(0.001..0.05),
            l2mps: ips * rng.gen_range(0.0..0.02),
            brps: ips * rng.gen_range(0.05..0.3),
            fpps: ips * rng.gen_range(0.0..0.3),
        };
        let watts = machine.power.core_power(&rates) + machine.power.uncore_w / n;
        obs.push(PowerObservation { rates, core_watts: watts });
    }
    PowerModel::fit_mvlr(&obs).unwrap()
}

#[test]
fn candidate_estimation_matches_sequential_loop() {
    let machine = MachineConfig::four_core_server();
    let power = synthetic_power_model(&machine);
    let profiles: Vec<ProcessProfile> = [
        ("heavy", 0.30, 0.030),
        ("medium", 0.15, 0.015),
        ("light", 0.05, 0.004),
        ("stream", 0.45, 0.040),
    ]
    .iter()
    .map(|&(name, tail, api)| synthetic_profile(name, tail, api, &machine))
    .collect();

    let mut current = Assignment::new(machine.num_cores());
    current.assign(0, 0).assign(2, 1).assign(3, 3);
    let cores: Vec<usize> = (0..machine.num_cores()).collect();

    // Sequential ground truth on a fresh model (empty memo cache).
    let combined = CombinedModel::new(&machine, &power);
    let sequential: Vec<f64> = cores
        .iter()
        .map(|&c| combined.estimate_after_assigning(&profiles, &current, 2, c).unwrap())
        .collect();

    for workers in WORKER_COUNTS {
        // Fresh model per worker count so the memo cache cannot leak
        // state between configurations.
        let combined = CombinedModel::new(&machine, &power);
        let parallel =
            combined.estimate_candidates(&profiles, &current, 2, &cores, workers).unwrap();
        assert_eq!(parallel.len(), sequential.len());
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "candidate core {i} diverged at workers={workers}: {s} vs {p}"
            );
        }
        assert!(combined.cached_equilibria() > 0, "memo cache should have been populated");
    }
}

#[test]
fn solve_batch_matches_sequential_for_all_worker_counts() {
    use mpmc::math::sync::CancelToken;
    use mpmc::model::equilibrium::CorunSet;
    use mpmc::model::perf::{PerformanceModel, SolverKind};

    let machine = MachineConfig::four_core_server();
    let profiles: Vec<ProcessProfile> = [
        ("heavy", 0.30, 0.030),
        ("medium", 0.15, 0.015),
        ("light", 0.05, 0.004),
        ("stream", 0.45, 0.040),
        ("spiky", 0.22, 0.026),
    ]
    .iter()
    .map(|&(name, tail, api)| synthetic_profile(name, tail, api, &machine))
    .collect();
    let fv: Vec<&FeatureVector> = profiles.iter().map(|p| &p.feature).collect();

    // A mix of cardinalities, permuted member orders, and duplicates.
    let sets = vec![
        CorunSet { features: vec![fv[0], fv[1]] },
        CorunSet { features: vec![fv[2], fv[3], fv[4]] },
        CorunSet { features: vec![fv[1], fv[0]] }, // permuted pair
        CorunSet { features: vec![fv[0], fv[1]] }, // exact duplicate
        CorunSet { features: vec![fv[3], fv[2]] },
        CorunSet { features: vec![fv[0], fv[2], fv[3], fv[4]] },
    ];
    // The same sets fed in a scrambled order.
    let scramble = [5usize, 2, 0, 4, 1, 3];
    let scrambled: Vec<CorunSet<'_>> =
        scramble.iter().map(|&i| CorunSet { features: sets[i].features.clone() }).collect();

    for kind in [SolverKind::Bisection, SolverKind::Newton, SolverKind::Robust] {
        let model = PerformanceModel::new(machine.l2_assoc()).with_solver(kind);
        let sequential: Vec<_> =
            sets.iter().map(|s| model.solve(&s.features).expect("sequential solve")).collect();
        for workers in WORKER_COUNTS {
            let batch = model
                .solve_batch_cancellable(&sets, workers, &CancelToken::never())
                .expect("batch solve");
            for (i, (s, b)) in sequential.iter().zip(&batch).enumerate() {
                assert_eq!(s.window.to_bits(), b.window.to_bits(), "{kind:?} set {i} w={workers}");
                for (x, y) in s.sizes.iter().zip(&b.sizes) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind:?} set {i} workers={workers}");
                }
            }
            // Scrambled submission order: each set's answer depends only
            // on its own contents, never on batch position.
            let shuffled = model
                .solve_batch_cancellable(&scrambled, workers, &CancelToken::never())
                .expect("scrambled batch solve");
            for (pos, &orig) in scramble.iter().enumerate() {
                let (s, b) = (&sequential[orig], &shuffled[pos]);
                assert_eq!(s.window.to_bits(), b.window.to_bits(), "{kind:?} scrambled {pos}");
                for (x, y) in s.sizes.iter().zip(&b.sizes) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind:?} scrambled {pos} w={workers}");
                }
            }
        }
    }
}

#[test]
fn warm_start_is_deterministic_and_cold_is_bit_stable() {
    // Warm-started solving is a *policy* change (different Newton seeds),
    // so it is not required to be bit-identical to the cold path — but it
    // must be deterministic across runs and worker counts, and leaving it
    // off must keep estimates bit-identical to a cache-disabled model.
    let machine = MachineConfig::four_core_server();
    let power = synthetic_power_model(&machine);
    let profiles: Vec<ProcessProfile> = [
        ("heavy", 0.30, 0.030),
        ("medium", 0.15, 0.015),
        ("light", 0.05, 0.004),
        ("stream", 0.45, 0.040),
    ]
    .iter()
    .map(|&(name, tail, api)| synthetic_profile(name, tail, api, &machine))
    .collect();
    let mut current = Assignment::new(machine.num_cores());
    current.assign(0, 0).assign(1, 1).assign(2, 3);
    let cores: Vec<usize> = (0..machine.num_cores()).collect();

    let sweep = |warm: bool, workers: usize| -> Vec<u64> {
        let cm = CombinedModel::new(&machine, &power).with_warm_start(warm);
        let mut bits = Vec::new();
        for round in 0..2 {
            let est = cm.estimate_candidates(&profiles, &current, 2, &cores, workers).unwrap();
            bits.extend(est.iter().map(|x| x.to_bits()));
            assert!(round == 0 || !bits.is_empty());
        }
        bits
    };

    let cold_ref = sweep(false, 1);
    let warm_ref = sweep(true, 1);
    for workers in WORKER_COUNTS {
        assert_eq!(sweep(false, workers), cold_ref, "cold workers={workers}");
        assert_eq!(sweep(true, workers), warm_ref, "warm workers={workers}");
    }
    // Cold-path answers are the contract: identical with the cache (and
    // its batch prestage) disabled entirely.
    let uncached = CombinedModel::new(&machine, &power).with_equilibrium_cache_capacity(0);
    let plain: Vec<u64> = cores
        .iter()
        .map(|&c| uncached.estimate_after_assigning(&profiles, &current, 2, c).unwrap().to_bits())
        .collect();
    assert_eq!(&cold_ref[..cores.len()], &plain[..], "prestage must not change cold answers");
}

/// The placement optimizer's contract: same answer bits for any worker
/// count and any submission order of the process list, on all three
/// objectives — and the answer is the exhaustive optimum whenever the
/// exact engine runs. Pinned on a seeded 4-core/8-process instance
/// (the ISSUE acceptance instance).
#[test]
fn optimizer_is_worker_count_and_order_invariant_and_exact() {
    use mpmc::math::sync::CancelToken;
    use mpmc::model::optimize::{self, Objective, OptimizeOptions, SearchMethod};

    let machine = MachineConfig::four_core_server();
    let power = synthetic_power_model(&machine);
    let combined = CombinedModel::new(&machine, &power);
    let profiles: Vec<ProcessProfile> = [
        ("heavy", 0.30, 0.030),
        ("medium", 0.15, 0.015),
        ("light", 0.05, 0.004),
        ("stream", 0.45, 0.040),
        ("spiky", 0.22, 0.026),
        ("cool", 0.10, 0.008),
    ]
    .iter()
    .map(|&(name, tail, api)| synthetic_profile(name, tail, api, &machine))
    .collect();
    // Eight processes over six distinct profiles: duplicates exercise the
    // symmetry pruning without making every placement equivalent.
    let processes = [0usize, 1, 2, 3, 4, 5, 0, 3];
    let scrambled = [3usize, 0, 5, 4, 3, 2, 1, 0];
    let cancel = CancelToken::never();

    let objectives =
        [Objective::MinPower, Objective::MinMakespan, Objective::PowerCapped { cap_w: 1e6 }];
    for objective in objectives {
        let truth = optimize::brute_force(&combined, &profiles, &processes, objective, &cancel)
            .expect("brute force");
        let baseline = optimize::optimize(
            &combined,
            &profiles,
            &processes,
            objective,
            &OptimizeOptions { workers: 1, ..OptimizeOptions::default() },
            &cancel,
        )
        .expect("optimize");
        assert_eq!(baseline.method, SearchMethod::Exact, "{objective:?} should fit the limit");
        assert_eq!(
            baseline.power_w.to_bits(),
            truth.power_w.to_bits(),
            "{objective:?}: exact engine must reproduce the exhaustive optimum's power"
        );
        assert_eq!(
            baseline.makespan.to_bits(),
            truth.makespan.to_bits(),
            "{objective:?}: exact engine must reproduce the exhaustive optimum's makespan"
        );
        for workers in WORKER_COUNTS {
            for procs in [&processes[..], &scrambled[..]] {
                let got = optimize::optimize(
                    &combined,
                    &profiles,
                    procs,
                    objective,
                    &OptimizeOptions { workers, ..OptimizeOptions::default() },
                    &cancel,
                )
                .expect("optimize");
                // Scrambled submission holds the same multiset of
                // profiles only when indices repeat identically; here
                // both orders place the same eight profile draws.
                let same_multiset = {
                    let mut a = procs.to_vec();
                    let mut b = processes.to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    a == b
                };
                assert!(same_multiset, "test bug: orders must be permutations of each other");
                assert_eq!(
                    got.power_w.to_bits(),
                    baseline.power_w.to_bits(),
                    "{objective:?} power diverged at workers={workers}"
                );
                assert_eq!(
                    got.makespan.to_bits(),
                    baseline.makespan.to_bits(),
                    "{objective:?} makespan diverged at workers={workers}"
                );
                assert_eq!(
                    got.assignment.to_queues(),
                    baseline.assignment.to_queues(),
                    "{objective:?} placement diverged at workers={workers}"
                );
            }
        }
    }

    // The large-machine path keeps the same contract (bit-stability
    // across workers), even though it is not required to be exact.
    let local_base = optimize::optimize(
        &combined,
        &profiles,
        &processes,
        Objective::MinPower,
        &OptimizeOptions { workers: 1, exhaustive_leaf_limit: 0, ..OptimizeOptions::default() },
        &cancel,
    )
    .expect("local search");
    assert_eq!(local_base.method, SearchMethod::LocalSearch);
    for workers in WORKER_COUNTS {
        let got = optimize::optimize(
            &combined,
            &profiles,
            &processes,
            Objective::MinPower,
            &OptimizeOptions { workers, exhaustive_leaf_limit: 0, ..OptimizeOptions::default() },
            &cancel,
        )
        .expect("local search");
        assert_eq!(
            got.power_w.to_bits(),
            local_base.power_w.to_bits(),
            "local search diverged at workers={workers}"
        );
        assert_eq!(got.assignment.to_queues(), local_base.assignment.to_queues());
    }
}

// ---------------------------------------------------------------------
// Event-kernel parity and determinism battery (ISSUE 9).
// ---------------------------------------------------------------------

mod event_kernel {
    use super::WORKER_COUNTS;
    use mpmc::math::parallel::par_map;
    use mpmc::sim::engine::{simulate, EngineKind, Placement, SimOptions, SimResult};
    use mpmc::sim::machine::MachineConfig;
    use mpmc::sim::process::ProcessSpec;
    use mpmc::workloads::spec::SpecWorkload;

    /// Short slices so sub-second corpus runs still context-switch.
    fn sliced(base: MachineConfig) -> MachineConfig {
        MachineConfig { timeslice_s: 0.008, ..base }
    }

    fn spec(w: SpecWorkload, sets: usize, region: u64) -> ProcessSpec {
        let p = w.params();
        ProcessSpec::new(p.name, Box::new(p.generator(sets, region)))
    }

    /// The seeded parity corpus: machine + placement + options, covering
    /// solo cores, time-shared cores (2- and 3-deep), idle cores, both
    /// dies of the server, and non-default scheduler weights.
    fn corpus() -> Vec<(MachineConfig, Placement, SimOptions)> {
        use SpecWorkload::{Art, Equake, Gzip, Mcf, Twolf, Vpr};
        let opts = |seed: u64| SimOptions {
            duration_s: 0.08,
            warmup_s: 0.02,
            seed,
            ..SimOptions::default()
        };
        let mut corpus = Vec::new();

        // 1. Solo process, one idle core.
        let m = sliced(MachineConfig::two_core_workstation());
        let mut pl = Placement::idle(2);
        pl.assign(0, spec(Mcf, m.l2_sets, 1)).unwrap();
        corpus.push((m, pl, opts(101)));

        // 2. Time-shared pair vs solo neighbor.
        let m = sliced(MachineConfig::two_core_workstation());
        let mut pl = Placement::idle(2);
        pl.assign(0, spec(Mcf, m.l2_sets, 1)).unwrap();
        pl.assign(0, spec(Gzip, m.l2_sets, 2)).unwrap();
        pl.assign(1, spec(Art, m.l2_sets, 3)).unwrap();
        corpus.push((m, pl, opts(202)));

        // 3. Deep time-sharing: three processes on one core, two on the
        //    other.
        let m = sliced(MachineConfig::two_core_workstation());
        let mut pl = Placement::idle(2);
        pl.assign(0, spec(Twolf, m.l2_sets, 1)).unwrap();
        pl.assign(0, spec(Vpr, m.l2_sets, 2)).unwrap();
        pl.assign(0, spec(Equake, m.l2_sets, 3)).unwrap();
        pl.assign(1, spec(Mcf, m.l2_sets, 4)).unwrap();
        pl.assign(1, spec(Gzip, m.l2_sets, 5)).unwrap();
        corpus.push((m, pl, opts(303)));

        // 4. Four-core server, one process per core (both dies busy).
        let m = sliced(MachineConfig::four_core_server());
        let mut pl = Placement::idle(4);
        for (c, w) in [Mcf, Gzip, Art, Twolf].into_iter().enumerate() {
            pl.assign(c, spec(w, m.l2_sets, c as u64 + 1)).unwrap();
        }
        corpus.push((m, pl, opts(404)));

        // 5. Server with pairs on cores 0 and 2, cores 1 and 3 idle:
        //    one contended core per die plus idle cores.
        let m = sliced(MachineConfig::four_core_server());
        let mut pl = Placement::idle(4);
        pl.assign(0, spec(Mcf, m.l2_sets, 1)).unwrap();
        pl.assign(0, spec(Art, m.l2_sets, 2)).unwrap();
        pl.assign(2, spec(Equake, m.l2_sets, 3)).unwrap();
        pl.assign(2, spec(Vpr, m.l2_sets, 4)).unwrap();
        corpus.push((m, pl, opts(505)));

        // 6. Weighted time-sharing (non-default scheduler weights).
        let m = sliced(MachineConfig::two_core_workstation());
        let mut pl = Placement::idle(2);
        pl.assign(0, spec(Mcf, m.l2_sets, 1)).unwrap();
        pl.assign(0, spec(Gzip, m.l2_sets, 2)).unwrap();
        let o = SimOptions { weights: Some(vec![vec![3.0, 1.0], vec![]]), ..opts(606) };
        corpus.push((m, pl, o));

        // 7. Laptop preset, whole machine idle except one core.
        let m = sliced(MachineConfig::duo_laptop());
        let mut pl = Placement::idle(m.num_cores());
        pl.assign(1, spec(Twolf, m.l2_sets, 1)).unwrap();
        corpus.push((m, pl, opts(707)));

        corpus
    }

    fn run(entry: usize, engine: EngineKind) -> SimResult {
        let (m, pl, opts) = corpus().remove(entry);
        simulate(&m, pl, SimOptions { engine, ..opts }).expect("corpus entry must simulate")
    }

    /// Tentpole acceptance: without arrivals/departures the event kernel
    /// reproduces the lockstep oracle bit-exactly — processes, HPC
    /// buckets, power samples, switch counts — on every corpus entry,
    /// and the event-kernel answers are worker-count invariant when the
    /// corpus is fanned out through the parallel map.
    #[test]
    fn lockstep_parity_corpus_is_bit_exact_for_all_worker_counts() {
        let n = corpus().len();
        assert!(n >= 6, "corpus must stay at >= 6 seeded placements");
        let oracle: Vec<SimResult> = (0..n).map(|i| run(i, EngineKind::Lockstep)).collect();
        // Sanity: the corpus actually exercises scheduling.
        assert!(oracle.iter().any(|r| r.context_switches > 0));
        assert!(oracle.iter().all(|r| r.slice_expiries > 0));
        for workers in WORKER_COUNTS {
            let events: Vec<SimResult> =
                par_map((0..n).collect(), workers, |_, i| run(i, EngineKind::Events));
            for (i, (ev, ls)) in events.iter().zip(&oracle).enumerate() {
                assert_eq!(ev, ls, "corpus entry {i} diverged at workers={workers}");
            }
        }
    }

    /// A churn placement (arrivals and departures) built by assigning
    /// cores in the given order; the per-core spec lists are identical
    /// regardless, so results must be too.
    fn churn_placement(m: &MachineConfig, core_order: &[usize]) -> Placement {
        let end = (0.08 * m.freq_hz) as u64;
        let mut pl = Placement::idle(2);
        for &c in core_order {
            if c == 0 {
                pl.assign(0, spec(SpecWorkload::Mcf, m.l2_sets, 1)).unwrap();
                pl.assign(0, spec(SpecWorkload::Gzip, m.l2_sets, 2).with_arrival(end / 3)).unwrap();
            } else {
                pl.assign(
                    1,
                    spec(SpecWorkload::Art, m.l2_sets, 3)
                        .with_arrival(end / 5)
                        .with_departure(3 * end / 4),
                )
                .unwrap();
                pl.assign(1, spec(SpecWorkload::Twolf, m.l2_sets, 4).with_departure(end / 2))
                    .unwrap();
            }
        }
        pl
    }

    /// Scrambled construction order and parallel fan-out leave a churn
    /// run bit-identical: event ordering is `(time, seq)`, never
    /// insertion order, and arrival specs are keyed by placement
    /// position.
    #[test]
    fn churn_runs_are_order_and_worker_count_invariant() {
        let m = sliced(MachineConfig::two_core_workstation());
        let opts =
            SimOptions { duration_s: 0.08, warmup_s: 0.02, seed: 909, ..SimOptions::default() };
        let baseline = simulate(&m, churn_placement(&m, &[0, 1]), opts.clone()).unwrap();
        // The windows took effect: the departing process is cheaper than
        // its full-run core mate would be, and switching happened.
        assert!(baseline.context_switches > 0);
        assert!(baseline.processes.iter().all(|p| p.counters.instructions > 0));
        let scrambled = simulate(&m, churn_placement(&m, &[1, 0]), opts.clone()).unwrap();
        assert_eq!(baseline, scrambled, "construction order leaked into the schedule");
        for workers in WORKER_COUNTS {
            let runs: Vec<SimResult> = par_map(vec![0u8; 4], workers, |_, _| {
                simulate(&m, churn_placement(&m, &[0, 1]), opts.clone()).unwrap()
            });
            for (i, r) in runs.iter().enumerate() {
                assert_eq!(r, &baseline, "churn run {i} diverged at workers={workers}");
            }
        }
    }

    /// The lockstep oracle stays compiled and refuses what it cannot
    /// express, rather than silently ignoring residency windows.
    #[test]
    fn lockstep_oracle_rejects_churn_placements() {
        let m = sliced(MachineConfig::two_core_workstation());
        let opts = SimOptions {
            duration_s: 0.08,
            warmup_s: 0.02,
            seed: 909,
            engine: EngineKind::Lockstep,
            ..SimOptions::default()
        };
        let err = simulate(&m, churn_placement(&m, &[0, 1]), opts).unwrap_err();
        assert!(err.to_string().contains("lockstep"), "{err}");
    }
}

/// The serving layer must not cost a single bit of determinism: answers
/// produced under concurrency — through admission control, single-flight
/// coalescing, and the cancellable (deadline-carrying) solver entry
/// point — are bit-identical to a sequential `CombinedModel` solve of
/// the same placement. Degraded answers are excluded by construction:
/// the breaker never trips here, and the test asserts no response
/// carries the `degraded` tag.
#[test]
fn service_answers_match_sequential_solves_bit_for_bit() {
    use mpmc_service::json::{self, Json};
    use mpmc_service::{PredictionService, ServeOptions};
    use std::io::{BufRead, BufReader, Write};

    let machine = MachineConfig::two_core_workstation();
    let power = synthetic_power_model(&machine);
    let a = synthetic_profile("a", 0.4, 0.03, &machine);
    let b = synthetic_profile("b", 0.1, 0.01, &machine);

    // Sequential ground truth: both processes share the L2, so this is
    // a real contended equilibrium solve.
    let mut asg = Assignment::new(machine.num_cores());
    asg.assign(0, 0).assign(1, 1);
    let reference = CombinedModel::new(&machine, &power);
    let truth = reference
        .estimate_processor_power(&[a.clone(), b.clone()], &asg)
        .expect("sequential solve");

    // A service with room for everyone: nothing sheds, nothing
    // degrades; concurrency and single-flight are the only variables.
    let opts = ServeOptions {
        workers: 2,
        max_inflight: 16,
        max_queued: 16,
        singleflight_wait_ms: 30_000,
        ..ServeOptions::default()
    };
    let service = PredictionService::with_options(machine.clone(), power.clone(), opts);
    service.register_profile("a", a).expect("register a");
    service.register_profile("b", b).expect("register b");

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let service = &service;
        let server = scope.spawn(move || service.run_tcp(listener));

        let clients = 8;
        let rounds = 3;
        let mut workers = Vec::new();
        for c in 0..clients {
            workers.push(scope.spawn(move || -> Vec<u64> {
                let stream = std::net::TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut bits = Vec::new();
                for r in 0..rounds {
                    // Odd clients route through the deadline-carrying
                    // (cancellable) solver entry point; the budget is
                    // far too generous to ever fire.
                    let req = if c % 2 == 1 {
                        format!(
                            r#"{{"id":{r},"op":"estimate","assignment":[["a"],["b"]],"deadline_ms":600000}}"#
                        )
                    } else {
                        format!(r#"{{"id":{r},"op":"estimate","assignment":[["a"],["b"]]}}"#)
                    };
                    writer.write_all(req.as_bytes()).expect("send");
                    writer.write_all(b"\n").expect("send");
                    writer.flush().expect("flush");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("recv");
                    let resp = json::parse(line.trim()).expect("well-formed response");
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
                    assert_eq!(resp.get("degraded"), None, "healthy answers are untagged");
                    bits.push(
                        resp.get("power_w").and_then(Json::as_f64).expect("power_w").to_bits(),
                    );
                }
                bits
            }));
        }
        for worker in workers {
            for (r, got) in worker.join().expect("client").into_iter().enumerate() {
                assert_eq!(
                    got,
                    truth.to_bits(),
                    "round {r}: service answer diverged from the sequential solve"
                );
            }
        }

        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer.write_all(b"{\"op\":\"shutdown\"}\n").expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        server.join().expect("server thread").expect("run_tcp");
    });
}
