//! Cross-crate behavioural tests of the simulator substrate under
//! realistic workloads: conservation laws, determinism, and the physical
//! effects the models rely on.

use mpmc::sim::engine::{simulate, Placement, SimOptions, SimResult};
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::ProcessSpec;
use mpmc::workloads::spec::SpecWorkload;
use mpmc::workloads::stressmark::Stressmark;

fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
}

fn run_pair(machine: &MachineConfig, a: SpecWorkload, b: SpecWorkload, seed: u64) -> SimResult {
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new(a.name(), Box::new(a.params().generator(machine.l2_sets, 1))))
        .unwrap();
    pl.assign(1, ProcessSpec::new(b.name(), Box::new(b.params().generator(machine.l2_sets, 2))))
        .unwrap();
    simulate(
        machine,
        pl,
        SimOptions { duration_s: 0.5, warmup_s: 0.15, seed, ..Default::default() },
    )
    .unwrap()
}

#[test]
fn occupancies_never_exceed_cache() {
    let m = tiny_machine();
    for (a, b) in [
        (SpecWorkload::Mcf, SpecWorkload::Art),
        (SpecWorkload::Gzip, SpecWorkload::Gzip),
        (SpecWorkload::Equake, SpecWorkload::Twolf),
    ] {
        let r = run_pair(&m, a, b, 9);
        let total: f64 = r.processes.iter().map(|p| p.avg_ways).sum();
        assert!(total <= m.l2_assoc as f64 + 1e-9, "{a}/{b}: {total} ways");
    }
}

#[test]
fn event_counts_are_internally_consistent() {
    let m = tiny_machine();
    let r = run_pair(&m, SpecWorkload::Vpr, SpecWorkload::Ammp, 11);
    for p in &r.processes {
        let c = &p.counters;
        assert!(c.l2_misses <= c.l2_refs, "{}: misses > refs", p.name);
        assert!(c.l2_refs <= c.instructions, "{}: refs > instructions", p.name);
        assert!(c.instructions > 0);
        assert!(p.active_seconds > 0.0);
        // Per-core sample totals cover the same events at the core level.
    }
    // Core samples: summed rates x period should be close to process totals
    // for single-process cores (within warmup-boundary slack).
    for core in 0..2 {
        let p = &r.processes[core];
        let total_instr: f64 = r.core_samples[core]
            .iter()
            .skip(r.warmup_periods)
            .map(|s| s.ips * r.sample_period_s)
            .sum();
        let ratio = total_instr / p.counters.instructions as f64;
        assert!((0.9..=1.1).contains(&ratio), "core {core}: ratio {ratio}");
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let m = tiny_machine();
    let a = run_pair(&m, SpecWorkload::Mcf, SpecWorkload::Gzip, 1234);
    let b = run_pair(&m, SpecWorkload::Mcf, SpecWorkload::Gzip, 1234);
    assert_eq!(a.processes[0].counters, b.processes[0].counters);
    assert_eq!(a.processes[1].counters, b.processes[1].counters);
    assert_eq!(a.power.len(), b.power.len());
    for (x, y) in a.power.iter().zip(&b.power) {
        assert_eq!(x.measured_watts, y.measured_watts);
    }
}

#[test]
fn stressmark_partitions_the_cache_as_designed() {
    // What the profiler actually relies on (it anchors MPA samples at the
    // *measured* occupancy): (1) the stressmark never exceeds its
    // footprint; (2) against a mild co-runner it holds essentially all of
    // it; (3) growing the footprint monotonically squeezes the victim, so
    // the sweep covers the occupancy range.
    let m = tiny_machine();
    let co_run = |victim: SpecWorkload, s: usize| {
        let mut pl = Placement::idle(2);
        pl.assign(
            0,
            ProcessSpec::new(victim.name(), Box::new(victim.params().generator(m.l2_sets, 1))),
        )
        .unwrap();
        pl.assign(1, ProcessSpec::new("stress", Box::new(Stressmark::new(s, m.l2_sets, 2))))
            .unwrap();
        let r = simulate(
            &m,
            pl,
            SimOptions { duration_s: 0.5, warmup_s: 0.2, seed: 77, ..Default::default() },
        )
        .unwrap();
        (r.processes[0].avg_ways, r.processes[1].avg_ways)
    };

    // (1) + (2): against cache-friendly gzip the footprint is held tight.
    for s in [2usize, 4, 6] {
        let (_, stress_ways) = co_run(SpecWorkload::Gzip, s);
        assert!(stress_ways <= s as f64 + 1e-9, "stressmark({s}) exceeded its footprint");
        assert!(
            stress_ways > s as f64 - 0.7,
            "stressmark({s}) only holds {stress_ways:.2} ways vs gzip"
        );
    }

    // (3): against hog mcf, occupancy still responds monotonically to s
    // even though mcf steals transiently.
    let mut prev_victim = f64::INFINITY;
    for s in [1usize, 3, 5, 7] {
        let (victim_ways, stress_ways) = co_run(SpecWorkload::Mcf, s);
        assert!(stress_ways <= s as f64 + 1e-9);
        assert!(
            victim_ways < prev_victim + 0.3,
            "victim occupancy did not shrink: {victim_ways:.2} after {prev_victim:.2}"
        );
        prev_victim = victim_ways;
    }
}

#[test]
fn memory_bound_workloads_draw_less_power_than_compute_bound() {
    // The negative-c3 phenomenon at the system level: a stalling process
    // burns less than a busily computing one.
    let m = tiny_machine();
    let run_alone = |w: SpecWorkload| {
        let mut pl = Placement::idle(2);
        pl.assign(0, ProcessSpec::new(w.name(), Box::new(w.params().generator(m.l2_sets, 1))))
            .unwrap();
        simulate(
            &m,
            pl,
            SimOptions { duration_s: 0.5, warmup_s: 0.15, seed: 13, ..Default::default() },
        )
        .unwrap()
        .avg_measured_power()
    };
    let p_mcf = run_alone(SpecWorkload::Mcf);
    let p_gzip = run_alone(SpecWorkload::Gzip);
    assert!(p_mcf < p_gzip, "mcf (stalling) {p_mcf:.2} W vs gzip (busy) {p_gzip:.2} W");
}

#[test]
fn four_core_machine_runs_all_dies() {
    let m = MachineConfig { l2_sets: 64, ..MachineConfig::four_core_server() };
    let mut pl = Placement::idle(4);
    for (core, w) in [SpecWorkload::Gzip, SpecWorkload::Mcf, SpecWorkload::Art, SpecWorkload::Vpr]
        .iter()
        .enumerate()
    {
        pl.assign(
            core,
            ProcessSpec::new(w.name(), Box::new(w.params().generator(m.l2_sets, core as u64 + 1))),
        )
        .unwrap();
    }
    let r = simulate(
        &m,
        pl,
        SimOptions { duration_s: 0.4, warmup_s: 0.1, seed: 3, ..Default::default() },
    )
    .unwrap();
    assert_eq!(r.processes.len(), 4);
    for p in &r.processes {
        assert!(p.counters.instructions > 0, "{} never ran", p.name);
    }
    // Dies are independent caches: occupancy sums are per die.
    let die0: f64 = r.processes[..2].iter().map(|p| p.avg_ways).sum();
    let die1: f64 = r.processes[2..].iter().map(|p| p.avg_ways).sum();
    assert!(die0 <= 16.0 + 1e-9 && die1 <= 16.0 + 1e-9);
}
