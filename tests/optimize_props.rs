//! Property battery for the placement optimizer (`core::optimize`).
//!
//! Three contracts, over randomized instances:
//!
//! 1. the result is always a *complete, valid* assignment — every
//!    submitted process lands on exactly one in-range core;
//! 2. the chosen placement's objective value is never worse than a
//!    seeded random placement of the same processes (the optimizer must
//!    at minimum beat the null policy it is replacing);
//! 3. on instances small enough to enumerate, the default engine's
//!    answer matches `brute_force` bit for bit.

use mpmc::math::sync::CancelToken;
use mpmc::model::assignment::{Assignment, CombinedModel};
use mpmc::model::feature::FeatureVector;
use mpmc::model::histogram::ReuseHistogram;
use mpmc::model::optimize::{self, Objective, OptimizeOptions};
use mpmc::model::power::{PowerModel, PowerObservation};
use mpmc::model::profile::ProcessProfile;
use mpmc::model::spi::SpiModel;
use mpmc::sim::machine::MachineConfig;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;

fn synthetic_profile(name: &str, tail: f64, api: f64, machine: &MachineConfig) -> ProcessProfile {
    let head = 1.0 - tail;
    let hist =
        ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail).unwrap();
    let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
    let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
    let feature = FeatureVector::new(
        name,
        hist,
        api,
        SpiModel::new(alpha, beta).unwrap(),
        machine.l2_assoc(),
    )
    .unwrap();
    ProcessProfile {
        feature,
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 60.0,
        idle_processor_w: 44.0,
    }
}

fn synthetic_power_model(machine: &MachineConfig) -> PowerModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let n = machine.num_cores() as f64;
    let mut obs = Vec::new();
    for _ in 0..200 {
        let ips = rng.gen_range(1e6..2.4e7);
        let rates = mpmc::sim::hpc::EventRates {
            ips,
            l1rps: ips * rng.gen_range(0.2..0.5),
            l2rps: ips * rng.gen_range(0.001..0.05),
            l2mps: ips * rng.gen_range(0.0..0.02),
            brps: ips * rng.gen_range(0.05..0.3),
            fpps: ips * rng.gen_range(0.0..0.3),
        };
        let watts = machine.power.core_power(&rates) + machine.power.uncore_w / n;
        obs.push(PowerObservation { rates, core_watts: watts });
    }
    PowerModel::fit_mvlr(&obs).unwrap()
}

/// A pool of distinct profiles the strategies draw process lists from.
fn profile_pool(machine: &MachineConfig) -> Vec<ProcessProfile> {
    [
        ("heavy", 0.30, 0.030),
        ("medium", 0.15, 0.015),
        ("light", 0.05, 0.004),
        ("stream", 0.45, 0.040),
        ("spiky", 0.22, 0.026),
        ("cool", 0.10, 0.008),
    ]
    .iter()
    .map(|&(name, tail, api)| synthetic_profile(name, tail, api, machine))
    .collect()
}

/// Uniform random placement of the same process list, from the seed the
/// optimizer was handed — the baseline property 2 compares against.
fn random_placement(
    seed: u64,
    processes: &[usize],
    num_cores: usize,
) -> Result<Assignment, mpmc::model::ModelError> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut asg = Assignment::new(num_cores);
    for &p in processes {
        let core = rng.gen_range(0..num_cores);
        asg.try_assign(core, p)?;
    }
    Ok(asg)
}

fn objective_value<M: mpmc::model::power::CorePowerModel + Sync>(
    combined: &CombinedModel<'_, M>,
    profiles: &[ProcessProfile],
    asg: &Assignment,
    objective: Objective,
) -> f64 {
    match objective {
        Objective::MinPower => combined.estimate_processor_power(profiles, asg).unwrap(),
        Objective::MinMakespan => combined.estimate_makespan(profiles, asg).unwrap(),
        // Under a generous cap the capped objective ranks by makespan
        // among feasible placements; the huge cap keeps everything
        // feasible so the makespan is the comparable value.
        Objective::PowerCapped { .. } => combined.estimate_makespan(profiles, asg).unwrap(),
    }
}

fn objective_from(tag: u8) -> Objective {
    match tag % 3 {
        0 => Objective::MinPower,
        1 => Objective::MinMakespan,
        _ => Objective::PowerCapped { cap_w: 1e6 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: every submitted process is placed exactly once, on an
    /// in-range core, for both engines (exact and forced local search).
    #[test]
    fn optimizer_output_is_complete_and_valid(
        procs in proptest::collection::vec(0usize..6, 1..=7),
        tag in 0u8..3,
        seed in 0u64..1000,
        force_local_tag in 0u8..2,
    ) {
        let force_local = force_local_tag == 1;
        let machine = MachineConfig::four_core_server();
        let power = synthetic_power_model(&machine);
        let combined = CombinedModel::new(&machine, &power);
        let profiles = profile_pool(&machine);
        let objective = objective_from(tag);
        let opts = OptimizeOptions {
            seed,
            exhaustive_leaf_limit: if force_local { 0 } else { 20_000 },
            ..OptimizeOptions::default()
        };
        let got = optimize::optimize(
            &combined, &profiles, &procs, objective, &opts, &CancelToken::never(),
        ).unwrap();
        let queues = got.assignment.to_queues();
        prop_assert_eq!(queues.len(), machine.num_cores());
        let mut placed: Vec<usize> = queues.iter().flatten().copied().collect();
        placed.sort_unstable();
        let mut want = procs.clone();
        want.sort_unstable();
        prop_assert_eq!(placed, want, "every process on exactly one core");
        prop_assert!(got.power_w.is_finite() && got.power_w > 0.0);
        prop_assert!(got.makespan.is_finite() && got.makespan > 0.0);
    }

    /// Property 2: never worse than the seeded random baseline.
    #[test]
    fn optimizer_never_loses_to_random_baseline(
        procs in proptest::collection::vec(0usize..6, 2..=6),
        tag in 0u8..3,
        seed in 0u64..1000,
    ) {
        let machine = MachineConfig::four_core_server();
        let power = synthetic_power_model(&machine);
        let combined = CombinedModel::new(&machine, &power);
        let profiles = profile_pool(&machine);
        let objective = objective_from(tag);
        let opts = OptimizeOptions { seed, ..OptimizeOptions::default() };
        let got = optimize::optimize(
            &combined, &profiles, &procs, objective, &opts, &CancelToken::never(),
        ).unwrap();
        let chosen = objective_value(&combined, &profiles, &got.assignment, objective);
        let random = random_placement(seed, &procs, machine.num_cores()).unwrap();
        let baseline = objective_value(&combined, &profiles, &random, objective);
        prop_assert!(
            chosen <= baseline * (1.0 + 1e-12),
            "{objective:?}: chosen {chosen} worse than random {baseline}"
        );
    }

    /// Property 3: small instances match exhaustive enumeration bit for bit.
    #[test]
    fn optimizer_matches_brute_force_on_small_instances(
        procs in proptest::collection::vec(0usize..6, 1..=5),
        tag in 0u8..3,
    ) {
        let machine = MachineConfig::four_core_server();
        let power = synthetic_power_model(&machine);
        let combined = CombinedModel::new(&machine, &power);
        let profiles = profile_pool(&machine);
        let objective = objective_from(tag);
        let cancel = CancelToken::never();
        let got = optimize::optimize(
            &combined, &profiles, &procs, objective,
            &OptimizeOptions::default(), &cancel,
        ).unwrap();
        let truth = optimize::brute_force(&combined, &profiles, &procs, objective, &cancel)
            .unwrap();
        // Distinct placements can tie on the objective (duplicate
        // profiles make ties common), and the two engines may pick
        // different tied winners — so compare objective values, which a
        // tie leaves identical, not whole placements.
        match objective {
            Objective::MinPower => {
                prop_assert_eq!(got.power_w.to_bits(), truth.power_w.to_bits());
            }
            Objective::MinMakespan | Objective::PowerCapped { .. } => {
                prop_assert_eq!(got.makespan.to_bits(), truth.makespan.to_bits());
            }
        }
    }
}
