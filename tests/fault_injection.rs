//! Fault-injection robustness tests.
//!
//! Every fault a [`cmpsim::faults::FaultPlan`] can inject — corrupted
//! trace files, scrambled persisted profiles, NaN/negative histogram
//! mass, dropped measurement samples, starved solver budgets — must
//! surface as a typed [`ModelError`] or a degraded-but-finite
//! prediction. A panic anywhere in these tests is a bug.

use cmpsim::faults::{Fault, FaultPlan};
use mpmc::model::equilibrium::{self, SolveMethod, SolveOptions};
use mpmc::model::feature::FeatureVector;
use mpmc::model::histogram::ReuseHistogram;
use mpmc::model::persist;
use mpmc::model::spi::SpiModel;
use mpmc::model::ModelError;
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::Step;
use mpmc::sim::trace::{miss_ratio_curve, stack_distance_histogram, Trace};
use mpmc::sim::types::LineAddr;
use mpmc::workloads::spec::SpecWorkload;

fn sample_trace(n: usize) -> Trace {
    let mut t = Trace::new();
    for i in 0..n {
        t.push(Step {
            instructions: 12,
            l1_refs: 4,
            branches: 2,
            fp_ops: 1,
            stall_cycles: 0,
            access: Some(LineAddr((i as u64 * 7) % 251 * 64)),
        });
    }
    t
}

fn serialized_feature() -> String {
    let machine = MachineConfig::four_core_server();
    let fv = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &machine)
        .expect("built-in workload always yields a feature vector");
    let mut buf = Vec::new();
    persist::write_feature(&fv, &mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("profiles serialize as UTF-8")
}

/// Bit-rotted trace files parse to a typed error or a usable trace —
/// and a trace that does parse yields finite curves.
#[test]
fn scrambled_trace_text_never_panics() {
    let mut buf = Vec::new();
    sample_trace(200).write_text(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("traces serialize as UTF-8");

    for seed in 0..25u64 {
        let plan = FaultPlan::new(seed).with(Fault::ScrambleText { bytes: 48 });
        let corrupted = plan.corrupt_text(&text);
        match Trace::read_text(corrupted.as_bytes()) {
            Err(_) => {} // typed error: acceptable
            Ok(trace) => {
                let addrs: Vec<LineAddr> = trace.accesses().collect();
                if addrs.is_empty() {
                    continue;
                }
                for m in miss_ratio_curve(&addrs, 16, 8) {
                    assert!(m.is_finite() && (0.0..=1.0).contains(&m), "seed {seed}: MRC {m}");
                }
            }
        }
    }
}

/// Random addresses change the curves but never their sanity.
#[test]
fn corrupted_addresses_still_yield_finite_curves() {
    let mut trace = sample_trace(500);
    FaultPlan::new(11)
        .with(Fault::CorruptTraceAddresses { rate: 0.5 })
        .with(Fault::TruncateTrace { keep_fraction: 0.8 })
        .apply_to_trace(&mut trace);
    let addrs: Vec<LineAddr> = trace.accesses().collect();
    assert!(!addrs.is_empty());
    for m in miss_ratio_curve(&addrs, 16, 8) {
        assert!(m.is_finite() && (0.0..=1.0).contains(&m));
    }
    let hist = stack_distance_histogram(&addrs, 16);
    let counted: u64 = hist.iter().sum();
    assert!(counted <= addrs.len() as u64);
}

/// NaN or negative probability mass is rejected at histogram
/// construction with a typed error.
#[test]
fn poisoned_histograms_are_rejected() {
    for fault in [Fault::NanHistogram { count: 2 }, Fault::NegateHistogram { count: 2 }] {
        let mut probs = vec![0.1; 8];
        FaultPlan::new(5).with(fault).apply_to_histogram(&mut probs);
        match ReuseHistogram::new(probs, 0.2) {
            Err(ModelError::InvalidDistribution(_)) => {}
            other => panic!("expected InvalidDistribution for {fault:?}, got {other:?}"),
        }
    }
}

/// Scrambled or torn profile files load as typed errors or as profiles
/// that still pass validation — never as silent garbage, never a panic.
#[test]
fn corrupted_profile_files_are_typed_errors() {
    let text = serialized_feature();

    for seed in 0..30u64 {
        let plan = FaultPlan::new(seed).with(Fault::ScrambleText { bytes: 8 });
        let corrupted = plan.corrupt_text(&text);
        if let Ok(fv) = persist::read_feature(corrupted.as_bytes()) {
            // If the parser accepted it, the result must be fully valid.
            mpmc::model::validate::feature_vector(&fv)
                .expect("read_feature returned an invalid feature vector");
        }
    }

    // A file torn mid-way has lost required keys: always a typed error.
    let torn = &text[..text.len() / 2];
    assert!(matches!(persist::read_feature(torn.as_bytes()), Err(ModelError::UnusableProfile(_))));
}

/// Explicit NaN in a numeric field is a typed error, not a NaN that
/// leaks into the model.
#[test]
fn nan_profile_fields_are_typed_errors() {
    let text = serialized_feature();
    let poisoned: String = text
        .lines()
        .map(|l| if l.starts_with("api ") { "api NaN".to_string() } else { l.to_string() })
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(poisoned, text, "expected an 'api' line to poison");
    assert!(matches!(
        persist::read_feature(poisoned.as_bytes()),
        Err(ModelError::UnusableProfile(_))
    ));
}

/// A sample series thinned by dropped HPC interrupts degrades the fit
/// or fails typed — it does not panic.
#[test]
fn dropped_samples_never_panic() {
    for rate in [0.5, 0.95, 1.0] {
        let mut pts: Vec<(f64, f64)> =
            (0..40).map(|i| (i as f64 / 40.0, 2e-6 * i as f64 / 40.0 + 5e-8)).collect();
        FaultPlan::new(17).with(Fault::DropSamples { rate }).apply_to_samples(&mut pts);
        // A typed error (too few samples left) is also acceptable.
        if let Ok(m) = SpiModel::fit(&pts) {
            assert!(m.alpha().is_finite() && m.beta().is_finite());
        }
    }
}

/// A starved solver budget walks the fallback chain and still returns a
/// finite, capacity-respecting answer with the fallbacks on record.
#[test]
fn starved_solver_budget_degrades_gracefully() {
    let machine = MachineConfig::four_core_server();
    let assoc = machine.l2_assoc();
    let features: Vec<FeatureVector> = [SpecWorkload::Mcf, SpecWorkload::Art, SpecWorkload::Gzip]
        .iter()
        .map(|w| FeatureVector::from_workload(&w.params(), &machine).expect("built-in"))
        .collect();
    let refs: Vec<&FeatureVector> = features.iter().collect();

    // Newton cannot converge to tol = 0; the chain must move on.
    let opts =
        SolveOptions { tol: 0.0, max_newton_iter: 2, newton_retries: 1, ..SolveOptions::default() };
    let eq = equilibrium::solve_robust(&refs, assoc, &opts).expect("chain never fails");
    assert!(!eq.diagnostics.fallbacks.is_empty(), "expected recorded fallbacks");
    let total: f64 = eq.sizes.iter().sum();
    assert!((total - assoc as f64).abs() < 1e-2 * assoc as f64, "sum of ways {total}");
    for i in 0..refs.len() {
        assert!(eq.sizes[i].is_finite() && eq.spis[i].is_finite() && eq.spis[i] > 0.0);
    }

    // No time at all: the heuristic last resort, flagged degraded.
    let opts = SolveOptions { time_budget_s: 0.0, ..SolveOptions::default() };
    let eq = equilibrium::solve_robust(&refs, assoc, &opts).expect("chain never fails");
    assert_eq!(eq.diagnostics.method, SolveMethod::ProportionalShare);
    assert!(eq.diagnostics.degraded);
    let total: f64 = eq.sizes.iter().sum();
    assert!((total - assoc as f64).abs() < 1e-9);
    assert!(eq.spis.iter().all(|s| s.is_finite()));
}
