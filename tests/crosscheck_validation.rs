//! Cross-crate integration: the invariant/metamorphic battery of
//! `mpmc::model::crosscheck` over ground-truth feature vectors, plus a
//! miniature differential (model-vs-simulator) check — the same layers
//! `mpmc validate` gates CI with, callable straight from `cargo test`.

use mpmc::model::crosscheck;
use mpmc::model::equilibrium;
use mpmc::model::feature::FeatureVector;
use mpmc::model::perf::PerformanceModel;
use mpmc::sim::engine::{simulate, Placement, SimOptions};
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::ProcessSpec;
use mpmc::workloads::spec::SpecWorkload;

/// Same physics, fewer sets: keeps debug-mode simulation quick.
fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, ..MachineConfig::four_core_server() }
}

fn features(machine: &MachineConfig) -> Vec<FeatureVector> {
    SpecWorkload::table1_suite()
        .iter()
        .map(|w| FeatureVector::from_workload(&w.params(), machine).unwrap())
        .collect()
}

#[test]
fn invariant_battery_clean_for_every_pair() {
    let machine = MachineConfig::four_core_server();
    let fvs = features(&machine);
    let assoc = machine.l2_assoc();
    for i in 0..fvs.len() {
        for j in (i + 1)..fvs.len() {
            let set = [&fvs[i], &fvs[j]];
            let violations = crosscheck::check_corun_set(&set, assoc).unwrap();
            assert!(violations.is_empty(), "{}+{}: {violations:?}", fvs[i].name(), fvs[j].name());
        }
    }
}

#[test]
fn corrupted_equilibrium_fails_the_battery() {
    let machine = MachineConfig::four_core_server();
    let fvs = features(&machine);
    let set = [&fvs[0], &fvs[2]];
    let mut eq = equilibrium::solve(&set, machine.l2_assoc()).unwrap();
    assert!(crosscheck::check_equilibrium(&set, machine.l2_assoc(), &eq).is_empty());
    // Capacity violation: sizes inflated beyond the cache.
    eq.sizes[0] += 5.0;
    let v = crosscheck::check_equilibrium(&set, machine.l2_assoc(), &eq);
    assert!(v.iter().any(|v| v.check == "capacity"), "{v:?}");
    // Window corruption is caught independently.
    let mut eq = equilibrium::solve(&set, machine.l2_assoc()).unwrap();
    eq.window = f64::NAN;
    let v = crosscheck::check_equilibrium(&set, machine.l2_assoc(), &eq);
    assert!(v.iter().any(|v| v.check == "window"), "{v:?}");
}

#[test]
fn metamorphic_checks_hold_for_the_suite() {
    let machine = MachineConfig::four_core_server();
    let fvs = features(&machine);
    let assoc = machine.l2_assoc();
    for f in &fvs {
        assert!(crosscheck::metamorphic_tail_scaling(f, 3.0).unwrap().is_empty(), "{}", f.name());
    }
    let set = [&fvs[1], &fvs[4]];
    assert!(crosscheck::metamorphic_idle_process(&set, assoc).unwrap().is_empty());
    assert!(crosscheck::check_order_independence(&set, assoc).unwrap().is_empty());
}

#[test]
fn differential_pair_against_simulator() {
    let machine = tiny_machine();
    let mcf = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &machine).unwrap();
    let gzip = FeatureVector::from_workload(&SpecWorkload::Gzip.params(), &machine).unwrap();
    let pred = PerformanceModel::new(machine.l2_assoc()).predict(&[&mcf, &gzip]).unwrap();

    let mut placement = Placement::idle(machine.num_cores());
    placement
        .assign(
            0,
            ProcessSpec::new(
                "mcf",
                Box::new(SpecWorkload::Mcf.params().generator(machine.l2_sets, 1)),
            ),
        )
        .unwrap();
    placement
        .assign(
            1,
            ProcessSpec::new(
                "gzip",
                Box::new(SpecWorkload::Gzip.params().generator(machine.l2_sets, 2)),
            ),
        )
        .unwrap();
    // Warmup must exceed the cache fill time: the model predicts steady
    // state, while time-averaged ways include the cold-start ramp.
    let run = simulate(
        &machine,
        placement,
        SimOptions { duration_s: 2.0, warmup_s: 1.0, seed: 0x51, ..Default::default() },
    )
    .unwrap();

    let oracle = run.oracle_observables();
    assert_eq!(oracle.len(), 2);
    for (slot, o) in oracle.iter().enumerate() {
        let p = &pred[slot];
        assert!(
            (p.ways - o.avg_ways).abs() < 2.5,
            "{}: predicted {} ways, measured {}",
            o.name,
            p.ways,
            o.avg_ways
        );
        assert!(
            (p.mpa - o.mpa).abs() < 0.08,
            "{}: predicted MPA {}, measured {}",
            o.name,
            p.mpa,
            o.mpa
        );
        assert!(
            (p.spi - o.spi).abs() / o.spi < 0.15,
            "{}: predicted SPI {}, measured {}",
            o.name,
            p.spi,
            o.spi
        );
    }

    // Power floor: ground-truth power can never dip below all-idle.
    let floor_violations = crosscheck::check_power_floor(
        run.avg_true_power(),
        machine.num_cores(),
        machine.power.core_idle_w,
    );
    assert!(floor_violations.is_empty(), "{floor_violations:?}");
}
