//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use mpmc::math::interp::PiecewiseLinear;
use mpmc::model::equilibrium;
use mpmc::model::feature::FeatureVector;
use mpmc::model::histogram::ReuseHistogram;
use mpmc::model::occupancy::{OccupancyCurve, OccupancyOptions};
use mpmc::model::spi::SpiModel;
use mpmc::sim::cache::SetAssocCache;
use mpmc::sim::types::{LineAddr, ProcessId};
use proptest::prelude::*;

/// Strategy: normalized histogram weights over up to `depth` positions.
fn histogram_strategy(depth: usize) -> impl Strategy<Value = ReuseHistogram> {
    (
        proptest::collection::vec(0.0f64..10.0, 1..=depth),
        0.01f64..10.0, // always some infinite mass so curves stay generic
    )
        .prop_map(|(weights, inf)| {
            let total: f64 = weights.iter().sum::<f64>() + inf;
            let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
            ReuseHistogram::new(probs, inf / total).expect("normalized by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_mpa_is_monotone_and_bounded(hist in histogram_strategy(12)) {
        let mut prev = 1.0f64 + 1e-12;
        for i in 0..40 {
            let s = i as f64 * 0.4;
            let m = hist.mpa(s);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            prop_assert!(m <= prev + 1e-9, "MPA increased at s={s}");
            prev = m;
        }
        prop_assert!((hist.mpa(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_roundtrips_through_mpa_curve(hist in histogram_strategy(10)) {
        let curve: Vec<f64> = (0..=12).map(|s| hist.mpa_int(s)).collect();
        let back = ReuseHistogram::from_mpa_curve(&curve).unwrap();
        for (a, b) in hist.probs().iter().zip(back.probs()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!((hist.p_inf() - back.p_inf()).abs() < 1e-9);
    }

    #[test]
    fn occupancy_curve_is_monotone_and_bounded(hist in histogram_strategy(10), assoc in 2usize..16) {
        let g = OccupancyCurve::from_histogram(&hist, assoc, OccupancyOptions::default()).unwrap();
        let mut prev = -1.0;
        for i in 0..100 {
            let n = (i * i) as f64 * 0.5;
            let v = g.g(n);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v <= assoc as f64 + 1e-9);
            prev = v;
        }
        // First access occupies exactly one line (paper: P_{1,1} = 1).
        prop_assert!((g.g(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_inverse_roundtrips(hist in histogram_strategy(8), s_frac in 0.05f64..0.95) {
        let g = OccupancyCurve::from_histogram(&hist, 8, OccupancyOptions::default()).unwrap();
        let s = s_frac * g.saturation().min(8.0);
        let n = g.g_inverse(s);
        if n < g.n_max() {
            prop_assert!((g.g(n) - s).abs() < 1e-5, "g({n}) = {} != {s}", g.g(n));
        }
    }

    #[test]
    fn equilibrium_respects_capacity_and_ranges(
        hist_a in histogram_strategy(12),
        hist_b in histogram_strategy(12),
        api_a in 0.002f64..0.05,
        api_b in 0.002f64..0.05,
    ) {
        let assoc = 16usize;
        let spi = SpiModel::new(2e-6 * api_a, 5e-8).unwrap();
        let a = FeatureVector::new("a", hist_a, api_a, spi, assoc).unwrap();
        let spi = SpiModel::new(2e-6 * api_b, 5e-8).unwrap();
        let b = FeatureVector::new("b", hist_b, api_b, spi, assoc).unwrap();
        let eq = equilibrium::solve(&[&a, &b], assoc).unwrap();
        let total: f64 = eq.sizes.iter().sum();
        if eq.cache_filled {
            prop_assert!((total - assoc as f64).abs() < 1e-2, "total ways {total}");
        } else {
            prop_assert!(total <= assoc as f64 + 1e-6);
        }
        for i in 0..2 {
            prop_assert!(eq.sizes[i] >= 0.0 && eq.sizes[i] <= assoc as f64 + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&eq.mpas[i]));
            prop_assert!(eq.spis[i] >= 5e-8 - 1e-12, "SPI below miss-free floor");
        }
    }

    #[test]
    fn solve_batch_is_bit_identical_to_sequential_solves(
        hists in proptest::collection::vec(histogram_strategy(10), 3..=5),
        apis in proptest::collection::vec(0.002f64..0.05, 5),
        workers in 1usize..=8,
        scramble_seed in 0u64..1000,
    ) {
        use mpmc::model::equilibrium::CorunSet;
        use mpmc::model::perf::{PerformanceModel, SolverKind};

        let assoc = 16usize;
        let mut features = Vec::new();
        for (i, hist) in hists.iter().enumerate() {
            let api = apis[i];
            let spi = SpiModel::new(2e-6 * api, 5e-8).unwrap();
            features.push(
                FeatureVector::new(format!("p{i}"), hist.clone(), api, spi, assoc).unwrap(),
            );
        }
        // Pairs and triples over the generated features, in an order
        // scrambled by a cheap deterministic permutation, plus one
        // duplicate of the first set.
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for i in 0..features.len() {
            for j in 0..features.len() {
                if i < j {
                    sets.push(vec![i, j]);
                }
            }
        }
        sets.push(vec![0, 1 % features.len(), 2 % features.len()]);
        sets.push(sets[0].clone());
        let n = sets.len();
        let rot = (scramble_seed as usize) % n;
        sets.rotate_left(rot);

        let corun: Vec<CorunSet<'_>> = sets
            .iter()
            .map(|idxs| CorunSet { features: idxs.iter().map(|&i| &features[i]).collect() })
            .collect();
        for kind in [SolverKind::Bisection, SolverKind::Newton, SolverKind::Robust] {
            let model = PerformanceModel::new(assoc).with_solver(kind);
            let batch = model
                .solve_batch_cancellable(&corun, workers, &mpmc::math::sync::CancelToken::never());
            prop_assert!(batch.is_ok(), "{kind:?}: {:?}", batch.err());
            let batch = batch.unwrap();
            for (i, (set, got)) in corun.iter().zip(&batch).enumerate() {
                let solo = model.solve(&set.features).unwrap();
                prop_assert_eq!(
                    solo.window.to_bits(), got.window.to_bits(),
                    "{:?} set {} workers {}", kind, i, workers
                );
                for (x, y) in solo.sizes.iter().zip(&got.sizes) {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "{:?} set {} workers {}", kind, i, workers
                    );
                }
            }
        }
    }

    #[test]
    fn robust_solver_conserves_capacity_and_stays_finite(
        hist_a in histogram_strategy(12),
        hist_b in histogram_strategy(12),
        hist_c in histogram_strategy(12),
        api_a in 0.002f64..0.05,
        api_b in 0.002f64..0.05,
        api_c in 0.002f64..0.05,
    ) {
        let assoc = 16usize;
        let mut features = Vec::new();
        for (name, hist, api) in
            [("a", hist_a, api_a), ("b", hist_b, api_b), ("c", hist_c, api_c)]
        {
            let spi = SpiModel::new(2e-6 * api, 5e-8).unwrap();
            features.push(FeatureVector::new(name, hist, api, spi, assoc).unwrap());
        }
        let refs: Vec<&FeatureVector> = features.iter().collect();
        let eq = equilibrium::solve_robust(&refs, assoc, &equilibrium::SolveOptions::default())
            .unwrap();
        let total: f64 = eq.sizes.iter().sum();
        if eq.cache_filled {
            prop_assert!(
                (total - assoc as f64).abs() < 1e-2 * assoc as f64,
                "sum of ways {total} ({})",
                eq.diagnostics.summary()
            );
        } else {
            prop_assert!(total <= assoc as f64 + 1e-6);
        }
        for i in 0..refs.len() {
            prop_assert!(eq.sizes[i].is_finite() && eq.sizes[i] >= 0.0);
            prop_assert!(eq.mpas[i].is_finite());
            prop_assert!(eq.spis[i].is_finite() && eq.spis[i] > 0.0, "SPI must stay finite");
        }
    }

    #[test]
    fn cache_matches_lru_oracle(
        accesses in proptest::collection::vec((0u64..64, 0u32..3), 1..400),
        assoc in 1usize..8,
    ) {
        let num_sets = 4usize;
        let mut cache = SetAssocCache::new(num_sets, assoc);
        // Reference oracle: per-set LRU stacks.
        let mut oracle: Vec<Vec<u64>> = vec![Vec::new(); num_sets];
        for &(addr, owner) in &accesses {
            let set = (addr % num_sets as u64) as usize;
            let expect_hit = oracle[set].contains(&addr);
            let got = cache.access(LineAddr(addr), ProcessId(owner));
            prop_assert_eq!(got.is_hit(), expect_hit, "oracle disagreement at {}", addr);
            if let Some(pos) = oracle[set].iter().position(|&x| x == addr) {
                oracle[set].remove(pos);
            }
            oracle[set].insert(0, addr);
            oracle[set].truncate(assoc);
        }
        // Occupancy bookkeeping agrees with set contents.
        let by_owner: u64 = (0..3).map(|o| cache.lines_of(ProcessId(o))).sum();
        let resident: u64 = oracle.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(by_owner, resident);
        prop_assert_eq!(cache.resident_lines(), resident);
        prop_assert!(resident <= (num_sets * assoc) as u64);
    }

    #[test]
    fn piecewise_linear_inverse_is_consistent(
        mut knots in proptest::collection::vec((0.0f64..100.0, 0.0f64..10.0), 2..12),
    ) {
        // Build strictly increasing xs and non-decreasing ys.
        knots.sort_by(|a, b| a.0.total_cmp(&b.0));
        knots.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-6);
        prop_assume!(knots.len() >= 2);
        let xs: Vec<f64> = knots.iter().map(|k| k.0).collect();
        let mut acc = 0.0;
        let ys: Vec<f64> = knots.iter().map(|k| { acc += k.1; acc }).collect();
        let f = PiecewiseLinear::new(xs.clone(), ys.clone()).unwrap();
        for i in 0..20 {
            let x = xs[0] + (xs[xs.len() - 1] - xs[0]) * i as f64 / 19.0;
            let y = f.eval(x);
            let xi = f.inverse_monotone(y).unwrap();
            prop_assert!((f.eval(xi) - y).abs() < 1e-7);
        }
    }

    #[test]
    fn spi_model_fit_is_exact_on_linear_data(alpha in 0.0f64..1e-6, beta in 1e-9f64..1e-6) {
        let pts: Vec<(f64, f64)> = (0..6).map(|i| {
            let m = i as f64 / 6.0;
            (m, alpha * m + beta)
        }).collect();
        let fit = SpiModel::fit(&pts).unwrap();
        prop_assert!((fit.alpha() - alpha).abs() < 1e-12 + alpha * 1e-6);
        prop_assert!((fit.beta() - beta).abs() < 1e-12 + beta * 1e-6);
    }
}
