//! Cross-crate integration tests for the post-validation extensions:
//! way partitioning through the engine, trace replay through the engine,
//! and phased workloads under co-scheduling.

use mpmc::sim::engine::{simulate, Placement, SimError, SimOptions};
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::{AccessGenerator, ProcessSpec};
use mpmc::sim::trace::{TraceRecorder, TraceReplayer};
use mpmc::workloads::phased::{Phase, PhasedGenerator};
use mpmc::workloads::spec::SpecWorkload;
use rand::SeedableRng;

fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
}

fn opts(seed: u64) -> SimOptions {
    SimOptions { duration_s: 0.4, warmup_s: 0.12, seed, ..Default::default() }
}

#[test]
fn engine_enforces_way_quotas() {
    let m = tiny_machine();
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("mcf", Box::new(SpecWorkload::Mcf.params().generator(64, 1))))
        .unwrap();
    pl.assign(1, ProcessSpec::new("art", Box::new(SpecWorkload::Art.params().generator(64, 2))))
        .unwrap();

    // Unconstrained: two hogs split roughly evenly.
    let free = simulate(&m, pl, opts(1)).unwrap();
    let free_ways = free.processes[0].avg_ways;

    // Quota mcf to 2 ways: its occupancy must drop to ~2 and its MPA rise.
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("mcf", Box::new(SpecWorkload::Mcf.params().generator(64, 1))))
        .unwrap();
    pl.assign(1, ProcessSpec::new("art", Box::new(SpecWorkload::Art.params().generator(64, 2))))
        .unwrap();
    let capped = simulate(&m, pl, SimOptions { way_quotas: vec![(0, 2)], ..opts(1) }).unwrap();
    let capped_ways = capped.processes[0].avg_ways;
    assert!(capped_ways <= 2.0 + 1e-9, "quota violated: {capped_ways}");
    assert!(capped_ways < free_ways, "quota had no effect: {capped_ways} vs {free_ways}");
    assert!(capped.processes[0].mpa() > free.processes[0].mpa());
    // The partner benefits from the freed space.
    assert!(capped.processes[1].avg_ways > free.processes[1].avg_ways);
}

#[test]
fn engine_rejects_bad_quotas() {
    let m = tiny_machine();
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("gzip", Box::new(SpecWorkload::Gzip.params().generator(64, 1))))
        .unwrap();
    // Quota for a process that does not exist.
    let err = simulate(&m, pl, SimOptions { way_quotas: vec![(5, 2)], ..opts(2) }).unwrap_err();
    assert!(matches!(err, SimError::InvalidOptions(_)));
    // Quota out of range.
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("gzip", Box::new(SpecWorkload::Gzip.params().generator(64, 1))))
        .unwrap();
    let err = simulate(&m, pl, SimOptions { way_quotas: vec![(0, 99)], ..opts(2) }).unwrap_err();
    assert!(matches!(err, SimError::InvalidOptions(_)));
}

#[test]
fn trace_replay_reproduces_engine_statistics() {
    let m = tiny_machine();

    // Record a run.
    let gen = SpecWorkload::Twolf.params().generator(64, 1);
    let (rec, handle) = TraceRecorder::new(Box::new(gen));
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("twolf", Box::new(rec))).unwrap();
    let original = simulate(&m, pl, opts(3)).unwrap();

    // Replay the captured trace: same machine, same placement shape. The
    // replayer is RNG-independent, so the cache behaviour is identical.
    let trace = handle.lock().unwrap().clone();
    let mut pl = Placement::idle(2);
    pl.assign(0, ProcessSpec::new("twolf-replay", Box::new(TraceReplayer::new(trace)))).unwrap();
    let replayed = simulate(&m, pl, opts(999)).unwrap(); // different seed on purpose

    let a = &original.processes[0];
    let b = &replayed.processes[0];
    // The replay loops the trace, so totals differ slightly at the ends;
    // the rates must match tightly.
    assert!((a.mpa() - b.mpa()).abs() < 0.01, "mpa {} vs {}", a.mpa(), b.mpa());
    assert!((a.api() - b.api()).abs() < 0.001, "api {} vs {}", a.api(), b.api());
    let spi_ratio = a.spi() / b.spi();
    assert!((0.98..=1.02).contains(&spi_ratio), "spi ratio {spi_ratio}");
}

#[test]
fn phased_workload_runs_under_contention() {
    let m = tiny_machine();
    let phases = vec![
        Phase::from_params(&SpecWorkload::Gzip.params(), 300_000),
        Phase::from_params(&SpecWorkload::Mcf.params(), 300_000),
    ];
    let mut pl = Placement::idle(2);
    pl.assign(
        0,
        ProcessSpec::new("phased", Box::new(PhasedGenerator::new("phased", phases, 64, 1))),
    )
    .unwrap();
    pl.assign(1, ProcessSpec::new("art", Box::new(SpecWorkload::Art.params().generator(64, 5))))
        .unwrap();
    let run = simulate(
        &m,
        pl,
        SimOptions { duration_s: 0.8, warmup_s: 0.2, seed: 4, ..Default::default() },
    )
    .unwrap();
    let p = &run.processes[0];
    assert!(p.counters.instructions > 500_000, "phased process must progress");
    // Its API must be between the two phases' APIs (it mixes them).
    let api = p.api();
    assert!(api > 0.004 && api < 0.035, "mixed api {api}");
}

#[test]
fn recorded_trace_survives_text_roundtrip_at_scale() {
    let mut gen = SpecWorkload::Parser.params().generator(64, 1);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let trace: mpmc::sim::trace::Trace = (0..5_000).map(|_| gen.next_step(&mut rng)).collect();
    let mut buf = Vec::new();
    trace.write_text(&mut buf).unwrap();
    let back = mpmc::sim::trace::Trace::read_text(buf.as_slice()).unwrap();
    assert_eq!(back, trace);
}
