//! Cross-crate integration: the full §3 pipeline — profile on the
//! simulator, predict with the model, validate against a measured co-run.

use mpmc::model::perf::{PerformanceModel, SolverKind};
use mpmc::model::profile::{ProfileOptions, Profiler};
use mpmc::sim::engine::{simulate, Placement, SimOptions};
use mpmc::sim::machine::MachineConfig;
use mpmc::sim::process::ProcessSpec;
use mpmc::workloads::spec::SpecWorkload;

/// A small machine that keeps debug-mode tests quick: same physics,
/// fewer sets.
fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
}

fn quick_profile() -> ProfileOptions {
    ProfileOptions { duration_s: 0.35, warmup_s: 0.12, seed: 99, ..Default::default() }
}

#[test]
fn profile_predict_measure_pipeline() {
    let machine = tiny_machine();
    let profiler = Profiler::new(machine.clone()).with_options(quick_profile());
    let a = profiler.profile(&SpecWorkload::Mcf.params()).unwrap();
    let b = profiler.profile(&SpecWorkload::Gzip.params()).unwrap();

    let model = PerformanceModel::new(machine.l2_assoc());
    let pred = model.predict(&[&a, &b]).unwrap();

    // Measured co-run.
    let mut placement = Placement::idle(2);
    placement
        .assign(
            0,
            ProcessSpec::new(
                "mcf",
                Box::new(SpecWorkload::Mcf.params().generator(machine.l2_sets, 1)),
            ),
        )
        .unwrap();
    placement
        .assign(
            1,
            ProcessSpec::new(
                "gzip",
                Box::new(SpecWorkload::Gzip.params().generator(machine.l2_sets, 2)),
            ),
        )
        .unwrap();
    let run = simulate(
        &machine,
        placement,
        SimOptions { duration_s: 0.6, warmup_s: 0.2, seed: 7, ..Default::default() },
    )
    .unwrap();

    for (i, p) in run.processes.iter().enumerate() {
        let spi_err = (pred[i].spi - p.spi()).abs() / p.spi();
        assert!(
            spi_err < 0.10,
            "{}: predicted SPI {:.3e} vs measured {:.3e} ({:.1}% off)",
            p.name,
            pred[i].spi,
            p.spi(),
            spi_err * 100.0
        );
        let mpa_err = (pred[i].mpa - p.mpa()).abs();
        assert!(mpa_err < 0.08, "{}: MPA {:.3} vs {:.3}", p.name, pred[i].mpa, p.mpa());
    }
    // The hog takes the bigger share, as measured.
    assert!(pred[0].ways > pred[1].ways);
    assert!(run.processes[0].avg_ways > run.processes[1].avg_ways);
}

#[test]
fn newton_and_bisection_agree_on_profiled_features() {
    let machine = tiny_machine();
    let profiler = Profiler::new(machine.clone()).with_options(quick_profile());
    let a = profiler.profile(&SpecWorkload::Art.params()).unwrap();
    let b = profiler.profile(&SpecWorkload::Twolf.params()).unwrap();

    let bis = PerformanceModel::new(8).predict(&[&a, &b]).unwrap();
    let newt = PerformanceModel::new(8).with_solver(SolverKind::Newton).predict(&[&a, &b]).unwrap();
    for i in 0..2 {
        assert!(
            (bis[i].ways - newt[i].ways).abs() < 0.1,
            "solver disagreement: {} vs {}",
            bis[i].ways,
            newt[i].ways
        );
    }
}

#[test]
fn prediction_capacity_constraint_holds() {
    let machine = tiny_machine();
    let profiler = Profiler::new(machine.clone()).with_options(quick_profile());
    let feats: Vec<_> = [SpecWorkload::Mcf, SpecWorkload::Vpr]
        .iter()
        .map(|w| profiler.profile(&w.params()).unwrap())
        .collect();
    let pred = PerformanceModel::new(8).predict(&feats).unwrap();
    let total: f64 = pred.iter().map(|p| p.ways).sum();
    assert!((total - 8.0).abs() < 1e-3, "ways sum to {total}");
    for p in &pred {
        assert!(p.ways > 0.0 && p.ways < 8.0);
        assert!((0.0..=1.0).contains(&p.mpa));
        assert!(p.spi > 0.0 && p.aps > 0.0);
    }
}

#[test]
fn contention_hurts_both_processes_in_measurement_and_model() {
    let machine = tiny_machine();
    let profiler = Profiler::new(machine.clone()).with_options(quick_profile());
    let a = profiler.profile(&SpecWorkload::Mcf.params()).unwrap();
    let b = profiler.profile(&SpecWorkload::Art.params()).unwrap();

    let model = PerformanceModel::new(8);
    let alone_a = model.predict(std::slice::from_ref(&a)).unwrap();
    let pair = model.predict(&[&a, &b]).unwrap();
    assert!(pair[0].spi > alone_a[0].spi, "model: sharing must slow mcf down");

    // And the simulator agrees.
    let run_alone = {
        let mut pl = Placement::idle(2);
        pl.assign(
            0,
            ProcessSpec::new("mcf", Box::new(SpecWorkload::Mcf.params().generator(64, 1))),
        )
        .unwrap();
        simulate(
            &machine,
            pl,
            SimOptions { duration_s: 0.5, warmup_s: 0.15, seed: 5, ..Default::default() },
        )
        .unwrap()
    };
    let run_pair = {
        let mut pl = Placement::idle(2);
        pl.assign(
            0,
            ProcessSpec::new("mcf", Box::new(SpecWorkload::Mcf.params().generator(64, 1))),
        )
        .unwrap();
        pl.assign(
            1,
            ProcessSpec::new("art", Box::new(SpecWorkload::Art.params().generator(64, 2))),
        )
        .unwrap();
        simulate(
            &machine,
            pl,
            SimOptions { duration_s: 0.5, warmup_s: 0.15, seed: 5, ..Default::default() },
        )
        .unwrap()
    };
    assert!(run_pair.processes[0].spi() > run_alone.processes[0].spi());
}
