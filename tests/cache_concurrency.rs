//! Tier-1 concurrency stress for the bounded equilibrium memo cache:
//! many threads hammer `estimate_candidates` on overlapping candidate
//! sets through one shared `CombinedModel`. Every concurrent result must
//! be bit-identical to a sequential reference, no lock may poison, and
//! the cache must never exceed its capacity — even when the bound is
//! tiny enough that the threads continuously evict each other's entries.

use cmpsim::machine::MachineConfig;
use mpmc_model::assignment::{Assignment, CombinedModel};
use mpmc_model::feature::FeatureVector;
use mpmc_model::histogram::ReuseHistogram;
use mpmc_model::power::PowerModel;
use mpmc_model::profile::ProcessProfile;
use mpmc_model::spi::SpiModel;

fn synthetic_profile(name: &str, tail: f64, api: f64, m: &MachineConfig) -> ProcessProfile {
    let head = 1.0 - tail;
    let hist =
        ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail).unwrap();
    let alpha = api * (m.mem_cycles - m.l2_hit_cycles) as f64 / m.freq_hz;
    let beta = (m.cpi_base + api * m.l2_hit_cycles as f64) / m.freq_hz;
    let feature =
        FeatureVector::new(name, hist, api, SpiModel::new(alpha, beta).unwrap(), m.l2_assoc())
            .unwrap();
    ProcessProfile {
        feature,
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 60.0,
        idle_processor_w: 44.0,
    }
}

fn power_model() -> PowerModel {
    PowerModel::from_parts(10.0, vec![2e-7, 1e-6, 3e-6, 1e-7, 1e-7]).unwrap()
}

/// A pool of distinct profiles plus a set of overlapping "current"
/// assignments; every (assignment, tentative process) query is one work
/// item shared by all threads.
fn workload(machine: &MachineConfig) -> (Vec<ProcessProfile>, Vec<(Assignment, usize)>) {
    let profiles: Vec<ProcessProfile> = (0..6)
        .map(|i| {
            synthetic_profile(
                &format!("p{i}"),
                0.10 + 0.12 * i as f64,
                0.015 + 0.004 * i as f64,
                machine,
            )
        })
        .collect();
    let mut queries = Vec::new();
    for a in 0..profiles.len() {
        for b in 0..profiles.len() {
            if a == b {
                continue;
            }
            // Process `a` already runs on core 0; where should `b` go?
            let mut current = Assignment::new(machine.num_cores());
            current.assign(0, a);
            queries.push((current, b));
        }
    }
    (profiles, queries)
}

#[test]
fn threaded_estimate_candidates_is_bit_identical_to_sequential() {
    let machine = MachineConfig::four_core_server();
    let power = power_model();
    let (profiles, queries) = workload(&machine);
    let cores: Vec<usize> = (0..machine.num_cores()).collect();

    // Sequential reference on a fresh model with an ample cache.
    let reference: Vec<Vec<u64>> = {
        let model = CombinedModel::new(&machine, &power);
        queries
            .iter()
            .map(|(current, idx)| {
                model
                    .estimate_candidates(&profiles, current, *idx, &cores, 1)
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
            .collect()
    };

    // A tiny bound forces continuous cross-thread eviction; a roomy one
    // exercises the mostly-hits path. Both must match the reference.
    for capacity in [8usize, 4096] {
        let model = CombinedModel::new(&machine, &power).with_equilibrium_cache_capacity(capacity);
        let model = &model;
        let profiles = &profiles;
        let queries = &queries;
        let reference = &reference;
        let cores = &cores;
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(move || {
                    // Each thread walks every query, offset so threads
                    // collide on different entries at any instant.
                    for step in 0..queries.len() {
                        let i = (step * 5 + t * 7) % queries.len();
                        let (current, idx) = &queries[i];
                        let got =
                            model.estimate_candidates(profiles, current, *idx, cores, 2).unwrap();
                        let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(bits, reference[i], "thread {t}, query {i}");
                    }
                });
            }
        });
        let stats = model.equilibrium_cache_stats();
        assert!(
            stats.entries <= stats.capacity,
            "capacity {capacity}: cache exceeded its bound: {stats:?}"
        );
        assert!(stats.misses > 0);
        if capacity == 8 {
            assert!(stats.evictions > 0, "tiny bound must churn: {stats:?}");
        }
        // No lock was poisoned: the model still answers.
        let (current, idx) = &queries[0];
        let again = model.estimate_candidates(profiles, current, *idx, cores, 2).unwrap();
        let bits: Vec<u64> = again.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, reference[0]);
    }
}
