//! Shared fixtures for the Criterion benchmark suite (see `benches/`).
//!
//! The paper's claim under test is that estimation is cheap enough for
//! *on-line* use during process assignment, so the benches measure the
//! framework's own costs: equilibrium solves, power evaluation, the
//! combined Fig. 1 estimator, profiling, and the simulator substrate.

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]

use cmpsim::hpc::EventRates;
use cmpsim::machine::MachineConfig;
use mpmc_model::feature::FeatureVector;
use mpmc_model::histogram::ReuseHistogram;
use mpmc_model::power::{PowerModel, PowerObservation};
use mpmc_model::profile::ProcessProfile;
use mpmc_model::spi::SpiModel;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic synthetic histogram with geometric decay and the given
/// infinite-distance tail.
pub fn synthetic_histogram(depth: usize, tail: f64, decay: f64) -> ReuseHistogram {
    let mut w = Vec::with_capacity(depth);
    let mut cur = 1.0;
    for _ in 0..depth {
        w.push(cur);
        cur *= decay;
    }
    let head: f64 = w.iter().sum();
    let scale = (1.0 - tail) / head;
    ReuseHistogram::new(w.iter().map(|x| x * scale).collect(), tail).expect("normalized")
}

/// A ground-truth-style feature vector for benchmarking the solvers.
pub fn synthetic_feature(
    name: &str,
    machine: &MachineConfig,
    depth: usize,
    tail: f64,
    api: f64,
) -> FeatureVector {
    let hist = synthetic_histogram(depth, tail, 0.8);
    let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
    let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
    FeatureVector::new(
        name,
        hist,
        api,
        SpiModel::new(alpha, beta).expect("valid"),
        machine.l2_assoc(),
    )
    .expect("valid feature")
}

/// A full synthetic process profile for the combined-model benches.
pub fn synthetic_profile(
    name: &str,
    machine: &MachineConfig,
    tail: f64,
    api: f64,
) -> ProcessProfile {
    ProcessProfile {
        feature: synthetic_feature(name, machine, 12, tail, api),
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 58.0,
        idle_processor_w: 44.0,
    }
}

/// Random plausible event rates for power-model benches.
pub fn random_rates(rng: &mut ChaCha8Rng) -> EventRates {
    let ips = rng.gen_range(1e6..2.4e7);
    EventRates {
        ips,
        l1rps: ips * rng.gen_range(0.2..0.5),
        l2rps: ips * rng.gen_range(0.001..0.05),
        l2mps: ips * rng.gen_range(0.0..0.02),
        brps: ips * rng.gen_range(0.05..0.3),
        fpps: ips * rng.gen_range(0.0..0.3),
    }
}

/// A power model fitted on synthetic ground-truth observations.
pub fn synthetic_power_model(machine: &MachineConfig, n_obs: usize) -> PowerModel {
    PowerModel::fit_mvlr(&synthetic_observations(machine, n_obs)).expect("fit")
}

/// The observations used by the MVLR/NN fitting benches.
pub fn synthetic_observations(machine: &MachineConfig, n_obs: usize) -> Vec<PowerObservation> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cores = machine.num_cores() as f64;
    (0..n_obs)
        .map(|_| {
            let rates = random_rates(&mut rng);
            PowerObservation {
                rates,
                core_watts: machine.power.core_power(&rates) + machine.power.uncore_w / cores,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        let m = MachineConfig::four_core_server();
        let fv = synthetic_feature("x", &m, 10, 0.2, 0.02);
        assert_eq!(fv.assoc(), 16);
        let p = synthetic_profile("y", &m, 0.2, 0.02);
        assert!(p.core_power_alone(11.0) > 11.0);
        let pm = synthetic_power_model(&m, 100);
        assert!(pm.r_squared() > 0.8);
    }
}
