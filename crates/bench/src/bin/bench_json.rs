//! JSON benchmark harness: measures the three perf-critical paths
//! (simulator throughput, profiling, equilibrium solves) with plain
//! `Instant` timing and writes machine-readable baselines to
//! `BENCH_simulator.json`, `BENCH_profiling.json`,
//! `BENCH_equilibrium.json` and `BENCH_optimize.json`.
//!
//! Unlike the criterion-shim benches (which print human-oriented lines),
//! this binary exists so the repo can commit comparable numbers and CI
//! can smoke-test that the measured paths still run. Usage:
//!
//! ```text
//! bench_json [--tiny] [--out DIR] [--workers N]
//! ```
//!
//! `--tiny` shrinks every workload to smoke-test size (CI), `--out`
//! selects the output directory (default: current directory), and
//! `--workers` sets the worker count used for the parallel batch
//! profiling entry (default 4).

use bench::{synthetic_feature, synthetic_power_model, synthetic_profile};
use cmpsim::engine::{simulate, EngineKind, Placement, SimOptions};
use cmpsim::machine::MachineConfig;
use cmpsim::process::ProcessSpec;
use mpmc_model::equilibrium;
use mpmc_model::feature::FeatureVector;
use mpmc_model::profile::{ProfileOptions, Profiler};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::spec::SpecWorkload;

/// One measured benchmark entry.
struct Entry {
    name: String,
    /// Fastest observed repetition (the least-noise floor).
    min_ns_per_op: f64,
    median_ns_per_op: f64,
    /// 90th-percentile repetition (tail stability).
    p90_ns_per_op: f64,
    /// Operations (iterations) per second implied by the median.
    ops_per_s: f64,
    /// Optional domain throughput, e.g. simulated accesses per second.
    throughput_unit: Option<&'static str>,
    throughput_per_s: Option<f64>,
    reps: usize,
}

/// min / median / p90 wall-clock seconds of one call across repetitions.
struct Timing {
    min_s: f64,
    median_s: f64,
    p90_s: f64,
}

struct Config {
    tiny: bool,
    out_dir: String,
    workers: usize,
}

fn parse_args() -> Config {
    let mut cfg = Config { tiny: false, out_dir: ".".to_string(), workers: 4 };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => cfg.tiny = true,
            "--out" => {
                if let Some(d) = args.next() {
                    cfg.out_dir = d;
                }
            }
            "--workers" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.workers = n;
                }
            }
            other => {
                eprintln!("bench_json: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Times `op` `reps` times and returns min/median/p90 wall-clock seconds
/// of one call. `units` is the number of domain operations one call
/// performs (for ns/op normalization).
fn measure<F: FnMut() -> u64>(reps: usize, mut op: F) -> (Timing, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut units = 0u64;
    for _ in 0..reps {
        // Bench harness: timing the operation is the whole point.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        units = op();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let timing = Timing {
        min_s: times[0],
        median_s: times[times.len() / 2],
        p90_s: times[(times.len() - 1) * 9 / 10],
    };
    (timing, units)
}

fn entry(
    name: impl Into<String>,
    timing: Timing,
    units: u64,
    unit: Option<&'static str>,
    reps: usize,
) -> Entry {
    let per_op = |s: f64| s / units.max(1) as f64;
    let median_per_op_s = per_op(timing.median_s);
    Entry {
        name: name.into(),
        min_ns_per_op: per_op(timing.min_s) * 1e9,
        median_ns_per_op: median_per_op_s * 1e9,
        p90_ns_per_op: per_op(timing.p90_s) * 1e9,
        ops_per_s: if median_per_op_s > 0.0 { 1.0 / median_per_op_s } else { 0.0 },
        throughput_unit: unit,
        throughput_per_s: unit.map(|_| {
            if timing.median_s > 0.0 {
                units as f64 / timing.median_s
            } else {
                0.0
            }
        }),
        reps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The current `"entries"` array body of an existing suite file, so a
/// regeneration can keep the previous generation's numbers visible as
/// `"previous_entries"` (one generation of trajectory, never nested).
fn previous_entries(path: &str) -> Option<String> {
    let old = std::fs::read_to_string(path).ok()?;
    let start = old.find("\"entries\": [")? + "\"entries\": [".len();
    let end = start + old[start..].find("\n  ]")?;
    let body = old[start..end].trim_matches('\n');
    (!body.trim().is_empty()).then(|| body.to_string())
}

fn write_suite(cfg: &Config, suite: &str, entries: &[Entry]) {
    let path = format!("{}/BENCH_{}.json", cfg.out_dir, suite);
    let previous = previous_entries(&path);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"suite\": \"{}\",", json_escape(suite));
    let _ = writeln!(out, "  \"mode\": \"{}\",", if cfg.tiny { "tiny" } else { "full" });
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let mut fields = format!(
            "\"name\": \"{}\", \"min_ns_per_op\": {:.1}, \"median_ns_per_op\": {:.1}, \
             \"p90_ns_per_op\": {:.1}, \"ops_per_s\": {:.3}, \"reps\": {}",
            json_escape(&e.name),
            e.min_ns_per_op,
            e.median_ns_per_op,
            e.p90_ns_per_op,
            e.ops_per_s,
            e.reps
        );
        if let (Some(unit), Some(tp)) = (e.throughput_unit, e.throughput_per_s) {
            let _ = write!(
                fields,
                ", \"throughput_unit\": \"{}\", \"throughput_per_s\": {:.1}",
                unit, tp
            );
        }
        let _ = writeln!(out, "    {{ {fields} }}{comma}");
    }
    match previous {
        Some(body) => {
            let _ = writeln!(out, "  ],");
            let _ = writeln!(out, "  \"previous_entries\": [");
            let _ = writeln!(out, "{body}");
            let _ = writeln!(out, "  ]");
        }
        None => {
            let _ = writeln!(out, "  ]");
        }
    }
    let _ = writeln!(out, "}}");
    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("bench_json: cannot create {}: {e}", cfg.out_dir);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("bench_json: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    print!("{out}");
}

fn sim_co_run(
    machine: &MachineConfig,
    pairs: &[(usize, SpecWorkload)],
    duration_s: f64,
    engine: EngineKind,
) -> u64 {
    let mut pl = Placement::idle(machine.num_cores());
    for (i, &(core, w)) in pairs.iter().enumerate() {
        pl.assign(
            core,
            ProcessSpec::new(
                w.name(),
                Box::new(w.params().generator(machine.l2_sets, i as u64 + 1)),
            ),
        )
        .expect("core in range");
    }
    let r = simulate(
        machine,
        pl,
        SimOptions { duration_s, warmup_s: 0.0, seed: 1, engine, ..Default::default() },
    )
    .expect("simulate");
    r.processes.iter().map(|p| p.counters.l2_refs).sum()
}

fn bench_simulator(cfg: &Config) {
    let machine = MachineConfig::four_core_server();
    let duration = if cfg.tiny { 0.01 } else { 0.1 };
    let reps = if cfg.tiny { 3 } else { 9 };
    let pairs2 = [(0usize, SpecWorkload::Mcf), (1, SpecWorkload::Gzip)];
    let pairs4 = [
        (0usize, SpecWorkload::Mcf),
        (1, SpecWorkload::Gzip),
        (2, SpecWorkload::Art),
        (3, SpecWorkload::Twolf),
    ];
    // Both kernels are measured so a regeneration shows what switching
    // the default engine cost (or bought); results are bit-identical,
    // only the timing differs.
    let mut entries = Vec::new();
    for engine in [EngineKind::Events, EngineKind::Lockstep] {
        let (t2, a2) = measure(reps, || sim_co_run(&machine, &pairs2, duration, engine));
        entries.push(entry(
            format!("co_run_accesses/2@{}", engine.name()),
            t2,
            a2,
            Some("accesses/s"),
            reps,
        ));
        let (t4, a4) = measure(reps, || sim_co_run(&machine, &pairs4, duration, engine));
        entries.push(entry(
            format!("co_run_accesses/4@{}", engine.name()),
            t4,
            a4,
            Some("accesses/s"),
            reps,
        ));
    }
    write_suite(cfg, "simulator", &entries);
}

fn bench_profiling(cfg: &Config) {
    let machine =
        MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() };
    // Tiny mode still needs enough simulated time for a usable profile
    // (too-short runs yield no occupancy points).
    let duration = if cfg.tiny { 0.06 } else { 0.15 };
    let warmup = if cfg.tiny { 0.02 } else { 0.05 };
    let reps = if cfg.tiny { 2 } else { 5 };
    let opts = |workers| ProfileOptions {
        duration_s: duration,
        warmup_s: warmup,
        seed: 1,
        workers,
        ..Default::default()
    };
    let suite: Vec<_> =
        [SpecWorkload::Mcf, SpecWorkload::Gzip, SpecWorkload::Art, SpecWorkload::Twolf]
            .iter()
            .map(|w| w.params())
            .collect();
    let mut entries = Vec::new();

    let profiler1 = Profiler::new(machine.clone()).with_options(opts(1));
    let params = SpecWorkload::Twolf.params();
    let (ts, _) = measure(reps, || {
        profiler1.profile(&params).expect("profile");
        1
    });
    entries.push(entry("profile_single_8way_tiny", ts, 1, Some("profiles/s"), reps));

    let (t1, n1) = measure(reps, || profiler1.profile_batch(&suite).expect("batch").len() as u64);
    entries.push(entry("profile_batch/workers=1", t1, n1, Some("profiles/s"), reps));

    let profiler_n = Profiler::new(machine.clone()).with_options(opts(cfg.workers));
    let (tn, nn) = measure(reps, || profiler_n.profile_batch(&suite).expect("batch").len() as u64);
    entries.push(entry(
        format!("profile_batch/workers={}", cfg.workers),
        tn,
        nn,
        Some("profiles/s"),
        reps,
    ));

    write_suite(cfg, "profiling", &entries);
}

fn bench_equilibrium(cfg: &Config) {
    let machine = MachineConfig::four_core_server();
    // Enough repetitions for a stable median and a meaningful p90; the
    // solver is fast enough now that reps are cheap.
    let reps = if cfg.tiny { 3 } else { 25 };
    let iters = if cfg.tiny { 20u64 } else { 400 };
    let mut entries = Vec::new();
    for k in [2usize, 3, 4] {
        let feats: Vec<FeatureVector> = (0..k)
            .map(|i| {
                synthetic_feature(
                    &format!("p{i}"),
                    &machine,
                    8 + 2 * i,
                    0.1 + 0.08 * i as f64,
                    0.005 + 0.01 * i as f64,
                )
            })
            .collect();
        let refs: Vec<&FeatureVector> = feats.iter().collect();
        let (tb, nb) = measure(reps, || {
            for _ in 0..iters {
                equilibrium::solve(&refs, 16).expect("solve");
            }
            iters
        });
        entries.push(entry(format!("bisection/{k}"), tb, nb, Some("solves/s"), reps));
        let (tn, nn) = measure(reps, || {
            for _ in 0..iters {
                equilibrium::solve_newton(&refs, 16).expect("solve");
            }
            iters
        });
        entries.push(entry(format!("newton/{k}"), tn, nn, Some("solves/s"), reps));
    }
    // Batched solving: 16 distinct three-way co-run sets through
    // solve_batch (shared scratch, single pass) vs one solve per set.
    let batch_feats: Vec<FeatureVector> = (0..8)
        .map(|i| {
            synthetic_feature(
                &format!("q{i}"),
                &machine,
                6 + i,
                0.08 + 0.05 * i as f64,
                0.004 + 0.006 * i as f64,
            )
        })
        .collect();
    let batch_sets: Vec<equilibrium::CorunSet<'_>> = (0..16)
        .map(|i| equilibrium::CorunSet {
            features: vec![
                &batch_feats[i % 8],
                &batch_feats[(i + 3) % 8],
                &batch_feats[(i + 5) % 8],
            ],
        })
        .collect();
    let batch_iters = iters / 10;
    let (tb, nb) = measure(reps, || {
        for _ in 0..batch_iters.max(1) {
            equilibrium::solve_batch(&batch_sets, 16).expect("batch solve");
        }
        batch_iters.max(1) * batch_sets.len() as u64
    });
    entries.push(entry("newton_batch_16x3", tb, nb, Some("solves/s"), reps));

    let (tf, nf) = measure(reps, || {
        for _ in 0..iters {
            std::hint::black_box(synthetic_feature("p", &machine, 12, 0.15, 0.02));
        }
        iters
    });
    entries.push(entry("feature_vector_construction", tf, nf, Some("features/s"), reps));
    write_suite(cfg, "equilibrium", &entries);
}

fn bench_optimize(cfg: &Config) {
    use mathkit::sync::CancelToken;
    use mpmc_model::assignment::CombinedModel;
    use mpmc_model::optimize::{self, Objective, OptimizeOptions};

    let machine = MachineConfig::four_core_server();
    // Seeded synthetic instance: varied reuse tails and access rates so
    // placements genuinely differ in power and makespan.
    let profiles: Vec<_> = (0..12)
        .map(|i| {
            synthetic_profile(
                &format!("p{i}"),
                &machine,
                0.08 + 0.06 * (i % 5) as f64,
                0.004 + 0.005 * (i % 4) as f64,
            )
        })
        .collect();
    let power = synthetic_power_model(&machine, 64);
    let combined = CombinedModel::new(&machine, &power);
    let cancel = CancelToken::never();
    let reps = if cfg.tiny { 3 } else { 9 };
    let n_exact = if cfg.tiny { 5 } else { 8 };
    let exact_procs: Vec<usize> = (0..n_exact).collect();
    let local_procs: Vec<usize> = (0..profiles.len()).collect();
    let mut entries = Vec::new();

    // Time-to-solution of the exact branch-and-bound engine (the path
    // `mpmc assign --optimize` takes on small machines).
    let exact_opts = OptimizeOptions { workers: cfg.workers, ..OptimizeOptions::default() };
    for objective in [Objective::MinPower, Objective::MinMakespan] {
        let spec = objective.spec().replace(':', "_");
        let (t, _) = measure(reps, || {
            optimize::optimize(&combined, &profiles, &exact_procs, objective, &exact_opts, &cancel)
                .expect("optimize");
            1
        });
        entries.push(entry(format!("exact_4c{n_exact}p/{spec}"), t, 1, Some("searches/s"), reps));
    }

    // Seeded local search on an instance the exact engine would not be
    // asked to enumerate (leaf limit 0 forces the large-machine path).
    let local_opts = OptimizeOptions {
        workers: cfg.workers,
        exhaustive_leaf_limit: 0,
        ..OptimizeOptions::default()
    };
    let (tl, _) = measure(reps, || {
        optimize::optimize(
            &combined,
            &profiles,
            &local_procs,
            Objective::MinPower,
            &local_opts,
            &cancel,
        )
        .expect("local search");
        1
    });
    entries.push(entry(
        format!("local_search_4c{}p/power", local_procs.len()),
        tl,
        1,
        Some("searches/s"),
        reps,
    ));

    // Best-found-vs-exhaustive gap on the seeded exact-size instance:
    // run the local search where brute force is still affordable and
    // report the power ratio (1.000 = the heuristic found the optimum).
    // The ratio rides in the throughput field so the min/median/p90
    // columns keep their time-to-solution meaning.
    let exhaustive =
        optimize::brute_force(&combined, &profiles, &exact_procs, Objective::MinPower, &cancel)
            .expect("brute force");
    let heuristic = optimize::optimize(
        &combined,
        &profiles,
        &exact_procs,
        Objective::MinPower,
        &local_opts,
        &cancel,
    )
    .expect("local search");
    let (tg, _) = measure(reps, || {
        optimize::brute_force(&combined, &profiles, &exact_procs, Objective::MinPower, &cancel)
            .expect("brute force");
        1
    });
    let mut gap_entry =
        entry(format!("brute_force_4c{n_exact}p/power"), tg, 1, Some("x_exhaustive_power"), reps);
    gap_entry.throughput_per_s = Some(heuristic.power_w / exhaustive.power_w.max(1e-12));
    entries.push(gap_entry);

    write_suite(cfg, "optimize", &entries);
}

fn main() {
    let cfg = parse_args();
    bench_simulator(&cfg);
    bench_profiling(&cfg);
    bench_equilibrium(&cfg);
    bench_optimize(&cfg);
}
