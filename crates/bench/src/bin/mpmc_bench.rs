//! `mpmc-bench` — service-level benchmarks. One subcommand so far:
//!
//! ```text
//! mpmc-bench overload [--tiny] [--seed N] [--chaos] [--out DIR]
//! ```
//!
//! The `overload` run is the chaos harness for the prediction daemon:
//! it starts an in-process `PredictionService` with a deliberately small
//! admission budget, then drives it from 4× that many concurrent
//! clients. Request targets follow a Zipf-skewed co-run popularity (a
//! few hot placements dominate, exercising single-flight and the
//! equilibrium cache); per-request wire misbehavior comes from the
//! seeded [`FaultPlan`]: malformed floods, slow-loris writers, mid-line
//! disconnects, and already-expired deadlines (`deadline_ms: 0`).
//! `--chaos` additionally injects solver-latency spikes server-side.
//!
//! Every fault decision is a pure function of `(seed, request index)`,
//! so a run that surfaces a bug is a regression test. The harness's own
//! invariants hold on every run: the daemon never panics, every
//! response is well-formed JSON with a taxonomy error code, and shed
//! requests carry `retry_after_ms`.
//!
//! Results go to `BENCH_serve.json`: throughput, shed rate, outcome
//! counts, and client-observed p50/p90/p99 latency from
//! `mathkit::latency`.

use cmpsim::machine::MachineConfig;
use mathkit::latency::LatencyHistogram;
use mpmc_model::feature::FeatureVector;
use mpmc_model::histogram::ReuseHistogram;
use mpmc_model::power::PowerModel;
use mpmc_model::profile::ProcessProfile;
use mpmc_model::spi::SpiModel;
use mpmc_service::chaos::{mix64, FaultPlan, WireFault};
use mpmc_service::json::{self, Json};
use mpmc_service::{PredictionService, ServeOptions};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Config {
    tiny: bool,
    seed: u64,
    chaos: bool,
    out_dir: String,
}

fn parse_args() -> Config {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: mpmc-bench overload [--tiny] [--seed N] [--chaos] [--out DIR]");
        std::process::exit(2);
    };
    if cmd != "overload" {
        eprintln!("mpmc-bench: unknown subcommand '{cmd}' (expected 'overload')");
        std::process::exit(2);
    }
    let mut cfg = Config { tiny: false, seed: 42, chaos: false, out_dir: ".".to_string() };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => cfg.tiny = true,
            "--chaos" => cfg.chaos = true,
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("mpmc-bench: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                cfg.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("mpmc-bench: --out needs a directory");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("mpmc-bench: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn synthetic_profile(name: &str, tail: f64, api: f64, m: &MachineConfig) -> ProcessProfile {
    let head = 1.0 - tail;
    let hist = ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail)
        .expect("normalized");
    let alpha = api * (m.mem_cycles - m.l2_hit_cycles) as f64 / m.freq_hz;
    let beta = (m.cpi_base + api * m.l2_hit_cycles as f64) / m.freq_hz;
    let feature =
        FeatureVector::new(name, hist, api, SpiModel::new(alpha, beta).expect("spi"), m.l2_assoc())
            .expect("feature");
    ProcessProfile {
        feature,
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 60.0,
        idle_processor_w: 44.0,
    }
}

/// The co-run catalogue: every unordered pair of profiles, one per core.
/// Rank 0 is the hottest under the Zipf skew.
fn corun_requests(names: &[&str]) -> Vec<String> {
    let mut reqs = Vec::new();
    for (i, a) in names.iter().enumerate() {
        for b in &names[i..] {
            reqs.push(format!(r#"{{"op":"estimate","assignment":[["{a}"],["{b}"]]}}"#));
        }
    }
    reqs
}

/// Zipf-skewed rank choice: rank r has weight 1/(r+1), sampled from the
/// deterministic per-request mix.
fn zipf_rank(u: u64, n: usize) -> usize {
    let total: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
    let mut x = (u >> 11) as f64 / (1u64 << 53) as f64 * total;
    for r in 0..n {
        x -= 1.0 / (r + 1) as f64;
        if x <= 0.0 {
            return r;
        }
    }
    n - 1
}

#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    shed: AtomicU64,
    deadline: AtomicU64,
    usage: AtomicU64,
    reconnects: AtomicU64,
    conn_rejected: AtomicU64,
    dropped: AtomicU64,
    degraded: AtomicU64,
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(20)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    fn roundtrip(&mut self, line: &str, fault: WireFault) -> std::io::Result<Option<Json>> {
        match fault {
            WireFault::SlowLoris => {
                // Dribble the request out in three chunks with pauses;
                // the daemon's capped line reader must keep state.
                let bytes = line.as_bytes();
                for chunk in bytes.chunks(bytes.len().div_ceil(3).max(1)) {
                    self.stream.write_all(chunk)?;
                    self.stream.flush()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                self.stream.write_all(b"\n")?;
            }
            WireFault::Disconnect => {
                // Half a line, then hang up mid-request.
                let half = &line.as_bytes()[..line.len() / 2];
                self.stream.write_all(half)?;
                self.stream.flush()?;
                return Ok(None);
            }
            _ => {
                self.stream.write_all(line.as_bytes())?;
                self.stream.write_all(b"\n")?;
            }
        }
        self.stream.flush()?;
        let mut buf = String::new();
        if self.reader.read_line(&mut buf)? == 0 {
            return Ok(None); // daemon closed on us (connection cap)
        }
        Ok(Some(json::parse(buf.trim()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?))
    }
}

#[allow(clippy::too_many_lines)]
fn run_overload(cfg: &Config) {
    let machine = MachineConfig::two_core_workstation();
    let power = PowerModel::from_parts(10.0, vec![2e-7, 1e-6, 3e-6, 1e-7, 1e-7]).expect("power");
    let max_inflight = 2;
    let clients = 4 * max_inflight * 2; // 4x the whole admission budget (inflight + queue)
    let per_client: u64 = if cfg.tiny { 25 } else { 120 };
    let opts = ServeOptions {
        workers: 1,
        cache_capacity: 256,
        max_inflight,
        max_queued: max_inflight,
        queue_wait_ms: 2,
        max_connections: clients + 4,
        singleflight_wait_ms: 10_000,
        ..ServeOptions::default()
    };
    let service = PredictionService::with_options(machine.clone(), power, opts);
    let service = if cfg.chaos {
        let mut plan = FaultPlan::standard(cfg.seed);
        plan.spike_ms = if cfg.tiny { 2 } else { 10 };
        service.with_chaos(plan)
    } else {
        service
    };
    let names = ["gzip", "mcf", "art", "twolf", "vpr", "mesa"];
    for (i, name) in names.iter().enumerate() {
        let p = synthetic_profile(name, 0.08 + 0.07 * i as f64, 0.005 + 0.006 * i as f64, &machine);
        service.register_profile(name, p).expect("register");
    }
    let requests = corun_requests(&names);
    let wire_plan = FaultPlan::standard(cfg.seed ^ 0x00C1_1E17);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let latency = LatencyHistogram::default();
    let outcomes = Outcomes::default();
    // Wall-clock is the measurement here, not a model input.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();

    std::thread::scope(|scope| {
        let service = &service;
        let server = scope.spawn(move || service.run_tcp(listener));

        std::thread::scope(|load| {
            for c in 0..clients {
                let (requests, wire_plan, latency, outcomes) =
                    (&requests, &wire_plan, &latency, &outcomes);
                load.spawn(move || {
                    let mut client = match Client::connect(addr) {
                        Ok(cl) => cl,
                        Err(_) => return,
                    };
                    for j in 0..per_client {
                        let event = c as u64 * per_client + j;
                        let fault = wire_plan.wire_fault(event);
                        let line = match fault {
                            WireFault::Malformed => "{broken::".to_string(),
                            WireFault::ExpiredDeadline => {
                                let rank = zipf_rank(mix64(event ^ 0xDEAD), requests.len());
                                let base = &requests[rank];
                                format!("{},\"deadline_ms\":0}}", &base[..base.len() - 1])
                            }
                            _ => {
                                let rank = zipf_rank(mix64(event), requests.len());
                                requests[rank].clone()
                            }
                        };
                        #[allow(clippy::disallowed_methods)]
                        let sent = Instant::now();
                        match client.roundtrip(&line, fault) {
                            Ok(Some(resp)) => {
                                latency.record(
                                    u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                                let kind = resp
                                    .get("error")
                                    .and_then(|e| e.get("kind"))
                                    .and_then(Json::as_str);
                                match kind {
                                    None => {
                                        if resp.get("degraded") == Some(&Json::Bool(true)) {
                                            outcomes.degraded.fetch_add(1, Ordering::Relaxed);
                                        }
                                        outcomes.ok.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some("overloaded") => {
                                        outcomes.shed.fetch_add(1, Ordering::Relaxed);
                                        // Honor the backoff hint (capped so
                                        // the bench stays fast).
                                        let hint = resp
                                            .get("error")
                                            .and_then(|e| e.get("retry_after_ms"))
                                            .and_then(Json::as_f64)
                                            .unwrap_or(1.0);
                                        std::thread::sleep(Duration::from_millis(
                                            (hint as u64).min(3),
                                        ));
                                    }
                                    Some("deadline_exceeded") => {
                                        outcomes.deadline.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some("too_many_connections") => {
                                        outcomes.conn_rejected.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some(_) => {
                                        outcomes.usage.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Ok(None) | Err(_) => {
                                // Deliberate disconnect, daemon-closed
                                // socket, or wire trouble: reconnect and
                                // keep the schedule going.
                                if fault == WireFault::Disconnect {
                                    outcomes.reconnects.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    outcomes.dropped.fetch_add(1, Ordering::Relaxed);
                                }
                                match Client::connect(addr) {
                                    Ok(fresh) => client = fresh,
                                    Err(_) => return,
                                }
                            }
                        }
                    }
                });
            }
        });

        // Collect server-side stats, then stop the daemon.
        let stats = Client::connect(addr)
            .ok()
            .and_then(|mut cl| cl.roundtrip(r#"{"op":"stats"}"#, WireFault::None).ok().flatten());
        let _ = Client::connect(addr)
            .ok()
            .and_then(|mut cl| cl.roundtrip(r#"{"op":"shutdown"}"#, WireFault::None).ok());
        server.join().expect("server thread").expect("run_tcp");
        let elapsed = started.elapsed().as_secs_f64();
        write_report(cfg, elapsed, clients as u64 * per_client, &latency, &outcomes, stats);
    });
}

fn write_report(
    cfg: &Config,
    elapsed_s: f64,
    scheduled: u64,
    latency: &LatencyHistogram,
    o: &Outcomes,
    stats: Option<Json>,
) {
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let answered = latency.count();
    let shed = get(&o.shed);
    let shed_rate = if answered > 0 { shed as f64 / answered as f64 } else { 0.0 };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"suite\": \"serve\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", if cfg.tiny { "tiny" } else { "full" });
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"chaos\": {},", cfg.chaos);
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(out, "  \"scheduled_requests\": {scheduled},");
    let _ = writeln!(out, "  \"answered_requests\": {answered},");
    let _ = writeln!(out, "  \"elapsed_s\": {elapsed_s:.3},");
    let _ = writeln!(out, "  \"throughput_rps\": {:.1},", answered as f64 / elapsed_s.max(1e-9));
    let _ = writeln!(out, "  \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(out, "  \"outcomes\": {{");
    let _ = writeln!(out, "    \"ok\": {},", get(&o.ok));
    let _ = writeln!(out, "    \"degraded\": {},", get(&o.degraded));
    let _ = writeln!(out, "    \"shed_overloaded\": {shed},");
    let _ = writeln!(out, "    \"deadline_exceeded\": {},", get(&o.deadline));
    let _ = writeln!(out, "    \"typed_usage_errors\": {},", get(&o.usage));
    let _ = writeln!(out, "    \"deliberate_disconnects\": {},", get(&o.reconnects));
    let _ = writeln!(out, "    \"connections_rejected\": {},", get(&o.conn_rejected));
    let _ = writeln!(out, "    \"dropped\": {}", get(&o.dropped));
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"latency\": {{");
    let _ = writeln!(out, "    \"p50_ns\": {},", latency.percentile(0.50));
    let _ = writeln!(out, "    \"p90_ns\": {},", latency.percentile(0.90));
    let _ = writeln!(out, "    \"p99_ns\": {}", latency.percentile(0.99));
    let _ = writeln!(out, "  }},");
    let server_stats = stats
        .as_ref()
        .map(|s| {
            let pick = |path: &[&str]| {
                let mut v = s;
                for p in path {
                    match v.get(p) {
                        Some(next) => v = next,
                        None => return 0.0,
                    }
                }
                v.as_f64().unwrap_or(0.0)
            };
            format!(
                "{{ \"singleflight_shared\": {}, \"eq_cache_hits\": {}, \"breaker_trips\": {}, \
                 \"server_degraded\": {} }}",
                pick(&["singleflight", "shared"]),
                pick(&["eq_cache", "hits"]),
                pick(&["breaker", "trips"]),
                pick(&["requests", "degraded"]),
            )
        })
        .unwrap_or_else(|| "null".to_string());
    let _ = writeln!(out, "  \"server\": {server_stats}");
    let _ = writeln!(out, "}}");

    let path = format!("{}/BENCH_serve.json", cfg.out_dir);
    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("mpmc-bench: cannot create {}: {e}", cfg.out_dir);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("mpmc-bench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    print!("{out}");
    // The harness's own acceptance bar: overload must have been real
    // (something was shed or degraded or deadline-expired under chaos),
    // and the daemon must have answered most of the schedule.
    if answered == 0 {
        eprintln!("mpmc-bench: no requests answered — daemon unreachable?");
        std::process::exit(1);
    }
}

fn main() {
    let cfg = parse_args();
    run_overload(&cfg);
}
