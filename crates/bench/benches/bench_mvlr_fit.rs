//! MVLR fitting cost (backs §4.1): building the Eq. 9 power model from a
//! training corpus.

use bench::synthetic_observations;
use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpmc_model::power::PowerModel;
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let mut group = c.benchmark_group("mvlr_fit");
    for n in [50usize, 300, 2000] {
        let obs = synthetic_observations(&machine, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| PowerModel::fit_mvlr(black_box(&obs)).expect("fit"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
