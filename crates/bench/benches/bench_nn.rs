//! Neural-network power-model cost (backs §4.1): the comparison point the
//! paper uses to justify choosing MVLR ("simplicity in model construction
//! and evaluation").

use bench::{random_rates, synthetic_observations};
use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use mathkit::nn::TrainOptions;
use mpmc_model::power::{CorePowerModel, NnPowerModel};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_train(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let obs = synthetic_observations(&machine, 200);
    let mut group = c.benchmark_group("nn");
    group.sample_size(10);
    group.bench_function("train_200obs_100epochs", |b| {
        b.iter(|| {
            NnPowerModel::fit(
                black_box(&obs),
                TrainOptions { hidden: 8, epochs: 100, ..Default::default() },
            )
            .expect("train")
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let obs = synthetic_observations(&machine, 200);
    let nn = NnPowerModel::fit(&obs, TrainOptions { hidden: 8, epochs: 100, ..Default::default() })
        .expect("train");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let r = random_rates(&mut rng);
    c.bench_function("nn/predict_core", |b| b.iter(|| nn.predict_core(black_box(&r))));
}

criterion_group!(benches, bench_train, bench_predict);
criterion_main!(benches);
