//! Profiling cost (backs §3.4): one stressmark co-run and the full O(A)
//! feature-vector extraction on a reduced machine. This is the paper's
//! one-time per-process cost that replaces exponentially many trial runs.

use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use mpmc_model::profile::{ProfileOptions, Profiler};
use workloads::spec::SpecWorkload;

fn tiny_machine() -> MachineConfig {
    MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
}

fn bench_profile(c: &mut Criterion) {
    let profiler = Profiler::new(tiny_machine()).with_options(ProfileOptions {
        duration_s: 0.15,
        warmup_s: 0.05,
        seed: 1,
        ..Default::default()
    });
    let params = SpecWorkload::Twolf.params();
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.bench_function("feature_vector_8way_tiny", |b| {
        b.iter(|| profiler.profile(&params).expect("profile"))
    });
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
