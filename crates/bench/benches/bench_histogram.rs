//! Histogram-math cost: MPA evaluation, curve tabulation, and the Eq. 8
//! reconstruction used by the profiler.

use bench::synthetic_histogram;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpmc_model::histogram::ReuseHistogram;
use mpmc_model::occupancy::{OccupancyCurve, OccupancyOptions};
use std::hint::black_box;

fn bench_mpa_eval(c: &mut Criterion) {
    let hist = synthetic_histogram(24, 0.2, 0.9);
    c.bench_function("histogram/mpa_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                acc += hist.mpa(black_box(i as f64 * 0.25));
            }
            acc
        })
    });
}

fn bench_from_mpa_curve(c: &mut Criterion) {
    let hist = synthetic_histogram(16, 0.2, 0.9);
    let curve: Vec<f64> = (0..=16).map(|s| hist.mpa_int(s)).collect();
    c.bench_function("histogram/from_mpa_curve", |b| {
        b.iter(|| ReuseHistogram::from_mpa_curve(black_box(&curve)).expect("valid"))
    });
}

fn bench_occupancy_tabulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram/occupancy_curve");
    for assoc in [8usize, 16] {
        let hist = synthetic_histogram(assoc, 0.15, 0.85);
        group.bench_with_input(BenchmarkId::from_parameter(assoc), &assoc, |b, &a| {
            b.iter(|| {
                OccupancyCurve::from_histogram(black_box(&hist), a, OccupancyOptions::default())
                    .expect("curve")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpa_eval, bench_from_mpa_curve, bench_occupancy_tabulation);
criterion_main!(benches);
