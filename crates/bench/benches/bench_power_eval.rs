//! Power-model evaluation cost (backs Tables 2/3 and Fig. 2): the paper's
//! pitch is *on-line* estimation, so predicting processor power from one
//! HPC sample must be near-free.

use bench::{random_rates, synthetic_power_model};
use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use mpmc_model::power::CorePowerModel;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let model = synthetic_power_model(&machine, 300);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let rates: Vec<_> = (0..4).map(|_| random_rates(&mut rng)).collect();

    c.bench_function("power/predict_core", |b| b.iter(|| model.predict_core(black_box(&rates[0]))));
    c.bench_function("power/predict_processor_4core", |b| {
        b.iter(|| model.predict_processor(black_box(&rates)))
    });
}

fn bench_sample_stream(c: &mut Criterion) {
    // A full 33-sample (1 s at 30 ms) validation pass.
    let machine = MachineConfig::four_core_server();
    let model = synthetic_power_model(&machine, 300);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let stream: Vec<Vec<_>> =
        (0..33).map(|_| (0..4).map(|_| random_rates(&mut rng)).collect()).collect();
    c.bench_function("power/validate_33_samples", |b| {
        b.iter(|| stream.iter().map(|rates| model.predict_processor(black_box(rates))).sum::<f64>())
    });
}

criterion_group!(benches, bench_predict, bench_sample_stream);
criterion_main!(benches);
