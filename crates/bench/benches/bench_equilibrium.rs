//! Equilibrium-solver cost (backs Table 1): how fast can the performance
//! model evaluate a co-scheduled set? Includes the bisection-vs-Newton
//! ablation called out in DESIGN.md.

use bench::synthetic_feature;
use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpmc_model::equilibrium;
use mpmc_model::feature::FeatureVector;
use std::hint::black_box;

fn features(machine: &MachineConfig, k: usize) -> Vec<FeatureVector> {
    (0..k)
        .map(|i| {
            synthetic_feature(
                &format!("p{i}"),
                machine,
                8 + 2 * i,
                0.1 + 0.08 * i as f64,
                0.005 + 0.01 * i as f64,
            )
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let mut group = c.benchmark_group("equilibrium");
    for k in [2usize, 3, 4] {
        let feats = features(&machine, k);
        let refs: Vec<&FeatureVector> = feats.iter().collect();
        group.bench_with_input(BenchmarkId::new("bisection", k), &k, |b, _| {
            b.iter(|| equilibrium::solve(black_box(&refs), 16).expect("solve"))
        });
        group.bench_with_input(BenchmarkId::new("newton", k), &k, |b, _| {
            b.iter(|| equilibrium::solve_newton(black_box(&refs), 16).expect("solve"))
        });
    }
    group.finish();
}

fn bench_feature_construction(c: &mut Criterion) {
    // Building a feature vector includes tabulating G(n) (Eq. 4/5).
    let machine = MachineConfig::four_core_server();
    c.bench_function("feature_vector_construction", |b| {
        b.iter(|| synthetic_feature(black_box("p"), &machine, 12, 0.15, 0.02))
    });
}

criterion_group!(benches, bench_solvers, bench_feature_construction);
criterion_main!(benches);
