//! Simulator substrate throughput: accesses simulated per second. This
//! bounds how fast the experiment harness can regenerate the paper's
//! tables.

use cmpsim::engine::{simulate, Placement, SimOptions};
use cmpsim::machine::MachineConfig;
use cmpsim::process::ProcessSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::spec::SpecWorkload;

fn run(machine: &MachineConfig, pairs: &[(usize, SpecWorkload)], duration_s: f64) -> u64 {
    let mut pl = Placement::idle(machine.num_cores());
    for (i, &(core, w)) in pairs.iter().enumerate() {
        pl.assign(
            core,
            ProcessSpec::new(
                w.name(),
                Box::new(w.params().generator(machine.l2_sets, i as u64 + 1)),
            ),
        )
        .unwrap();
    }
    let r = simulate(
        machine,
        pl,
        SimOptions { duration_s, warmup_s: 0.0, seed: 1, ..Default::default() },
    )
    .expect("simulate");
    r.processes.iter().map(|p| p.counters.l2_refs).sum()
}

fn bench_engine(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let mut group = c.benchmark_group("simulator");
    // Calibrate throughput label with a probe run.
    let pairs2 = [(0usize, SpecWorkload::Mcf), (1, SpecWorkload::Gzip)];
    let pairs4 = [
        (0usize, SpecWorkload::Mcf),
        (1, SpecWorkload::Gzip),
        (2, SpecWorkload::Art),
        (3, SpecWorkload::Twolf),
    ];
    let accesses2 = run(&machine, &pairs2, 0.1);
    group.throughput(Throughput::Elements(accesses2));
    group.bench_with_input(BenchmarkId::new("co_run_accesses", 2), &2, |b, _| {
        b.iter(|| run(&machine, &pairs2, 0.1))
    });
    let accesses4 = run(&machine, &pairs4, 0.1);
    group.throughput(Throughput::Elements(accesses4));
    group.bench_with_input(BenchmarkId::new("co_run_accesses", 4), &4, |b, _| {
        b.iter(|| run(&machine, &pairs4, 0.1))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
