//! Combined-model cost (backs Table 4): estimating a tentative
//! assignment's power (Fig. 1 / Eq. 11). The paper's complexity claim is
//! that this replaces exponentially many trial runs; cost grows with the
//! Eq. 10 combination count.

use bench::synthetic_profile;
use cmpsim::machine::MachineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpmc_model::assignment::{Assignment, CombinedModel};
use mpmc_model::profile::ProcessProfile;
use std::hint::black_box;

fn profiles(machine: &MachineConfig, n: usize) -> Vec<ProcessProfile> {
    (0..n)
        .map(|i| {
            synthetic_profile(
                &format!("p{i}"),
                machine,
                0.08 + 0.05 * i as f64,
                0.004 + 0.006 * i as f64,
            )
        })
        .collect()
}

fn bench_estimate(c: &mut Criterion) {
    let machine = MachineConfig::four_core_server();
    let power = bench::synthetic_power_model(&machine, 300);
    let combined = CombinedModel::new(&machine, &power);
    let ps = profiles(&machine, 8);

    let mut group = c.benchmark_group("assignment/estimate_processor_power");
    for procs_per_core in [1usize, 2, 3] {
        let mut asg = Assignment::new(4);
        for core in 0..4 {
            for p in 0..procs_per_core {
                asg.assign(core, (core * procs_per_core + p) % ps.len());
            }
        }
        group.bench_with_input(
            BenchmarkId::new("procs_per_core", procs_per_core),
            &procs_per_core,
            |b, _| {
                b.iter(|| {
                    combined
                        .estimate_processor_power(black_box(&ps), black_box(&asg))
                        .expect("estimate")
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_query(c: &mut Criterion) {
    // The scheduler-facing primitive: "what if process K goes on core C?"
    let machine = MachineConfig::four_core_server();
    let power = bench::synthetic_power_model(&machine, 300);
    let combined = CombinedModel::new(&machine, &power);
    let ps = profiles(&machine, 4);
    let mut current = Assignment::new(4);
    current.assign(0, 0).assign(2, 1);
    c.bench_function("assignment/estimate_after_assigning", |b| {
        b.iter(|| {
            combined
                .estimate_after_assigning(black_box(&ps), black_box(&current), 2, 1)
                .expect("estimate")
        })
    });
}

criterion_group!(benches, bench_estimate, bench_incremental_query);
criterion_main!(benches);
