//! The HPC-event-rate power model (paper §4, Eq. 9).
//!
//! Core power is modeled as idle power plus a linear combination of five
//! event rates — L1RPS, L2RPS, L2MPS, BRPS, FPPS — with coefficients
//! fitted by multi-variable linear regression against measured power.
//! A three-layer sigmoid neural network is provided as the alternative
//! the paper evaluates (96.8 % vs. MVLR's 96.2 %) and rejects for
//! complexity; both implement [`CorePowerModel`] so the experiments can
//! swap them.

use crate::ModelError;
use cmpsim::engine::{simulate, Placement, SimOptions};
use cmpsim::hpc::EventRates;
use cmpsim::machine::MachineConfig;
use cmpsim::process::ProcessSpec;
use mathkit::linreg::LinearRegression;
use mathkit::nn::{SigmoidNetwork, TrainOptions};
use workloads::microbench::Microbench;
use workloads::spec::WorkloadParams;

/// One training observation: a core's event rates and its power share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerObservation {
    /// Per-core event rates during one sampling period.
    pub rates: EventRates,
    /// The core's power during that period (W). Following §4.1, this is
    /// the measured processor power divided by the core count, valid
    /// because training runs put identical load on every core.
    pub core_watts: f64,
}

/// Common interface of the MVLR and NN power models.
pub trait CorePowerModel {
    /// Predicted power of one core given its event rates (W).
    fn predict_core(&self, rates: &EventRates) -> f64;

    /// Predicted power of an idle core (W).
    fn idle_core_watts(&self) -> f64;

    /// Predicted processor power: the sum over all cores' rates (idle
    /// cores contribute their idle power via all-zero rates).
    fn predict_processor(&self, core_rates: &[EventRates]) -> f64 {
        core_rates.iter().map(|r| self.predict_core(r)).sum()
    }
}

/// The paper's chosen model: Eq. 9 fitted by MVLR.
///
/// # Examples
///
/// ```no_run
/// use mpmc_model::power::{build_training_set, CorePowerModel, PowerModel, TrainingOptions};
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let machine = MachineConfig::four_core_server();
/// let suite: Vec<_> = SpecWorkload::table1_suite().iter().map(|w| w.params()).collect();
/// let obs = build_training_set(&machine, &suite, &TrainingOptions::default())?;
/// let model = PowerModel::fit_mvlr(&obs)?;
/// println!("idle core: {:.1} W", model.idle_core_watts());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    reg: LinearRegression,
}

impl PowerModel {
    /// Fits the Eq. 9 coefficients by least squares.
    ///
    /// # Errors
    ///
    /// - [`ModelError::EmptyInput`] if no observations are given.
    /// - Regression errors (too few observations, collinear features).
    pub fn fit_mvlr(observations: &[PowerObservation]) -> Result<Self, ModelError> {
        if observations.is_empty() {
            return Err(ModelError::EmptyInput("power model training set"));
        }
        let xs: Vec<Vec<f64>> =
            observations.iter().map(|o| o.rates.paper_features().to_vec()).collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.core_watts).collect();
        Ok(PowerModel { reg: LinearRegression::fit(&xs, &ys)? })
    }

    /// Reassembles a model from stored coefficients (e.g. loaded from a
    /// file written by [`crate::persist::write_power_model`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if not exactly five
    /// coefficients are given or any value is non-finite.
    pub fn from_parts(idle_core_w: f64, coefficients: Vec<f64>) -> Result<Self, ModelError> {
        if coefficients.len() != 5 {
            return Err(ModelError::InvalidDistribution(format!(
                "the Eq. 9 model has 5 coefficients, got {}",
                coefficients.len()
            )));
        }
        if !idle_core_w.is_finite() || coefficients.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::InvalidDistribution(
                "power-model coefficients must be finite".into(),
            ));
        }
        Ok(PowerModel { reg: LinearRegression::from_parts(idle_core_w, coefficients) })
    }

    /// The five fitted coefficients `c1..c5` for (L1RPS, L2RPS, L2MPS,
    /// BRPS, FPPS).
    pub fn coefficients(&self) -> &[f64] {
        self.reg.coefficients()
    }

    /// Training-set R².
    pub fn r_squared(&self) -> f64 {
        self.reg.r_squared()
    }
}

impl CorePowerModel for PowerModel {
    fn predict_core(&self, rates: &EventRates) -> f64 {
        self.reg.predict(&rates.paper_features())
    }

    fn idle_core_watts(&self) -> f64 {
        self.reg.intercept()
    }
}

/// The §4.1 alternative: a three-layer sigmoid network over the same five
/// features.
#[derive(Debug, Clone)]
pub struct NnPowerModel {
    net: SigmoidNetwork,
    idle: f64,
}

impl NnPowerModel {
    /// Trains the network on the same observations as
    /// [`PowerModel::fit_mvlr`].
    ///
    /// # Errors
    ///
    /// - [`ModelError::EmptyInput`] if no observations are given.
    /// - Training errors from the network.
    pub fn fit(observations: &[PowerObservation], opts: TrainOptions) -> Result<Self, ModelError> {
        if observations.is_empty() {
            return Err(ModelError::EmptyInput("power model training set"));
        }
        let xs: Vec<Vec<f64>> =
            observations.iter().map(|o| o.rates.paper_features().to_vec()).collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.core_watts).collect();
        let net = SigmoidNetwork::train(&xs, &ys, opts)?;
        let idle = net.predict(&[0.0; 5]);
        Ok(NnPowerModel { net, idle })
    }
}

impl CorePowerModel for NnPowerModel {
    fn predict_core(&self, rates: &EventRates) -> f64 {
        self.net.predict(&rates.paper_features())
    }

    fn idle_core_watts(&self) -> f64 {
        self.idle
    }
}

/// Options for assembling the §4.1 training corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOptions {
    /// Duration of each training run (scaled seconds).
    pub duration_s: f64,
    /// Warmup discarded from each run.
    pub warmup_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Instruction budget per microbenchmark intensity level.
    pub microbench_level_instructions: u64,
    /// Duration of the microbenchmark run (longer: it must sweep 48
    /// segments).
    pub microbench_duration_s: f64,
    /// Include the §4.1 microbenchmark in the corpus (default true).
    pub include_microbench: bool,
    /// Include the idle-machine anchor run (default true).
    pub include_idle: bool,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            duration_s: 0.9,
            warmup_s: 0.3,
            seed: 0x7EA1,
            microbench_level_instructions: 500_000,
            microbench_duration_s: 2.4,
            include_microbench: true,
            include_idle: true,
        }
    }
}

/// Builds the training corpus exactly as §4.1 prescribes: for each
/// workload, `N` instances run on the `N` cores (one per core) and each
/// post-warmup sample contributes one observation with
/// `core_watts = measured processor power / N`; the custom microbenchmark
/// is added the same way.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn build_training_set(
    machine: &MachineConfig,
    suite: &[WorkloadParams],
    opts: &TrainingOptions,
) -> Result<Vec<PowerObservation>, ModelError> {
    let n = machine.num_cores();
    let mut observations = Vec::new();

    for (wi, params) in suite.iter().enumerate() {
        let mut placement = Placement::idle(n);
        for core in 0..n {
            placement.assign(
                core,
                ProcessSpec::new(
                    params.name,
                    Box::new(params.generator(machine.l2_sets, (core + 1) as u64)),
                ),
            )?;
        }
        let run = simulate(
            machine,
            placement,
            SimOptions {
                duration_s: opts.duration_s,
                warmup_s: opts.warmup_s,
                seed: opts.seed.wrapping_add(wi as u64 * 0x51_7CC1),
                ..Default::default()
            },
        )?;
        collect_observations(&run, n, &mut observations);
    }

    if !opts.include_microbench {
        if opts.include_idle {
            push_idle_anchor(machine, opts, n, &mut observations)?;
        }
        return Ok(observations);
    }
    // The microbenchmark: same N-instances pattern, longer run so all 48
    // segments are exercised.
    let mut placement = Placement::idle(n);
    for core in 0..n {
        placement.assign(
            core,
            ProcessSpec::new(
                "microbench",
                Box::new(Microbench::new(
                    machine.l2_sets,
                    opts.microbench_level_instructions,
                    (100 + core) as u64,
                )),
            ),
        )?;
    }
    let run = simulate(
        machine,
        placement,
        SimOptions {
            duration_s: opts.microbench_duration_s,
            warmup_s: 0.0,
            seed: opts.seed ^ 0x1C2D,
            ..Default::default()
        },
    )?;
    collect_observations(&run, n, &mut observations);

    if opts.include_idle {
        push_idle_anchor(machine, opts, n, &mut observations)?;
    }
    Ok(observations)
}

/// An all-idle run anchors the regression intercept — the paper's
/// microbenchmark phase 1 exists for exactly this ("the core idle power
/// is recorded").
fn push_idle_anchor(
    machine: &MachineConfig,
    opts: &TrainingOptions,
    n: usize,
    out: &mut Vec<PowerObservation>,
) -> Result<(), ModelError> {
    let idle_run = simulate(
        machine,
        Placement::idle(n),
        SimOptions {
            duration_s: opts.duration_s,
            warmup_s: 0.0,
            seed: opts.seed ^ 0x1D1E,
            ..Default::default()
        },
    )?;
    collect_observations(&idle_run, n, out);
    Ok(())
}

fn collect_observations(
    run: &cmpsim::engine::SimResult,
    n: usize,
    out: &mut Vec<PowerObservation>,
) {
    for sample in run.settled_power() {
        // Average the rates across cores (they are statistically identical
        // by construction), and split the processor power evenly.
        let mut acc = EventRates::default();
        for core in 0..n {
            acc = acc.add(&run.core_samples[core][sample.period]);
        }
        let rates = EventRates {
            ips: acc.ips / n as f64,
            l1rps: acc.l1rps / n as f64,
            l2rps: acc.l2rps / n as f64,
            l2mps: acc.l2mps / n as f64,
            brps: acc.brps / n as f64,
            fpps: acc.fpps / n as f64,
        };
        out.push(PowerObservation { rates, core_watts: sample.measured_watts / n as f64 });
    }
}

/// Convenience: model accuracy in percent over `(rates, measured)` pairs,
/// the figure of merit the paper quotes (100 % minus mean relative error).
pub fn model_accuracy_pct<M: CorePowerModel>(model: &M, samples: &[(Vec<EventRates>, f64)]) -> f64 {
    let predicted: Vec<f64> =
        samples.iter().map(|(rates, _)| model.predict_processor(rates)).collect();
    let measured: Vec<f64> = samples.iter().map(|&(_, m)| m).collect();
    mathkit::stats::accuracy_pct(&predicted, &measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::SpecWorkload;

    fn tiny_machine() -> MachineConfig {
        MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
    }

    fn quick_training() -> TrainingOptions {
        TrainingOptions {
            duration_s: 0.3,
            warmup_s: 0.1,
            seed: 5,
            microbench_level_instructions: 60_000,
            microbench_duration_s: 0.9,
            ..Default::default()
        }
    }

    fn small_suite() -> Vec<WorkloadParams> {
        [SpecWorkload::Gzip, SpecWorkload::Mcf, SpecWorkload::Equake]
            .iter()
            .map(|w| w.params())
            .collect()
    }

    #[test]
    fn mvlr_fits_training_data_well() {
        let m = tiny_machine();
        let obs = build_training_set(&m, &small_suite(), &quick_training()).unwrap();
        assert!(obs.len() > 20, "{} observations", obs.len());
        let model = PowerModel::fit_mvlr(&obs).unwrap();
        assert!(model.r_squared() > 0.9, "R^2 = {}", model.r_squared());
        // Intercept should land near (core idle + uncore share).
        let expect_idle = m.power.core_idle_w + m.power.uncore_w / m.num_cores() as f64;
        assert!(
            (model.idle_core_watts() - expect_idle).abs() < 0.25 * expect_idle,
            "intercept {} vs {}",
            model.idle_core_watts(),
            expect_idle
        );
    }

    #[test]
    fn l2mps_coefficient_is_negative() {
        // The paper's observation: c3 < 0, because misses stall the core
        // and the stalled instruction power is not in the feature set.
        let m = tiny_machine();
        let obs = build_training_set(&m, &small_suite(), &quick_training()).unwrap();
        let model = PowerModel::fit_mvlr(&obs).unwrap();
        assert!(
            model.coefficients()[2] < 0.0,
            "c3 = {} should be negative",
            model.coefficients()[2]
        );
    }

    #[test]
    fn prediction_tracks_truth_on_training_machine() {
        let m = tiny_machine();
        let obs = build_training_set(&m, &small_suite(), &quick_training()).unwrap();
        let model = PowerModel::fit_mvlr(&obs).unwrap();
        // Check against ground truth on a fresh observation-like rate.
        let rates = obs[obs.len() / 2].rates;
        let pred = model.predict_core(&rates);
        let truth = m.power.core_power(&rates) + m.power.uncore_w / m.num_cores() as f64;
        assert!((pred - truth).abs() / truth < 0.15, "pred {pred} vs truth {truth}");
    }

    #[test]
    fn nn_model_comparable_to_mvlr() {
        let m = tiny_machine();
        let obs = build_training_set(&m, &small_suite(), &quick_training()).unwrap();
        let mvlr = PowerModel::fit_mvlr(&obs).unwrap();
        let nn =
            NnPowerModel::fit(&obs, TrainOptions { epochs: 150, hidden: 6, ..Default::default() })
                .unwrap();
        // Compare mean relative error on the training set.
        let err = |f: &dyn Fn(&EventRates) -> f64| -> f64 {
            obs.iter().map(|o| (f(&o.rates) - o.core_watts).abs() / o.core_watts).sum::<f64>()
                / obs.len() as f64
        };
        let e_mvlr = err(&|r| mvlr.predict_core(r));
        let e_nn = err(&|r| nn.predict_core(r));
        assert!(e_mvlr < 0.08, "mvlr err {e_mvlr}");
        assert!(e_nn < 0.15, "nn err {e_nn}");
    }

    #[test]
    fn processor_prediction_sums_cores() {
        let m = tiny_machine();
        let obs = build_training_set(&m, &small_suite(), &quick_training()).unwrap();
        let model = PowerModel::fit_mvlr(&obs).unwrap();
        let r = obs[0].rates;
        let single = model.predict_core(&r);
        let idle = model.idle_core_watts();
        let total = model.predict_processor(&[r, EventRates::default()]);
        assert!((total - (single + idle)).abs() < 1e-9);
    }

    #[test]
    fn empty_training_set_rejected() {
        assert!(matches!(PowerModel::fit_mvlr(&[]), Err(ModelError::EmptyInput(_))));
        assert!(matches!(
            NnPowerModel::fit(&[], TrainOptions::default()),
            Err(ModelError::EmptyInput(_))
        ));
    }
}
