//! The per-process *feature vector* of §3.4.
//!
//! Profiling a process yields four things: its reuse-distance histogram,
//! its L2 access rate per instruction (API), and the SPI–MPA coefficients
//! `(alpha, beta)`. Together they are everything the performance model
//! needs to predict the process's behaviour in any co-scheduled set —
//! which is the paper's headline complexity win: `O(k)` profiling runs
//! cover all `2^k - 1` subsets.

use crate::histogram::ReuseHistogram;
use crate::occupancy::{OccupancyCurve, OccupancyOptions};
use crate::spi::SpiModel;
use crate::ModelError;
use cmpsim::machine::MachineConfig;
use workloads::spec::WorkloadParams;

/// The profiled feature vector of one process, with the derived occupancy
/// curve cached for the solvers.
///
/// # Examples
///
/// ```
/// use mpmc_model::feature::FeatureVector;
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let machine = MachineConfig::four_core_server();
/// let fv = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &machine)?;
/// assert_eq!(fv.name(), "mcf");
/// assert!(fv.mpa(4.0) > fv.mpa(12.0)); // more cache, fewer misses
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FeatureVector {
    name: String,
    hist: ReuseHistogram,
    api: f64,
    spi: SpiModel,
    occupancy: OccupancyCurve,
}

impl FeatureVector {
    /// Assembles a feature vector for a cache of `assoc` ways.
    ///
    /// `api == 0` denotes an *idle* (L2-silent) process: it issues no L2
    /// accesses, occupies no cache, and is partitioned out by the
    /// equilibrium solvers before any iteration.
    ///
    /// # Errors
    ///
    /// - [`ModelError::UnusableProfile`] if `api` is not in `[0, 1]`.
    /// - Propagates occupancy-curve construction errors.
    pub fn new(
        name: impl Into<String>,
        hist: ReuseHistogram,
        api: f64,
        spi: SpiModel,
        assoc: usize,
    ) -> Result<Self, ModelError> {
        if !api.is_finite() || !(0.0..=1.0).contains(&api) {
            return Err(ModelError::UnusableProfile(format!("API must be in [0, 1], got {api}")));
        }
        let occupancy = OccupancyCurve::from_histogram(&hist, assoc, OccupancyOptions::default())?;
        Ok(FeatureVector { name: name.into(), hist, api, spi, occupancy })
    }

    /// Builds the *ground-truth* feature vector of a synthetic workload
    /// from its generator parameters and the machine's timing model,
    /// bypassing profiling. Used to validate the profiler and to study
    /// model error in isolation from measurement error.
    ///
    /// The SPI coefficients follow from the timing model: a block of `1`
    /// instruction costs `cpi_base` cycles plus, per L2 access, the hit
    /// latency or the memory latency, so
    /// `alpha = API * (mem - l2_hit) / f` and
    /// `beta = (cpi_base + API * l2_hit) / f`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors for degenerate parameters.
    pub fn from_workload(
        params: &WorkloadParams,
        machine: &MachineConfig,
    ) -> Result<Self, ModelError> {
        let pattern = &params.pattern;
        let f_run = pattern.streaming_fraction();
        let probs: Vec<f64> = pattern.dist.iter().map(|p| p * (1.0 - f_run)).collect();
        let p_inf = f_run + (1.0 - f_run) * pattern.p_new;
        let hist = ReuseHistogram::new(probs, p_inf)?;
        let api = params.mix.api;
        let alpha =
            api * (machine.mem_cycles as f64 - machine.l2_hit_cycles as f64) / machine.freq_hz;
        let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
        let spi = SpiModel::new(alpha, beta)?;
        FeatureVector::new(params.name, hist, api, spi, machine.l2_assoc())
    }

    /// The process's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reuse-distance histogram.
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.hist
    }

    /// L2 accesses per instruction.
    pub fn api(&self) -> f64 {
        self.api
    }

    /// The fitted SPI model.
    pub fn spi_model(&self) -> &SpiModel {
        &self.spi
    }

    /// The derived occupancy curve `G(n)`.
    pub fn occupancy(&self) -> &OccupancyCurve {
        &self.occupancy
    }

    /// Miss probability at effective size `s` ways (Eq. 2).
    pub fn mpa(&self, s: f64) -> f64 {
        self.hist.mpa(s)
    }

    /// Predicted seconds per instruction at effective size `s` (Eq. 3).
    pub fn spi_at(&self, s: f64) -> f64 {
        self.spi.spi(self.mpa(s))
    }

    /// Predicted L2 accesses per second at effective size `s` (Eq. 6):
    /// `APS = API / SPI`.
    pub fn aps_at(&self, s: f64) -> f64 {
        self.api / self.spi_at(s)
    }

    /// `APS(s)` together with its local slope `d APS / d s`, composed
    /// analytically from the histogram's slope table:
    /// `APS = API / (α·MPA + β)` gives
    /// `dAPS/ds = -API·α·MPA'(s) / SPI(s)²`. One suffix-sum lookup per
    /// call; the fast Newton path uses this instead of finite differences.
    pub fn aps_with_slope(&self, s: f64) -> (f64, f64) {
        let (m, dm) = self.hist.mpa_with_slope(s);
        let spi = self.spi.spi(m);
        let aps = self.api / spi;
        (aps, -self.api * self.spi.alpha() * dm / (spi * spi))
    }

    /// The associativity the cached occupancy curve was built for.
    pub fn assoc(&self) -> usize {
        self.occupancy.max_ways()
    }

    /// Rebuilds the feature vector for a different associativity (e.g.
    /// when re-targeting a profile from the 16-way server to the 12-way
    /// duo machine).
    ///
    /// # Errors
    ///
    /// Propagates occupancy-curve construction errors.
    pub fn with_assoc(&self, assoc: usize) -> Result<Self, ModelError> {
        FeatureVector::new(self.name.clone(), self.hist.clone(), self.api, self.spi, assoc)
    }

    /// Content fingerprint: FNV-1a over the exact bit patterns of
    /// everything an equilibrium solve consumes (histogram mass, API, SPI
    /// coefficients, associativity — the occupancy curve is a pure
    /// function of histogram and associativity). Two feature vectors with
    /// equal fingerprints produce bit-identical solver behaviour, which is
    /// what the equilibrium memo cache and the solvers' canonical process
    /// ordering key on. The display name is deliberately excluded.
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for byte in v.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        fold(self.api.to_bits());
        fold(self.spi.alpha().to_bits());
        fold(self.spi.beta().to_bits());
        fold(self.assoc() as u64);
        fold(self.hist.p_inf().to_bits());
        fold(self.hist.probs().len() as u64);
        for &p in self.hist.probs() {
            fold(p.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::SpecWorkload;

    fn server() -> MachineConfig {
        MachineConfig::four_core_server()
    }

    #[test]
    fn from_workload_all_specs() {
        for w in SpecWorkload::duo_suite() {
            let fv = FeatureVector::from_workload(&w.params(), &server()).unwrap();
            assert_eq!(fv.name(), w.name());
            assert_eq!(fv.assoc(), 16);
            assert!(fv.api() > 0.0);
        }
    }

    #[test]
    fn ground_truth_hist_matches_pattern_mpa() {
        let params = SpecWorkload::Mcf.params();
        let fv = FeatureVector::from_workload(&params, &server()).unwrap();
        for s in 0..=16 {
            let expect = params.pattern.true_mpa(s);
            let got = fv.mpa(s as f64);
            assert!((got - expect).abs() < 1e-9, "s={s}: {got} vs {expect}");
        }
    }

    #[test]
    fn streaming_fraction_included_for_equake() {
        let params = SpecWorkload::Equake.params();
        let fv = FeatureVector::from_workload(&params, &server()).unwrap();
        assert!(fv.histogram().p_inf() > params.pattern.p_new, "streaming mass must be in p_inf");
    }

    #[test]
    fn spi_coefficients_match_timing_model() {
        let m = server();
        let params = SpecWorkload::Gzip.params();
        let fv = FeatureVector::from_workload(&params, &m).unwrap();
        let api = params.mix.api;
        let alpha = api * (m.mem_cycles as f64 - m.l2_hit_cycles as f64) / m.freq_hz;
        let beta = (m.cpi_base + api * m.l2_hit_cycles as f64) / m.freq_hz;
        assert!((fv.spi_model().alpha() - alpha).abs() < 1e-18);
        assert!((fv.spi_model().beta() - beta).abs() < 1e-18);
    }

    #[test]
    fn aps_increases_with_cache() {
        // More cache -> fewer misses -> faster -> more accesses per second.
        let fv = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &server()).unwrap();
        assert!(fv.aps_at(12.0) > fv.aps_at(2.0));
    }

    #[test]
    fn aps_with_slope_matches_value_and_finite_difference() {
        let fv = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &server()).unwrap();
        for s in [0.3, 1.7, 4.4, 9.2] {
            let (aps, daps) = fv.aps_with_slope(s);
            assert!((aps - fv.aps_at(s)).abs() <= 1e-9 * fv.aps_at(s).abs());
            let eps = 1e-6;
            let fd = (fv.aps_at(s + eps) - fv.aps_at(s - eps)) / (2.0 * eps);
            assert!(
                (daps - fd).abs() <= 1e-4 * fd.abs().max(1.0),
                "s={s}: analytic {daps} vs fd {fd}"
            );
        }
    }

    #[test]
    fn api_validation() {
        let hist = ReuseHistogram::new(vec![0.5], 0.5).unwrap();
        let spi = SpiModel::new(1e-8, 1e-8).unwrap();
        assert!(FeatureVector::new("x", hist.clone(), -0.1, spi, 8).is_err());
        assert!(FeatureVector::new("x", hist.clone(), 1.5, spi, 8).is_err());
        assert!(FeatureVector::new("x", hist.clone(), f64::NAN, spi, 8).is_err());
        // API 0 is the idle (L2-silent) process, explicitly allowed.
        assert!(FeatureVector::new("x", hist.clone(), 0.0, spi, 8).is_ok());
        assert!(FeatureVector::new("x", hist, 0.5, spi, 8).is_ok());
    }

    #[test]
    fn content_fingerprint_tracks_content_not_name() {
        let a = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &server()).unwrap();
        let b = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &server()).unwrap();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        let other = FeatureVector::from_workload(&SpecWorkload::Gzip.params(), &server()).unwrap();
        assert_ne!(a.content_fingerprint(), other.content_fingerprint());
        // Same content, different associativity: distinct.
        let narrower = a.with_assoc(12).unwrap();
        assert_ne!(a.content_fingerprint(), narrower.content_fingerprint());
    }

    #[test]
    fn with_assoc_rebuilds() {
        let fv = FeatureVector::from_workload(&SpecWorkload::Vpr.params(), &server()).unwrap();
        let duo = fv.with_assoc(12).unwrap();
        assert_eq!(duo.assoc(), 12);
        assert_eq!(duo.name(), fv.name());
        // Histogram unchanged.
        assert_eq!(duo.histogram(), fv.histogram());
    }
}
