//! Transient cache occupancy: the recursion of Eq. 4 and the expected
//! effective size `G(n)` of Eq. 5.
//!
//! `P_{i,n}` is the probability that a process occupies `i` ways of a set
//! after `n` of its accesses landed in that set, starting from holding
//! nothing. Growth happens on misses (probability `MPA(i)` at size `i`),
//! giving the paper's recursion
//!
//! ```text
//! P_{i,n} = P_{i,n-1} * (1 - MPA(i)) + P_{i-1,n-1} * MPA(i-1)
//! ```
//!
//! capped at the associativity `A` (at full size, further misses evict the
//! process's own lines). `G(n) = sum_i i * P_{i,n}` is monotone
//! non-decreasing in `n`, so it has a well-defined inverse `G^{-1}(S)` —
//! the number of per-set accesses needed to reach an expected occupancy of
//! `S` ways — which is the quantity the equilibrium condition (Eq. 6/7)
//! ratios against the access rate.

use crate::histogram::ReuseHistogram;
use crate::ModelError;
use mathkit::interp::PiecewiseLinear;

/// Options for tabulating `G(n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyOptions {
    /// Maximum number of per-set accesses to tabulate.
    pub n_max: usize,
    /// Stop early when the expected growth per access falls below this.
    pub growth_eps: f64,
}

impl Default for OccupancyOptions {
    fn default() -> Self {
        OccupancyOptions { n_max: 200_000, growth_eps: 1e-9 }
    }
}

/// The tabulated occupancy curve `G(n)` of one process on an `A`-way cache.
///
/// # Examples
///
/// ```
/// use mpmc_model::histogram::ReuseHistogram;
/// use mpmc_model::occupancy::OccupancyCurve;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// // A pure streaming process (every access new): G(n) = min(n, A).
/// let h = ReuseHistogram::new(vec![], 1.0)?;
/// let g = OccupancyCurve::from_histogram(&h, 8, Default::default())?;
/// assert!((g.g(4.0) - 4.0).abs() < 1e-9);
/// assert!((g.g(100.0) - 8.0).abs() < 1e-9);
/// assert!((g.g_inverse(6.0) - 6.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyCurve {
    curve: PiecewiseLinear,
    max_ways: usize,
    saturation: f64,
    flat_inv: FlatInverse,
}

/// Dense, contiguous tables for inverting `G` with its local slope in one
/// O(log n) lookup: strictly increasing occupancy knots `ys`, the access
/// counts `xs` reaching them, and the precomputed per-segment slopes
/// `d G⁻¹ / d S`. The fast Newton path queries this once per process per
/// iteration; keeping the three arrays flat and separate (instead of
/// re-deriving slopes from the piecewise-linear knots per call) is what
/// lets the inner loop stay branch-light and cache-resident.
#[derive(Debug, Clone)]
struct FlatInverse {
    ys: Vec<f64>,
    xs: Vec<f64>,
    slopes: Vec<f64>,
}

impl FlatInverse {
    /// Builds the inverse tables from the (weakly monotone) forward knots.
    /// Flat runs collapse to their leftmost knot, matching
    /// `inverse_monotone`'s "smallest x with eval(x) >= y" convention.
    fn build(xs: &[f64], ys: &[f64]) -> Self {
        let mut inv_xs = Vec::with_capacity(xs.len());
        let mut inv_ys = Vec::with_capacity(ys.len());
        for (&x, &y) in xs.iter().zip(ys) {
            if inv_ys.last().is_none_or(|&last| y > last) {
                inv_xs.push(x);
                inv_ys.push(y);
            }
        }
        let mut slopes = Vec::with_capacity(inv_ys.len().saturating_sub(1));
        for i in 1..inv_ys.len() {
            slopes.push((inv_xs[i] - inv_xs[i - 1]) / (inv_ys[i] - inv_ys[i - 1]));
        }
        FlatInverse { ys: inv_ys, xs: inv_xs, slopes }
    }
}

impl OccupancyCurve {
    /// Tabulates `G(n)` for `hist` on a `max_ways`-associative cache.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if `max_ways == 0`.
    pub fn from_histogram(
        hist: &ReuseHistogram,
        max_ways: usize,
        opts: OccupancyOptions,
    ) -> Result<Self, ModelError> {
        if max_ways == 0 {
            return Err(ModelError::InvalidDistribution("cache needs at least one way".into()));
        }
        let a = max_ways;
        // Miss probability at integer sizes 0..=a (size 0 always misses).
        let mpa: Vec<f64> = (0..=a).map(|s| hist.mpa_int(s)).collect();

        // p[i] = probability of occupying i ways; start before any access.
        let mut p = vec![0.0; a + 1];
        p[0] = 1.0;
        let mut xs = vec![0.0];
        let mut ys = vec![0.0];
        let mut g = 0.0;
        let mut next_record = 1.0_f64;

        for n in 1..=opts.n_max {
            // One access: size i grows to i+1 with probability MPA(i).
            // Iterate downward so each p[i] is updated from the old p[i-1].
            for i in (1..=a).rev() {
                let gain = p[i - 1] * mpa[i - 1];
                let loss = if i < a { p[i] * mpa[i] } else { 0.0 };
                p[i] += gain - loss;
            }
            p[0] *= 1.0 - mpa[0]; // mpa[0] = 1, so p[0] -> 0 after access 1
            let new_g: f64 = p.iter().enumerate().map(|(i, &pi)| i as f64 * pi).sum();
            let growth = new_g - g;
            g = new_g;

            if n as f64 >= next_record || growth < opts.growth_eps || n == opts.n_max {
                xs.push(n as f64);
                ys.push(g);
                next_record = (next_record * 1.05).max(next_record + 1.0);
            }
            if growth < opts.growth_eps {
                break;
            }
        }
        // Enforce exact monotonicity against floating-point wiggle.
        for i in 1..ys.len() {
            if ys[i] < ys[i - 1] {
                ys[i] = ys[i - 1];
            }
        }
        let saturation = ys.last().copied().unwrap_or(0.0);
        let flat_inv = FlatInverse::build(&xs, &ys);
        Ok(OccupancyCurve { curve: PiecewiseLinear::new(xs, ys)?, max_ways, saturation, flat_inv })
    }

    /// Expected occupancy after `n` per-set accesses (clamped to the
    /// tabulated range).
    pub fn g(&self, n: f64) -> f64 {
        self.curve.eval(n)
    }

    /// Smallest per-set access count with expected occupancy `s`; returns
    /// the tabulation limit if `s` is at or beyond the saturation level.
    pub fn g_inverse(&self, s: f64) -> f64 {
        // G is non-decreasing by construction (the tabulation loop
        // clamps), so inversion cannot fail; degrade to the tabulation
        // limit rather than panicking if that ever changes.
        self.curve.inverse_monotone(s).unwrap_or_else(|_| self.curve.domain().1)
    }

    /// `G⁻¹(s)` together with the local inverse slope `d G⁻¹ / d S`, from
    /// the precomputed flat tables. Saturating queries (at or beyond the
    /// curve's reach on either side) report slope 0; NaN propagates.
    ///
    /// This is the fast-Newton variant of [`OccupancyCurve::g_inverse`]:
    /// same saturation semantics, slope-table arithmetic instead of the
    /// knot-ratio interpolation, so values may differ from `g_inverse` in
    /// the last bits but are deterministic for a given curve.
    pub fn g_inverse_with_slope(&self, s: f64) -> (f64, f64) {
        if s.is_nan() {
            return (f64::NAN, f64::NAN);
        }
        let t = &self.flat_inv;
        let n = t.ys.len();
        if n < 2 || s <= t.ys[0] {
            return (t.xs[0], 0.0);
        }
        if s > t.ys[n - 1] {
            return (t.xs[n - 1], 0.0);
        }
        let idx = t.ys.partition_point(|&v| v < s).max(1);
        let slope = t.slopes[idx - 1];
        (t.xs[idx - 1] + (s - t.ys[idx - 1]) * slope, slope)
    }

    /// The associativity this curve was built for.
    pub fn max_ways(&self) -> usize {
        self.max_ways
    }

    /// The occupancy `G` converges to (equals `max_ways` whenever the
    /// histogram has any infinite-distance mass).
    pub fn saturation(&self) -> f64 {
        self.saturation
    }

    /// Largest `n` in the tabulation (inverse queries saturate here).
    pub fn n_max(&self) -> f64 {
        self.curve.domain().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(probs: Vec<f64>, p_inf: f64) -> ReuseHistogram {
        ReuseHistogram::new(probs, p_inf).unwrap()
    }

    #[test]
    fn streaming_grows_one_way_per_access() {
        let g = OccupancyCurve::from_histogram(&hist(vec![], 1.0), 4, Default::default()).unwrap();
        assert!((g.g(1.0) - 1.0).abs() < 1e-12);
        assert!((g.g(3.0) - 3.0).abs() < 1e-12);
        assert!((g.g(50.0) - 4.0).abs() < 1e-9);
        assert_eq!(g.saturation(), 4.0);
    }

    #[test]
    fn first_access_always_occupies_one_line() {
        // Paper: P_{1,1} = 1 regardless of the histogram.
        for h in [hist(vec![0.9], 0.1), hist(vec![0.2, 0.3], 0.5)] {
            let g = OccupancyCurve::from_histogram(&h, 8, Default::default()).unwrap();
            assert!((g.g(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_friendly_grows_slowly() {
        let friendly = hist(vec![0.9], 0.1);
        let hungry = hist(vec![0.1], 0.9);
        let gf = OccupancyCurve::from_histogram(&friendly, 8, Default::default()).unwrap();
        let gh = OccupancyCurve::from_histogram(&hungry, 8, Default::default()).unwrap();
        for n in [4.0, 8.0, 16.0, 32.0] {
            assert!(gf.g(n) < gh.g(n), "n={n}: {} vs {}", gf.g(n), gh.g(n));
        }
    }

    #[test]
    fn zero_tail_histogram_saturates_below_assoc() {
        // All reuse within 2 ways and no new lines after warmup: the
        // process can never hold more than 2 ways.
        let h = hist(vec![0.7, 0.3], 0.0);
        let g = OccupancyCurve::from_histogram(&h, 8, Default::default()).unwrap();
        assert!(g.saturation() <= 2.0 + 1e-6, "{}", g.saturation());
        assert!(g.saturation() > 1.9, "{}", g.saturation());
    }

    #[test]
    fn g_is_monotone() {
        let h = hist(vec![0.5, 0.2, 0.1], 0.2);
        let g = OccupancyCurve::from_histogram(&h, 16, Default::default()).unwrap();
        let mut prev = -1.0;
        for i in 0..200 {
            let v = g.g(i as f64 * 7.3);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let h = hist(vec![0.5, 0.2, 0.1], 0.2);
        let g = OccupancyCurve::from_histogram(&h, 16, Default::default()).unwrap();
        for s in [0.5, 1.0, 3.0, 7.5, 12.0] {
            let n = g.g_inverse(s);
            assert!((g.g(n) - s).abs() < 1e-6, "s={s}: g({n}) = {}", g.g(n));
        }
    }

    #[test]
    fn inverse_saturates_at_n_max() {
        let h = hist(vec![0.7, 0.3], 0.0); // saturation ~2 ways
        let g = OccupancyCurve::from_histogram(&h, 8, Default::default()).unwrap();
        assert_eq!(g.g_inverse(7.0), g.n_max());
    }

    #[test]
    fn flat_inverse_agrees_with_inverse_monotone() {
        let h = hist(vec![0.5, 0.2, 0.1], 0.2);
        let g = OccupancyCurve::from_histogram(&h, 16, Default::default()).unwrap();
        for i in 0..=60 {
            let s = i as f64 * 0.25;
            let (fast, _) = g.g_inverse_with_slope(s);
            let slow = g.g_inverse(s);
            // Same segment, same endpoints: agreement to interpolation
            // round-off (the two use different but equivalent arithmetic).
            let tol = 1e-9 * slow.abs().max(1.0);
            assert!((fast - slow).abs() <= tol, "s={s}: {fast} vs {slow}");
        }
    }

    #[test]
    fn flat_inverse_slope_matches_finite_difference() {
        let h = hist(vec![0.5, 0.2, 0.1], 0.2);
        let g = OccupancyCurve::from_histogram(&h, 16, Default::default()).unwrap();
        for s in [0.7, 2.3, 5.1, 9.9] {
            let (_, slope) = g.g_inverse_with_slope(s);
            let eps = 1e-7;
            let fd = (g.g_inverse(s + eps) - g.g_inverse(s - eps)) / (2.0 * eps);
            assert!(
                (slope - fd).abs() <= 1e-3 * fd.abs().max(1.0),
                "s={s}: slope {slope} vs fd {fd}"
            );
        }
    }

    #[test]
    fn flat_inverse_saturates_with_zero_slope_and_propagates_nan() {
        let h = hist(vec![0.7, 0.3], 0.0); // saturation ~2 ways
        let g = OccupancyCurve::from_histogram(&h, 8, Default::default()).unwrap();
        let (below, s_below) = g.g_inverse_with_slope(-1.0);
        assert_eq!(below, 0.0);
        assert_eq!(s_below, 0.0);
        let (above, s_above) = g.g_inverse_with_slope(7.0);
        assert!(above > 0.0);
        assert_eq!(s_above, 0.0);
        let (nan_v, nan_s) = g.g_inverse_with_slope(f64::NAN);
        assert!(nan_v.is_nan() && nan_s.is_nan());
    }

    #[test]
    fn probability_mass_is_conserved() {
        // Expected size can never exceed the associativity.
        let h = hist(vec![0.3, 0.3], 0.4);
        let g = OccupancyCurve::from_histogram(&h, 4, Default::default()).unwrap();
        assert!(g.g(1e9) <= 4.0 + 1e-9);
    }

    #[test]
    fn zero_ways_rejected() {
        let h = hist(vec![], 1.0);
        assert!(OccupancyCurve::from_histogram(&h, 0, Default::default()).is_err());
    }

    #[test]
    fn analytic_two_way_check() {
        // Size-1 -> size-2 transition with constant miss prob m at size 1:
        // E[G(n)] = 2 - (1-m)^(n-1) - ... derive simply: after first access
        // size is 1; each later access grows w.p. m until size 2.
        // P(still size 1 after n accesses) = (1-m)^(n-1).
        let m = 0.3;
        let h = hist(vec![1.0 - m], m);
        let g = OccupancyCurve::from_histogram(&h, 2, Default::default()).unwrap();
        for n in [2u32, 4, 8] {
            let expect = 2.0 - (1.0 - m).powi(n as i32 - 1);
            assert!((g.g(n as f64) - expect).abs() < 1e-9, "n={n}");
        }
    }
}
