//! Reuse-distance histograms and MPA curves (paper §3.1, Eq. 2).
//!
//! # Distance convention
//!
//! The histogram is indexed by **stack position** `p >= 1`: an access at
//! position `p` touches the process's `p`-th most-recently-used line in a
//! set. Under LRU, a process whose effective cache size is `S` ways hits
//! exactly when `p <= S`, so Eq. 2 becomes
//!
//! ```text
//! MPA(S) = sum_{p > S} hist(p) + p_inf
//! ```
//!
//! where `p_inf` is the probability mass of accesses to lines that can
//! never hit (new lines, streaming accesses, reuse deeper than the
//! histogram's support).

use crate::ModelError;
use mathkit::interp::PiecewiseLinear;

/// A normalized reuse-distance histogram.
///
/// # Examples
///
/// ```
/// use mpmc_model::histogram::ReuseHistogram;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// // 60% of accesses re-touch the MRU line, 30% position 2, 10% new.
/// let h = ReuseHistogram::new(vec![0.6, 0.3], 0.1)?;
/// assert!((h.mpa(1.0) - 0.4).abs() < 1e-12); // misses: position 2 + new
/// assert!((h.mpa(2.0) - 0.1).abs() < 1e-12); // only new lines miss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseHistogram {
    probs: Vec<f64>,
    p_inf: f64,
    /// Precomputed tail masses: `tail[s] = sum_{p > s} probs + p_inf`, so
    /// `tail[s] == mpa_int(s)` for `s <= probs.len()`. The equilibrium
    /// solvers call `mpa` in their innermost loop; caching the suffix sums
    /// makes each lookup O(1) instead of O(depth).
    tail: Vec<f64>,
}

impl ReuseHistogram {
    /// Finishes construction from normalized parts, building the suffix-sum
    /// table. Crate-visible so fault-injection tests and cross-checks can
    /// build deliberately unnormalized histograms.
    pub(crate) fn from_parts(probs: Vec<f64>, p_inf: f64) -> Self {
        let mut tail = vec![0.0; probs.len() + 1];
        tail[probs.len()] = p_inf;
        for s in (0..probs.len()).rev() {
            tail[s] = probs[s] + tail[s + 1];
        }
        ReuseHistogram { probs, p_inf, tail }
    }

    /// Creates a histogram from per-position probabilities (`probs[i]` is
    /// the mass at position `i + 1`) and the infinite-distance mass.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if any probability is
    /// negative/non-finite or the total differs from 1 by more than 1e-6
    /// (small measurement slack is renormalized away).
    pub fn new(probs: Vec<f64>, p_inf: f64) -> Result<Self, ModelError> {
        if probs.iter().chain(std::iter::once(&p_inf)).any(|&p| !p.is_finite() || p < 0.0) {
            return Err(ModelError::InvalidDistribution(
                "probabilities must be finite and non-negative".into(),
            ));
        }
        let total: f64 = probs.iter().sum::<f64>() + p_inf;
        if (total - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidDistribution(format!(
                "histogram mass is {total}, expected 1"
            )));
        }
        // Renormalize the tiny numerical slack.
        let probs = probs.iter().map(|p| p / total).collect();
        Ok(ReuseHistogram::from_parts(probs, p_inf / total))
    }

    /// Builds a histogram from a measured MPA curve (Eq. 8):
    /// `mpa_at[s]` is the misses-per-access observed at an effective cache
    /// size of `s` ways, for `s = 0..=A`. Position masses are the
    /// differences `hist(s) = MPA(s-1) - MPA(s)`, and the residual
    /// `MPA(A)` becomes the infinite-distance mass.
    ///
    /// Non-monotonicity from measurement noise is clipped to zero mass.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if fewer than two points
    /// are provided or values leave `[0, 1 + eps]`.
    pub fn from_mpa_curve(mpa_at: &[f64]) -> Result<Self, ModelError> {
        if mpa_at.len() < 2 {
            return Err(ModelError::InvalidDistribution(
                "an MPA curve needs at least sizes 0 and 1".into(),
            ));
        }
        if mpa_at.iter().any(|&m| !m.is_finite() || !(0.0..=1.0 + 1e-9).contains(&m)) {
            return Err(ModelError::InvalidDistribution("MPA values must lie in [0, 1]".into()));
        }
        let mut probs = Vec::with_capacity(mpa_at.len() - 1);
        for w in mpa_at.windows(2) {
            probs.push((w[0] - w[1]).max(0.0));
        }
        let p_inf = match mpa_at.last() {
            Some(&m) => m,
            None => return Err(ModelError::EmptyInput("MPA curve")),
        };
        // The curve may not start exactly at MPA(0) = 1 (noise, or the
        // caller measured from s=1); renormalize to total mass 1.
        let total: f64 = probs.iter().sum::<f64>() + p_inf;
        if total <= 0.0 {
            return Err(ModelError::InvalidDistribution("MPA curve is identically zero".into()));
        }
        Ok(ReuseHistogram::from_parts(probs.iter().map(|p| p / total).collect(), p_inf / total))
    }

    /// Scales the infinite-distance (tail) mass by `factor` in place and
    /// renormalizes the whole distribution back to total mass 1. Used by
    /// the metamorphic validation layer: for `factor >= 1` the predicted
    /// MPA at every size can only go up (more of the access stream can
    /// never hit), and conversely for `factor < 1`.
    ///
    /// The cached suffix sums are rebuilt, so `mpa()`/`mpa_int()` reflect
    /// the mutated distribution immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if `factor` is negative
    /// or non-finite, or if scaling leaves no mass at all (a pure-tail
    /// histogram scaled by 0).
    pub fn scale_tail(&mut self, factor: f64) -> Result<(), ModelError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(ModelError::InvalidDistribution(format!(
                "tail scale factor must be finite and non-negative, got {factor}"
            )));
        }
        let finite_mass: f64 = self.probs.iter().sum();
        let total = finite_mass + self.p_inf * factor;
        if total <= 0.0 {
            return Err(ModelError::InvalidDistribution(
                "scaling removed all histogram mass".into(),
            ));
        }
        let probs: Vec<f64> = self.probs.iter().map(|p| p / total).collect();
        *self = ReuseHistogram::from_parts(probs, self.p_inf * factor / total);
        Ok(())
    }

    /// A copy with the tail mass scaled by `factor` (see
    /// [`ReuseHistogram::scale_tail`]).
    ///
    /// # Errors
    ///
    /// As for [`ReuseHistogram::scale_tail`].
    pub fn with_scaled_tail(&self, factor: f64) -> Result<Self, ModelError> {
        let mut h = self.clone();
        h.scale_tail(factor)?;
        Ok(h)
    }

    /// Per-position probabilities (`probs()[i]` is position `i + 1`).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Infinite-distance mass.
    pub fn p_inf(&self) -> f64 {
        self.p_inf
    }

    /// Miss probability at a (possibly fractional) effective cache size of
    /// `s` ways: Eq. 2 with linear interpolation between integer sizes.
    /// Fractional sizes arise because the equilibrium solver works in a
    /// continuous relaxation of the way count.
    pub fn mpa(&self, s: f64) -> f64 {
        if s <= 0.0 {
            return 1.0;
        }
        let floor = s.floor() as usize;
        let frac = s - floor as f64;
        let m0 = self.mpa_int(floor);
        if mathkit::float::exactly_zero(frac) {
            return m0;
        }
        let m1 = self.mpa_int(floor + 1);
        m0 + (m1 - m0) * frac
    }

    /// Miss probability at an integer size (tail mass beyond position `s`).
    pub fn mpa_int(&self, s: usize) -> f64 {
        self.tail[s.min(self.probs.len())]
    }

    /// `MPA(s)` together with its local slope `d MPA / d s`, in one pass
    /// over the cached suffix sums. The slope is the right-derivative of
    /// the piecewise-linear interpolation (`mpa_int(floor+1) -
    /// mpa_int(floor)`), and 0 beyond the histogram's depth where MPA has
    /// saturated at `p_inf`. NaN propagates. Used by the fast Newton path
    /// to build its analytic Jacobian without finite differencing.
    pub fn mpa_with_slope(&self, s: f64) -> (f64, f64) {
        if s.is_nan() {
            return (f64::NAN, f64::NAN);
        }
        if s <= 0.0 {
            return (1.0, 0.0);
        }
        let depth = self.probs.len();
        let floor = s.floor() as usize;
        if floor >= depth {
            return (self.tail[depth], 0.0);
        }
        let frac = s - floor as f64;
        let m0 = self.tail[floor];
        let m1 = self.tail[floor + 1];
        (m0 + (m1 - m0) * frac, m1 - m0)
    }

    /// The MPA curve tabulated at integer sizes `0..=max_ways`, as a
    /// monotone piecewise-linear function usable by the solvers.
    ///
    /// # Errors
    ///
    /// Propagates interpolant construction errors (cannot occur for
    /// `max_ways >= 1`).
    pub fn mpa_curve(&self, max_ways: usize) -> Result<PiecewiseLinear, ModelError> {
        let xs: Vec<f64> = (0..=max_ways).map(|s| s as f64).collect();
        let ys: Vec<f64> = (0..=max_ways).map(|s| self.mpa_int(s)).collect();
        Ok(PiecewiseLinear::new(xs, ys)?)
    }

    /// Deepest position with non-zero mass (0 if all mass is at infinity).
    pub fn depth(&self) -> usize {
        self.probs.iter().rposition(|&p| p > 0.0).map_or(0, |i| i + 1)
    }

    /// The largest effective cache size this process can benefit from: one
    /// way beyond its depth adds no hits. Processes with `p_inf > 0` still
    /// miss at this size.
    pub fn saturation_ways(&self) -> usize {
        self.depth()
    }

    /// Mean finite stack position (a locality summary; lower is more
    /// cache-friendly), or 0 if all mass is infinite.
    pub fn mean_position(&self) -> f64 {
        let finite: f64 = self.probs.iter().sum();
        if mathkit::float::exactly_zero(finite) {
            return 0.0;
        }
        self.probs.iter().enumerate().map(|(i, &p)| (i + 1) as f64 * p).sum::<f64>() / finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> ReuseHistogram {
        ReuseHistogram::new(vec![0.4, 0.3, 0.2], 0.1).unwrap()
    }

    #[test]
    fn mpa_integer_points() {
        let h = simple();
        assert!((h.mpa(0.0) - 1.0).abs() < 1e-12);
        assert!((h.mpa(1.0) - 0.6).abs() < 1e-12);
        assert!((h.mpa(2.0) - 0.3).abs() < 1e-12);
        assert!((h.mpa(3.0) - 0.1).abs() < 1e-12);
        assert!((h.mpa(10.0) - 0.1).abs() < 1e-12); // saturates at p_inf
    }

    #[test]
    fn mpa_interpolates() {
        let h = simple();
        assert!((h.mpa(1.5) - 0.45).abs() < 1e-12);
        assert!((h.mpa(0.5) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mpa_monotone_nonincreasing() {
        let h = simple();
        let mut prev = f64::INFINITY;
        for i in 0..40 {
            let m = h.mpa(i as f64 * 0.25);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn mpa_with_slope_matches_value_and_segments() {
        let h = simple();
        for i in 0..=40 {
            let s = i as f64 * 0.25;
            let (m, dm) = h.mpa_with_slope(s);
            assert!((m - h.mpa(s)).abs() < 1e-15, "s={s}");
            if s > 0.0 && s < 3.0 && !mathkit::float::exactly_zero(s - s.floor()) {
                let eps = 1e-9;
                let fd = (h.mpa(s + eps) - h.mpa(s - eps)) / (2.0 * eps);
                assert!((dm - fd).abs() < 1e-5, "s={s}: {dm} vs {fd}");
            }
        }
        // Saturated region: slope exactly 0, value exactly p_inf.
        let (m, dm) = h.mpa_with_slope(10.0);
        assert_eq!(m, h.p_inf());
        assert_eq!(dm, 0.0);
        // NaN propagates instead of silently mapping to a finite value.
        let (nm, nd) = h.mpa_with_slope(f64::NAN);
        assert!(nm.is_nan() && nd.is_nan());
    }

    #[test]
    fn normalization_enforced() {
        assert!(ReuseHistogram::new(vec![0.5, 0.4], 0.5).is_err());
        assert!(ReuseHistogram::new(vec![-0.1, 1.0], 0.1).is_err());
        assert!(ReuseHistogram::new(vec![f64::NAN], 0.0).is_err());
        // Tiny slack is fine and renormalized.
        let h = ReuseHistogram::new(vec![0.6, 0.4 + 1e-9], 0.0).unwrap();
        let total: f64 = h.probs().iter().sum::<f64>() + h.p_inf();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_mpa_curve_roundtrip() {
        let h = simple();
        let curve: Vec<f64> = (0..=5).map(|s| h.mpa_int(s)).collect();
        let h2 = ReuseHistogram::from_mpa_curve(&curve).unwrap();
        assert!((h2.probs()[0] - 0.4).abs() < 1e-12);
        assert!((h2.probs()[1] - 0.3).abs() < 1e-12);
        assert!((h2.probs()[2] - 0.2).abs() < 1e-12);
        assert!((h2.p_inf() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_mpa_curve_clips_noise() {
        // Noisy curve with a non-monotone wiggle.
        let h = ReuseHistogram::from_mpa_curve(&[1.0, 0.5, 0.52, 0.2]).unwrap();
        assert_eq!(h.probs()[1], 0.0); // clipped
        assert!(h.probs()[0] > 0.0);
        let total: f64 = h.probs().iter().sum::<f64>() + h.p_inf();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_mpa_curve_validation() {
        assert!(ReuseHistogram::from_mpa_curve(&[1.0]).is_err());
        assert!(ReuseHistogram::from_mpa_curve(&[1.0, -0.1]).is_err());
        assert!(ReuseHistogram::from_mpa_curve(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn depth_and_saturation() {
        assert_eq!(simple().depth(), 3);
        assert_eq!(simple().saturation_ways(), 3);
        let h = ReuseHistogram::new(vec![0.0, 0.0], 1.0).unwrap();
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn mean_position() {
        let h = simple();
        // (1*0.4 + 2*0.3 + 3*0.2) / 0.9
        assert!((h.mean_position() - 1.6 / 0.9).abs() < 1e-12);
        let all_inf = ReuseHistogram::new(vec![], 1.0).unwrap();
        assert_eq!(all_inf.mean_position(), 0.0);
    }

    #[test]
    fn cached_tail_matches_naive_sum() {
        let h = ReuseHistogram::new(vec![0.25, 0.2, 0.15, 0.1, 0.05], 0.25).unwrap();
        for s in 0..=8 {
            let naive: f64 = h.probs().iter().skip(s).sum::<f64>() + h.p_inf();
            assert!((h.mpa_int(s) - naive).abs() < 1e-12, "s={s}");
        }
    }

    #[test]
    fn mutation_rebuilds_suffix_cache() {
        // Audit for the suffix-sum cache: query mpa() first (so the cache
        // is live), mutate, then check every size against a histogram
        // built fresh from the mutated parts. A stale cache would keep
        // answering with pre-mutation tail masses.
        let mut h = simple();
        let before = h.mpa(1.0);
        h.scale_tail(3.0).unwrap();
        let fresh = ReuseHistogram::new(h.probs().to_vec(), h.p_inf()).unwrap();
        for s in 0..=6 {
            assert_eq!(
                h.mpa_int(s).to_bits(),
                fresh.mpa_int(s).to_bits(),
                "stale suffix cache at s={s}"
            );
        }
        assert!(h.mpa(1.0) > before, "tripled tail must raise the miss rate");
        let total: f64 = h.probs().iter().sum::<f64>() + h.p_inf();
        assert!((total - 1.0).abs() < 1e-12, "mutation must renormalize");
    }

    #[test]
    fn tail_scaling_is_monotone_in_mpa() {
        let h = simple();
        for factor in [1.0, 1.5, 4.0] {
            let scaled = h.with_scaled_tail(factor).unwrap();
            for i in 0..=24 {
                let s = i as f64 * 0.25;
                assert!(
                    scaled.mpa(s) >= h.mpa(s) - 1e-12,
                    "factor {factor}, s={s}: {} < {}",
                    scaled.mpa(s),
                    h.mpa(s)
                );
            }
        }
        // Shrinking the tail can only lower the miss rate.
        let shrunk = h.with_scaled_tail(0.5).unwrap();
        assert!(shrunk.mpa(3.0) <= h.mpa(3.0) + 1e-12);
    }

    #[test]
    fn tail_scaling_rejects_bad_factors() {
        let mut h = simple();
        assert!(h.scale_tail(-1.0).is_err());
        assert!(h.scale_tail(f64::NAN).is_err());
        let mut pure_tail = ReuseHistogram::new(vec![], 1.0).unwrap();
        assert!(pure_tail.scale_tail(0.0).is_err(), "no mass left");
        // Factor 1 is the identity (up to renormalization round-off).
        let same = h.with_scaled_tail(1.0).unwrap();
        for s in 0..=4 {
            assert!((same.mpa_int(s) - h.mpa_int(s)).abs() < 1e-15);
        }
    }

    #[test]
    fn mpa_curve_is_invertible_monotone() {
        let c = simple().mpa_curve(8).unwrap();
        assert_eq!(c.domain(), (0.0, 8.0));
        // Decreasing curve: inverse_monotone must reject it (it requires
        // non-decreasing), confirming orientation.
        assert!(c.inverse_monotone(0.5).is_err());
        assert!((c.eval(1.0) - 0.6).abs() < 1e-12);
    }
}
