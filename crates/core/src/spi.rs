//! The SPI–MPA linear relationship (paper Eq. 3).
//!
//! The paper observes (and Choi et al. re-affirm) that seconds per
//! instruction is linear in misses per access:
//! `SPI = alpha * MPA + beta`. `alpha` captures the memory latency paid
//! per L2 access-miss, weighted by the access rate; `beta` is the
//! miss-free execution time per instruction.

use crate::ModelError;
use mathkit::linreg::fit_line;

/// A fitted `SPI = alpha * MPA + beta` model for one process.
///
/// # Examples
///
/// ```
/// use mpmc_model::spi::SpiModel;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let m = SpiModel::fit(&[(0.0, 1.0e-8), (0.5, 2.0e-8), (1.0, 3.0e-8)])?;
/// assert!((m.alpha() - 2.0e-8).abs() < 1e-15);
/// assert!((m.beta() - 1.0e-8).abs() < 1e-15);
/// assert!((m.spi(0.25) - 1.5e-8).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpiModel {
    alpha: f64,
    beta: f64,
}

impl SpiModel {
    /// Creates a model from known coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDistribution`] if `beta <= 0` (an
    /// instruction cannot take non-positive time at zero miss rate) or
    /// either coefficient is non-finite. `alpha < 0` is rejected too:
    /// more misses can only slow a process down.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ModelError> {
        if !alpha.is_finite() || !beta.is_finite() || beta <= 0.0 || alpha < 0.0 {
            return Err(ModelError::InvalidDistribution(format!(
                "SPI coefficients out of domain: alpha={alpha}, beta={beta}"
            )));
        }
        Ok(SpiModel { alpha, beta })
    }

    /// Fits `alpha` and `beta` from `(MPA, SPI)` observations by least
    /// squares — the paper's offline characterization step.
    ///
    /// # Errors
    ///
    /// - [`ModelError::EmptyInput`] if fewer than two observations.
    /// - Regression errors from collinearity (all MPAs identical).
    /// - Domain errors from [`SpiModel::new`] if the fit is unphysical
    ///   (e.g. negative `beta` from wild noise). A slightly negative
    ///   fitted `alpha` (a flat workload plus noise) is clamped to zero.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, ModelError> {
        if points.len() < 2 {
            return Err(ModelError::EmptyInput("SPI fit needs at least two (MPA, SPI) points"));
        }
        let x: Vec<f64> = points.iter().map(|p| p.0).collect();
        let y: Vec<f64> = points.iter().map(|p| p.1).collect();
        let (alpha, beta) = fit_line(&x, &y)?;
        SpiModel::new(alpha.max(0.0), beta)
    }

    /// The slope (seconds per instruction per unit MPA).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The intercept (miss-free seconds per instruction).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Predicted seconds per instruction at miss ratio `mpa`.
    pub fn spi(&self, mpa: f64) -> f64 {
        self.alpha * mpa + self.beta
    }

    /// Predicted instructions per second at miss ratio `mpa`.
    pub fn ips(&self, mpa: f64) -> f64 {
        1.0 / self.spi(mpa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let m = i as f64 / 8.0;
                (m, 3e-8 * m + 5e-9)
            })
            .collect();
        let model = SpiModel::fit(&pts).unwrap();
        assert!((model.alpha() - 3e-8).abs() < 1e-16);
        assert!((model.beta() - 5e-9).abs() < 1e-16);
    }

    #[test]
    fn fit_clamps_small_negative_alpha() {
        // Flat SPI with noise can fit slightly negative; clamp to zero.
        let pts = [(0.1, 1.0e-8), (0.2, 0.99e-8), (0.3, 1.01e-8), (0.4, 1.0e-8)];
        let model = SpiModel::fit(&pts).unwrap();
        assert!(model.alpha() >= 0.0);
    }

    #[test]
    fn domain_validation() {
        assert!(SpiModel::new(1.0, 0.0).is_err());
        assert!(SpiModel::new(1.0, -1.0).is_err());
        assert!(SpiModel::new(-1.0, 1.0).is_err());
        assert!(SpiModel::new(f64::NAN, 1.0).is_err());
        assert!(SpiModel::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn fit_needs_two_points() {
        assert!(matches!(SpiModel::fit(&[(0.1, 1.0)]), Err(ModelError::EmptyInput(_))));
    }

    #[test]
    fn identical_mpas_rejected() {
        let pts = [(0.3, 1.0e-8), (0.3, 1.1e-8), (0.3, 0.9e-8)];
        assert!(SpiModel::fit(&pts).is_err());
    }

    #[test]
    fn spi_and_ips_are_inverse() {
        let m = SpiModel::new(2e-8, 1e-8).unwrap();
        let mpa = 0.37;
        assert!((m.spi(mpa) * m.ips(mpa) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_misses_never_faster() {
        let m = SpiModel::new(2e-8, 1e-8).unwrap();
        assert!(m.spi(0.8) >= m.spi(0.2));
    }
}
