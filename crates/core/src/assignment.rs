//! The combined performance + power model for assignment-time power
//! estimation (paper §5, Fig. 1, Eq. 11).
//!
//! The power model alone cannot evaluate a *tentative* assignment: its
//! inputs are HPC rates that exist only after the processes run. The
//! combined model closes the loop with profiling data. Instruction-related
//! event rates (L1RPI, L2RPI, BRPI, FPPI) are process properties fixed by
//! the input data; contention only changes SPI and the miss ratio L2MPR —
//! both of which the performance model predicts. Each per-second rate is
//! then `rate = per-instruction rate / SPI`, and Eq. 9 turns the rates
//! into power. Averaging over the Eq. 10 process combinations yields the
//! processor power of the assignment — using profiling data only.

use crate::eqcache::{EqCacheStats, EquilibriumCache};
use crate::equilibrium::{self, Equilibrium, SolveDiagnostics};
use crate::feature::FeatureVector;
use crate::perf::PerformanceModel;
use crate::power::CorePowerModel;
use crate::profile::ProcessProfile;
use crate::sharing::combination_average_cancellable;
use crate::ModelError;
use cmpsim::hpc::EventRates;
use cmpsim::machine::MachineConfig;
use cmpsim::types::{CoreId, DieId};
use mathkit::sync::CancelToken;
use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;

/// A tentative process-to-core mapping over profile indices.
///
/// # Examples
///
/// ```
/// use mpmc_model::assignment::Assignment;
///
/// let mut asg = Assignment::new(4);
/// asg.assign(0, 2).assign(0, 1).assign(3, 0);
/// assert_eq!(asg.processes_on(0), &[2, 1]);
/// assert_eq!(asg.num_processes(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    per_core: Vec<Vec<usize>>,
}

impl Assignment {
    /// An empty assignment over `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        Assignment { per_core: vec![Vec::new(); num_cores] }
    }

    /// Adds process `profile_idx` to `core`'s run queue.
    ///
    /// Prefer [`Assignment::try_assign`] anywhere `core` comes from the
    /// outside world (wire requests, CLI arguments); this infallible name
    /// is for call sites whose index is locally proved in range.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn assign(&mut self, core: usize, profile_idx: usize) -> &mut Self {
        self.per_core[core].push(profile_idx);
        self
    }

    /// Fallible [`Assignment::assign`]: rejects an out-of-range `core`
    /// with a typed error instead of panicking, so wire- and CLI-driven
    /// callers cannot crash the process with a bad index.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCore`] if `core >= self.num_cores()`.
    pub fn try_assign(&mut self, core: usize, profile_idx: usize) -> Result<&mut Self, ModelError> {
        if core >= self.per_core.len() {
            return Err(ModelError::InvalidCore { core, num_cores: self.per_core.len() });
        }
        self.per_core[core].push(profile_idx);
        Ok(self)
    }

    /// The processes queued on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range; see
    /// [`Assignment::try_processes_on`] for untrusted indices.
    pub fn processes_on(&self, core: usize) -> &[usize] {
        &self.per_core[core]
    }

    /// Fallible [`Assignment::processes_on`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCore`] if `core >= self.num_cores()`.
    pub fn try_processes_on(&self, core: usize) -> Result<&[usize], ModelError> {
        self.per_core
            .get(core)
            .map(Vec::as_slice)
            .ok_or(ModelError::InvalidCore { core, num_cores: self.per_core.len() })
    }

    /// Number of cores this assignment covers.
    pub fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total processes assigned.
    pub fn num_processes(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// A copy with `profile_idx` additionally assigned to `core` — the
    /// "what if process K goes on core C" primitive of Fig. 1.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range; see
    /// [`Assignment::try_with_assigned`] for untrusted indices.
    pub fn with_assigned(&self, core: usize, profile_idx: usize) -> Assignment {
        let mut next = self.clone();
        next.assign(core, profile_idx);
        next
    }

    /// Fallible [`Assignment::with_assigned`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCore`] if `core >= self.num_cores()`.
    pub fn try_with_assigned(
        &self,
        core: usize,
        profile_idx: usize,
    ) -> Result<Assignment, ModelError> {
        let mut next = self.clone();
        next.try_assign(core, profile_idx)?;
        Ok(next)
    }

    /// The per-core run queues as owned index lists (wire/diagnostic
    /// serialization helper).
    pub fn to_queues(&self) -> Vec<Vec<usize>> {
        self.per_core.clone()
    }
}

/// Where a degraded estimate's equilibria came from, ordered best to
/// worst. When one estimate mixes tiers across its Eq. 10 combinations,
/// the *worst* tier used is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedSource {
    /// Every contended combination was answered from a (possibly stale)
    /// exact cache entry — numerically identical to a fresh solve.
    ExactCache,
    /// At least one combination reused a cached *neighbor* co-run's
    /// cache split (same co-runner count, all but one fingerprint
    /// shared), re-rated against the requesting co-run's own curves.
    StaleNeighbor,
    /// At least one combination fell through to the proportional-to-API
    /// closed-form split ([`equilibrium::solve_proportional`]).
    ProportionalSplit,
}

impl Ord for DegradedSource {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

impl PartialOrd for DegradedSource {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl DegradedSource {
    /// Stable lowercase label for wire protocols and logs.
    pub fn name(self) -> &'static str {
        match self {
            DegradedSource::ExactCache => "exact_cache",
            DegradedSource::StaleNeighbor => "stale_neighbor",
            DegradedSource::ProportionalSplit => "proportional_split",
        }
    }
}

/// A degraded-tier power estimate: the value plus an honest account of
/// where its equilibria came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedEstimate {
    /// Estimated average processor power (watts).
    pub power_w: f64,
    /// The worst equilibrium source any combination needed.
    pub source: DegradedSource,
}

/// How [`CombinedModel::combination_power`] obtains equilibria: the
/// exact solver (with a cancellation token) or the no-solve degraded
/// tier (tracking the worst source used).
enum SolveMode<'c> {
    Exact(&'c CancelToken),
    Degraded(&'c Cell<DegradedSource>),
    /// Dry run for the batch prestage: records each contended co-run
    /// set's profile indices (in combination-enumeration order) instead
    /// of solving. The power values returned under this mode are
    /// meaningless and must be discarded.
    Collect(&'c RefCell<Vec<Vec<usize>>>),
}

/// The combined model: performance model + power model + profiles.
///
/// Equilibrium solves are memoized: the same set of co-runners on the
/// same cache recurs constantly — across the Eq. 10 combinations of one
/// assignment, and across the candidate assignments of a Fig. 1 greedy
/// sweep (dies the tentative process does not land on are unchanged).
/// The cache key is the *canonically ordered* list of co-runner content
/// fingerprints (histogram + API + SPI coefficients + associativity), so
/// it stays valid even if callers re-index, re-order, or rebuild their
/// profile slices, and permuted co-runner sets share one entry.
///
/// The cache is bounded (sharded LRU, default
/// [`eqcache::DEFAULT_CAPACITY`](crate::eqcache::DEFAULT_CAPACITY)
/// entries) so long-running services never grow without limit; an
/// evicted co-runner set simply re-solves to a bit-identical
/// [`Equilibrium`] on its next appearance.
pub struct CombinedModel<'a, M: CorePowerModel> {
    machine: &'a MachineConfig,
    power: &'a M,
    perf: PerformanceModel,
    eq_cache: EquilibriumCache,
    warm_start: bool,
}

impl<'a, M: CorePowerModel> CombinedModel<'a, M> {
    /// Creates a combined model for `machine` using the fitted core power
    /// model `power`.
    pub fn new(machine: &'a MachineConfig, power: &'a M) -> Self {
        CombinedModel {
            machine,
            power,
            perf: PerformanceModel::new(machine.l2_assoc()),
            eq_cache: EquilibriumCache::new(crate::eqcache::DEFAULT_CAPACITY),
            warm_start: false,
        }
    }

    /// Enables warm-started Newton on equilibrium cache misses: when a
    /// same-cardinality neighbor co-run is cached, its split seeds a
    /// damped Newton solve instead of the cold solver, falling back to
    /// the configured cold solver if the warm solve does not converge
    /// (counted in [`EqCacheStats::warm_fallbacks`]).
    ///
    /// Off by default because it is a *different deterministic policy*,
    /// not a bit-identical speedup: a warm-started solve converges to the
    /// same fixed point as the cold Newton solve but along a different
    /// iterate path, so last-bit results can differ from the cold-solver
    /// baseline and depend on which co-runs were estimated previously.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Replaces the equilibrium memo cache with one bounded at
    /// `capacity` entries (rounded up to a multiple of the shard count;
    /// 0 disables memoization). Estimates are bit-identical for any
    /// capacity — the bound only affects time and memory.
    #[must_use]
    pub fn with_equilibrium_cache_capacity(mut self, capacity: usize) -> Self {
        self.eq_cache = EquilibriumCache::new(capacity);
        self
    }

    /// The machine this model estimates for (the placement optimizer
    /// needs the core/die topology to enumerate candidates).
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Number of distinct co-runner sets whose equilibrium is currently
    /// memoized (diagnostics / tests).
    pub fn cached_equilibria(&self) -> usize {
        self.eq_cache.entries()
    }

    /// A snapshot of the memo-cache counters (hits, misses, evictions,
    /// occupancy, capacity).
    pub fn equilibrium_cache_stats(&self) -> EqCacheStats {
        self.eq_cache.stats()
    }

    /// Fresh equilibrium solves that needed the fallback chain or came
    /// back degraded (service diagnostics).
    pub fn solver_fallbacks(&self) -> u64 {
        self.eq_cache.fallback_solves()
    }

    /// Drops all memoized equilibrium solves.
    pub fn clear_equilibrium_cache(&self) {
        self.eq_cache.clear();
    }

    /// Estimated average processor power of `assignment`, from profiling
    /// data only (Eq. 11 summed over dies).
    ///
    /// # Errors
    ///
    /// - [`ModelError::InvalidAssignment`] if the assignment shape or any
    ///   profile index is invalid.
    /// - Equilibrium errors from the performance model.
    pub fn estimate_processor_power(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
    ) -> Result<f64, ModelError> {
        self.estimate_processor_power_cancellable(profiles, assignment, &CancelToken::never())
    }

    /// [`CombinedModel::estimate_processor_power`] with a cooperative
    /// cancellation token threaded into every equilibrium solve, so a
    /// serving deadline can reclaim the worker mid-estimate. Bit-identical
    /// to the plain method under a never-firing token.
    ///
    /// # Errors
    ///
    /// Everything the plain method returns, plus
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
    /// the token fires.
    pub fn estimate_processor_power_cancellable(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        cancel: &CancelToken,
    ) -> Result<f64, ModelError> {
        self.estimate_power_mode(profiles, assignment, &SolveMode::Exact(cancel))
    }

    /// Degraded-tier estimate: answers **without running the equilibrium
    /// solvers**, for a serving layer whose circuit breaker has tripped.
    /// Each contended combination is answered from the best available
    /// no-solve source — a (possibly stale) exact memo-cache entry, else
    /// the nearest cached neighbor co-run's split re-rated against the
    /// requesting processes' own curves, else the proportional-to-API
    /// closed form — and the *worst* tier any combination needed is
    /// reported alongside the estimate. Degraded lookups never promote,
    /// insert, or count toward cache/fallback statistics.
    ///
    /// # Errors
    ///
    /// Validation errors as for
    /// [`CombinedModel::estimate_processor_power`]; the no-solve tiers
    /// themselves cannot fail on valid inputs.
    pub fn estimate_processor_power_degraded(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
    ) -> Result<DegradedEstimate, ModelError> {
        let worst = Cell::new(DegradedSource::ExactCache);
        let power_w =
            self.estimate_power_mode(profiles, assignment, &SolveMode::Degraded(&worst))?;
        Ok(DegradedEstimate { power_w, source: worst.get() })
    }

    fn estimate_power_mode(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        mode: &SolveMode<'_>,
    ) -> Result<f64, ModelError> {
        self.validate(profiles, assignment)?;
        if let SolveMode::Exact(cancel) = mode {
            let sets = self.collect_contended_sets(profiles, assignment)?;
            self.prestage_sets(profiles, sets, 0, cancel)?;
        }
        let mut total = 0.0;
        for die in 0..self.machine.dies {
            total += self.die_power_mode(profiles, assignment, DieId(die as u32), mode)?;
        }
        Ok(total)
    }

    /// Enumerates the contended co-run sets (profile indices) an exact
    /// estimate of `assignment` will need, in combination-enumeration
    /// order, without solving anything.
    fn collect_contended_sets(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
    ) -> Result<Vec<Vec<usize>>, ModelError> {
        let sink = RefCell::new(Vec::new());
        let mode = SolveMode::Collect(&sink);
        for die in 0..self.machine.dies {
            self.die_power_mode(profiles, assignment, DieId(die as u32), &mode)?;
        }
        Ok(sink.into_inner())
    }

    /// Batch-prestages the equilibrium cache: deduplicates `sets` on the
    /// canonical fingerprint key, drops the ones already cached (peeked,
    /// so no counters move), and solves the rest into the cache so the
    /// per-combination walk afterwards runs on cache hits.
    ///
    /// Only engages when at least two distinct sets are missing: a single
    /// missing set gains nothing from batching, and skipping it keeps the
    /// hit/miss counters of simple estimates identical to the sequential
    /// path. With warm-start enabled the missing sets are solved strictly
    /// sequentially through [`CombinedModel::solve_cached`] in
    /// first-encounter order — warm seeds depend on what was inserted
    /// just before, so batching them would change the (deterministic)
    /// seeding sequence.
    ///
    /// Per-set solve errors are *not* surfaced here: a failed set is left
    /// uncached and the main walk re-encounters the same deterministic
    /// error at its proper (lowest-index) position. Cancellation does
    /// surface immediately.
    fn prestage_sets(
        &self,
        profiles: &[ProcessProfile],
        sets: Vec<Vec<usize>>,
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<(), ModelError> {
        if self.eq_cache.capacity() == 0 || sets.len() < 2 {
            return Ok(());
        }
        let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut missing: Vec<Vec<usize>> = Vec::new();
        for idxs in sets {
            let running: Vec<(usize, &ProcessProfile)> =
                idxs.iter().map(|&p| (0, &profiles[p])).collect();
            let (_, key) = Self::canonical_key(&running);
            if !seen.insert(key.clone()) || self.eq_cache.peek(&key).is_some() {
                continue;
            }
            missing.push(idxs);
        }
        if missing.len() < 2 {
            return Ok(());
        }

        if self.warm_start {
            for idxs in &missing {
                let running: Vec<(usize, &ProcessProfile)> =
                    idxs.iter().map(|&p| (0, &profiles[p])).collect();
                // Non-cancellation errors re-surface in order on the main walk.
                if let Err(ModelError::Math(mathkit::MathError::Cancelled)) =
                    self.solve_cached(&running, cancel)
                {
                    return Err(ModelError::Math(mathkit::MathError::Cancelled));
                }
            }
            return Ok(());
        }

        let corun_sets: Vec<equilibrium::CorunSet<'_>> = missing
            .iter()
            .map(|idxs| equilibrium::CorunSet {
                features: idxs.iter().map(|&p| &profiles[p].feature).collect(),
            })
            .collect();
        let results = self.perf.solve_batch_results(&corun_sets, workers, cancel);
        for (idxs, res) in missing.iter().zip(results) {
            match res {
                Ok(eq) => {
                    let running: Vec<(usize, &ProcessProfile)> =
                        idxs.iter().map(|&p| (0, &profiles[p])).collect();
                    let (order, key) = Self::canonical_key(&running);
                    self.memoize(&order, key, &eq);
                }
                Err(ModelError::Math(mathkit::MathError::Cancelled)) => {
                    return Err(ModelError::Math(mathkit::MathError::Cancelled))
                }
                Err(_) => {} // leave uncached; the main walk reports it in order
            }
        }
        Ok(())
    }

    /// Estimated average power of one die's cores under `assignment`
    /// (exposed so callers can inspect the per-die split).
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_processor_power`].
    pub fn estimate_die_power(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        die: DieId,
    ) -> Result<f64, ModelError> {
        self.die_power_mode(profiles, assignment, die, &SolveMode::Exact(&CancelToken::never()))
    }

    /// Estimated makespan of `assignment`: the worst per-process relative
    /// completion time under Eq. 10 round-robin time sharing. Each process
    /// retiring a fixed instruction budget on a queue of length `q`
    /// finishes in time proportional to `q * mean_spi`, where `mean_spi`
    /// is its seconds-per-instruction averaged over the Eq. 10
    /// combinations it runs in (contended SPIs come from the equilibrium
    /// cache; a process running alone in a combination uses its predicted
    /// full-cache SPI). The makespan is the maximum over all assigned
    /// processes; an empty assignment has makespan `0.0`. Units are
    /// seconds per instruction of budget — meaningful relative to other
    /// placements of the same process set on the same machine.
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_processor_power`].
    pub fn estimate_makespan(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
    ) -> Result<f64, ModelError> {
        self.estimate_makespan_cancellable(profiles, assignment, &CancelToken::never())
    }

    /// [`CombinedModel::estimate_makespan`] with a cooperative
    /// cancellation token (see
    /// [`CombinedModel::estimate_processor_power_cancellable`]).
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_makespan`], plus
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)`.
    pub fn estimate_makespan_cancellable(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        cancel: &CancelToken,
    ) -> Result<f64, ModelError> {
        self.validate(profiles, assignment)?;
        let sets = self.collect_contended_sets(profiles, assignment)?;
        self.prestage_sets(profiles, sets, 0, cancel)?;
        let mut makespan: f64 = 0.0;
        for die in 0..self.machine.dies {
            let cores = self.machine.cores_of(DieId(die as u32));
            let queues: Vec<&[usize]> =
                cores.iter().map(|c| assignment.processes_on(c.0 as usize)).collect();
            let sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
            if sizes.iter().all(|&s| s == 0) {
                continue;
            }
            // Average each process's SPI over the combinations it runs in
            // (same odometer walk as the power estimate, same memoized
            // equilibria), then scale by its queue length.
            let mut spi_sum: Vec<Vec<f64>> = sizes.iter().map(|&s| vec![0.0; s]).collect();
            let mut spi_n: Vec<Vec<u64>> = sizes.iter().map(|&s| vec![0u64; s]).collect();
            let assoc = self.machine.l2_assoc() as f64;
            let mut first_err: Option<ModelError> = None;
            combination_average_cancellable(&sizes, cancel, |combo| {
                if first_err.is_some() {
                    return 0.0;
                }
                let mut running: Vec<(usize, &ProcessProfile)> = Vec::new();
                for (slot, (&q, &pick)) in queues.iter().zip(combo).enumerate() {
                    if pick == usize::MAX {
                        continue;
                    }
                    running.push((slot, &profiles[q[pick]]));
                }
                if running.len() == 1 {
                    // Alone on the die: no contention, predicted
                    // full-cache SPI (mirrors the alone-power shortcut
                    // of the power walk).
                    let (slot, prof) = running[0];
                    spi_sum[slot][combo[slot]] += prof.feature.spi_at(assoc);
                    spi_n[slot][combo[slot]] += 1;
                    return 0.0;
                }
                match self.solve_cached(&running, cancel) {
                    Ok(eq) => {
                        for (i, &(slot, _)) in running.iter().enumerate() {
                            spi_sum[slot][combo[slot]] += eq.spis[i];
                            spi_n[slot][combo[slot]] += 1;
                        }
                    }
                    Err(e) => first_err = Some(e),
                }
                0.0
            })?;
            if let Some(e) = first_err {
                return Err(e);
            }
            for (slot, sums) in spi_sum.iter().enumerate() {
                for (pos, &sum) in sums.iter().enumerate() {
                    let n = spi_n[slot][pos];
                    if n == 0 {
                        continue;
                    }
                    let completion = sizes[slot] as f64 * (sum / n as f64);
                    makespan = makespan.max(completion);
                }
            }
        }
        Ok(makespan)
    }

    /// Batch-prestages the equilibrium memo cache for a set of candidate
    /// assignments in one `solve_batch` pass (`workers = 0` means auto),
    /// so subsequent per-assignment estimates run mostly on cache hits.
    /// Invalid assignments are skipped — they report their own error when
    /// actually estimated. Estimates are bit-identical with or without
    /// prestaging, for any worker count.
    ///
    /// # Errors
    ///
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
    /// the token fires; per-set solve errors are deferred to the actual
    /// estimates.
    pub fn prestage_assignments(
        &self,
        profiles: &[ProcessProfile],
        assignments: &[Assignment],
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<(), ModelError> {
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for asg in assignments {
            if self.validate(profiles, asg).is_err() {
                continue;
            }
            sets.extend(self.collect_contended_sets(profiles, asg)?);
        }
        self.prestage_sets(profiles, sets, workers, cancel)
    }

    fn die_power_mode(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        die: DieId,
        mode: &SolveMode<'_>,
    ) -> Result<f64, ModelError> {
        let cores = self.machine.cores_of(die);
        let queues: Vec<&[usize]> =
            cores.iter().map(|c| assignment.processes_on(c.0 as usize)).collect();
        let sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
        let idle_w = self.power.idle_core_watts();

        if sizes.iter().all(|&s| s == 0) {
            return Ok(idle_w * cores.len() as f64);
        }

        // Eq. 10: average the die power over all process combinations.
        // Exact solves carry the caller's token into the walk; degraded
        // and collect passes are uncancellable by design (bounded, and
        // the prestage must record every set).
        let never = CancelToken::never();
        let cancel = match mode {
            SolveMode::Exact(c) => *c,
            _ => &never,
        };
        let mut first_err: Option<ModelError> = None;
        let avg = combination_average_cancellable(&sizes, cancel, |combo| {
            if first_err.is_some() {
                return 0.0;
            }
            match self.combination_power(profiles, &queues, combo, idle_w, mode) {
                Ok(p) => p,
                Err(e) => {
                    first_err = Some(e);
                    0.0
                }
            }
        })?;
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(avg)
    }

    /// Fig. 1's incremental query: estimated processor power after
    /// additionally assigning `profile_idx` to `core`.
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_processor_power`].
    pub fn estimate_after_assigning(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        core: usize,
    ) -> Result<f64, ModelError> {
        self.estimate_after_assigning_cancellable(
            profiles,
            current,
            profile_idx,
            core,
            &CancelToken::never(),
        )
    }

    /// [`CombinedModel::estimate_after_assigning`] with a cooperative
    /// cancellation token (see
    /// [`CombinedModel::estimate_processor_power_cancellable`]).
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_after_assigning`], plus
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)`.
    pub fn estimate_after_assigning_cancellable(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        core: usize,
        cancel: &CancelToken,
    ) -> Result<f64, ModelError> {
        self.estimate_processor_power_cancellable(
            profiles,
            &current.try_with_assigned(core, profile_idx)?,
            cancel,
        )
    }

    /// Evaluates [`CombinedModel::estimate_after_assigning`] for every
    /// candidate core in parallel (`workers = 0` means auto), returning
    /// one estimate per entry of `cores` in order. The workers share the
    /// equilibrium memo cache, so co-runner sets common to several
    /// candidates (every die the tentative process does not touch) are
    /// solved once. Estimation is deterministic, so the result is
    /// identical to a sequential loop for any worker count.
    ///
    /// # Errors
    ///
    /// The error of the first (lowest-index) failing candidate, exactly
    /// as a sequential loop would report.
    pub fn estimate_candidates(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        cores: &[usize],
        workers: usize,
    ) -> Result<Vec<f64>, ModelError>
    where
        M: Sync,
    {
        self.estimate_candidates_cancellable(
            profiles,
            current,
            profile_idx,
            cores,
            workers,
            &CancelToken::never(),
        )
    }

    /// [`CombinedModel::estimate_candidates`] with one cooperative
    /// cancellation token shared by all workers: when it fires, every
    /// in-flight candidate stops at its next solver iteration and the
    /// sweep reports [`mathkit::MathError::Cancelled`].
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_candidates`], plus
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)`.
    pub fn estimate_candidates_cancellable(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        cores: &[usize],
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<f64>, ModelError>
    where
        M: Sync,
    {
        // Prestage the union of every candidate's contended co-run sets so
        // the per-candidate estimates below mostly hit the shared memo
        // cache. Invalid candidates are skipped here — they report their
        // own error at the proper position in the sweep.
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for &core in cores {
            if core >= current.num_cores() {
                continue;
            }
            let tentative = current.with_assigned(core, profile_idx);
            if self.validate(profiles, &tentative).is_err() {
                continue;
            }
            sets.extend(self.collect_contended_sets(profiles, &tentative)?);
        }
        self.prestage_sets(profiles, sets, workers, cancel)?;

        mathkit::parallel::try_par_map(cores.to_vec(), workers, |_, core| {
            self.estimate_after_assigning_cancellable(profiles, current, profile_idx, core, cancel)
        })
    }

    /// Power of the die for one concrete process combination: the chosen
    /// processes run simultaneously and share the die's cache.
    fn combination_power(
        &self,
        profiles: &[ProcessProfile],
        queues: &[&[usize]],
        combo: &[usize],
        idle_w: f64,
        mode: &SolveMode<'_>,
    ) -> Result<f64, ModelError> {
        // Gather the simultaneously running processes.
        let mut running: Vec<(usize, &ProcessProfile)> = Vec::new(); // (core slot, profile)
        for (slot, (&q, &pick)) in queues.iter().zip(combo).enumerate() {
            if pick == usize::MAX {
                continue;
            }
            running.push((slot, &profiles[q[pick]]));
        }
        let idle_cores = queues.len() - running.len();

        if running.len() == 1 {
            // Fig. 1 scenario (1)/(2): no cache contention — use the
            // measured alone power from the profiling vector.
            return Ok(running[0].1.core_power_alone(idle_w) + idle_cores as f64 * idle_w);
        }

        // Contended: performance model predicts SPI and MPA per process.
        let eq = match mode {
            SolveMode::Exact(cancel) => self.solve_cached(&running, cancel)?,
            SolveMode::Degraded(worst) => self.solve_degraded(&running, worst)?,
            SolveMode::Collect(sink) => {
                let idxs: Vec<usize> = queues
                    .iter()
                    .zip(combo)
                    .filter(|&(_, &pick)| pick != usize::MAX)
                    .map(|(&q, &pick)| q[pick])
                    .collect();
                sink.borrow_mut().push(idxs);
                return Ok(0.0);
            }
        };
        let mut power = idle_cores as f64 * idle_w;
        for (i, (_slot, prof)) in running.iter().enumerate() {
            let spi = eq.spis[i];
            let mpa = eq.mpas[i];
            let rates = EventRates {
                ips: 1.0 / spi,
                l1rps: prof.l1rpi / spi,
                l2rps: prof.l2rpi / spi,
                l2mps: prof.l2rpi * mpa / spi,
                brps: prof.brpi / spi,
                fpps: prof.fppi / spi,
            };
            power += self.power.predict_core(&rates);
        }
        Ok(power)
    }

    /// Memoized equilibrium solve for a co-runner set. The memo key is the
    /// *canonically ordered* list of content fingerprints, so permuted
    /// co-runner sets (`[a, b]` vs `[b, a]`) share one entry; the cached
    /// per-process results are stored in canonical order and permuted back
    /// to the caller's order on a hit. Because the solvers themselves work
    /// in the same canonical order internally, a cache hit is bit-equal to
    /// a fresh solve. Failed solves are not cached so transient-looking
    /// errors keep surfacing.
    fn solve_cached(
        &self,
        running: &[(usize, &ProcessProfile)],
        cancel: &CancelToken,
    ) -> Result<Equilibrium, ModelError> {
        let (order, key) = Self::canonical_key(running);
        if let Some(canon) = self.eq_cache.get(&key) {
            return Ok(Self::permute_back(&canon, &order));
        }
        let features: Vec<&FeatureVector> = running.iter().map(|(_, p)| &p.feature).collect();
        if let Some(warm) = self.solve_warm(&features, &order, &key, cancel) {
            let eq = warm?;
            self.memoize(&order, key, &eq);
            return Ok(eq);
        }
        let eq = self.perf.solve_cancellable(&features, cancel)?;
        if eq.diagnostics.degraded || !eq.diagnostics.fallbacks.is_empty() {
            self.eq_cache.note_fallback();
        }
        self.memoize(&order, key, &eq);
        Ok(eq)
    }

    /// Stores `eq` (given in caller order) in the memo cache in canonical
    /// order under `key`.
    fn memoize(&self, order: &[usize], key: Vec<u64>, eq: &Equilibrium) {
        let mut canon = eq.clone();
        for (ci, &i) in order.iter().enumerate() {
            canon.sizes[ci] = eq.sizes[i];
            canon.mpas[ci] = eq.mpas[i];
            canon.spis[ci] = eq.spis[i];
            canon.apss[ci] = eq.apss[i];
        }
        self.eq_cache.insert(key, canon);
    }

    /// Warm-started Newton on a cache miss: seeds the solve from the
    /// nearest cached neighbor's split (see
    /// [`CombinedModel::with_warm_start`]). Returns `None` when warm-start
    /// is disabled, no neighbor exists, or the warm solve did not converge
    /// (cold fallback — counted as a warm fallback but *not* as a solver
    /// fallback, since the cold path is expected to succeed normally).
    fn solve_warm(
        &self,
        features: &[&FeatureVector],
        order: &[usize],
        key: &[u64],
        cancel: &CancelToken,
    ) -> Option<Result<Equilibrium, ModelError>> {
        if !self.warm_start {
            return None;
        }
        let (nkey, near) = self.eq_cache.neighbor(key)?;
        self.eq_cache.note_warm_attempt();

        // Two-pointer multiset match of the sorted canonical keys: matched
        // positions inherit the neighbor's canonical split, the (at most
        // one) unmatched position gets the leftover capacity.
        let a = self.machine.l2_assoc() as f64;
        let mut seed_canon = vec![f64::NAN; key.len()];
        let mut matched_sum = 0.0;
        let (mut i, mut j) = (0, 0);
        // lint:allow(cancellation_propagation) -- bounded two-pointer sweep: i or j advances every iteration
        while i < key.len() && j < nkey.len() {
            match key[i].cmp(&nkey[j]) {
                std::cmp::Ordering::Equal => {
                    seed_canon[i] = near.sizes[j];
                    matched_sum += near.sizes[j];
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        let leftover = (a - matched_sum).clamp(0.05, a);
        for s in &mut seed_canon {
            if s.is_nan() {
                *s = leftover;
            }
        }

        // Scatter the canonical seed back to caller order; the warm solver
        // re-canonicalizes internally.
        let mut seed = vec![0.0; key.len()];
        for (ci, &idx) in order.iter().enumerate() {
            seed[idx] = seed_canon[ci];
        }

        match equilibrium::solve_newton_warm_cancellable(
            features,
            self.machine.l2_assoc(),
            &seed,
            near.window,
            cancel,
        ) {
            Ok(eq) => {
                self.eq_cache.note_warm_hit();
                Some(Ok(eq))
            }
            Err(ModelError::Math(mathkit::MathError::Cancelled)) => {
                Some(Err(ModelError::Math(mathkit::MathError::Cancelled)))
            }
            Err(_) => {
                self.eq_cache.note_warm_fallback();
                None
            }
        }
    }

    /// No-solve equilibrium for the degraded tier: exact (possibly stale)
    /// cache entry, else the nearest cached neighbor's split re-rated on
    /// the caller's own feature curves, else the proportional closed
    /// form. Never iterates, never touches the fallback counter, and
    /// never promotes or inserts cache entries — degraded traffic must
    /// not distort the healthy path's statistics or recency order.
    fn solve_degraded(
        &self,
        running: &[(usize, &ProcessProfile)],
        worst: &Cell<DegradedSource>,
    ) -> Result<Equilibrium, ModelError> {
        let (order, key) = Self::canonical_key(running);
        if let Some(canon) = self.eq_cache.peek(&key) {
            return Ok(Self::permute_back(&canon, &order));
        }
        let features: Vec<&FeatureVector> = running.iter().map(|(_, p)| &p.feature).collect();
        if let Some((_, near)) = self.eq_cache.neighbor(&key) {
            Self::note_worst(worst, DegradedSource::StaleNeighbor);
            // Borrow the neighbor's cache split positionally (both sides
            // are in canonical order) and re-rate MPA/SPI/APS against the
            // requesting processes' own curves.
            let canon_features: Vec<&FeatureVector> = order.iter().map(|&i| features[i]).collect();
            let diag = SolveDiagnostics {
                method: near.diagnostics.method,
                iterations: 0,
                residual: 0.0,
                fallbacks: Vec::new(),
                degraded: true,
            };
            let canon = Equilibrium::from_sizes(
                &canon_features,
                near.sizes.clone(),
                near.window,
                near.cache_filled,
                diag,
            );
            return Ok(Self::permute_back(&canon, &order));
        }
        Self::note_worst(worst, DegradedSource::ProportionalSplit);
        equilibrium::solve_proportional(&features, self.machine.l2_assoc())
    }

    /// Canonical solve order and memo key for a co-runner set: indices
    /// sorted by (content fingerprint, index), and the fingerprints in
    /// that order.
    fn canonical_key(running: &[(usize, &ProcessProfile)]) -> (Vec<usize>, Vec<u64>) {
        let fps: Vec<u64> = running.iter().map(|(_, p)| p.feature.content_fingerprint()).collect();
        let mut order: Vec<usize> = (0..running.len()).collect();
        order.sort_by_key(|&i| (fps[i], i));
        let key: Vec<u64> = order.iter().map(|&i| fps[i]).collect();
        (order, key)
    }

    /// Scatters a canonical-order equilibrium back to the caller's
    /// process order.
    fn permute_back(canon: &Equilibrium, order: &[usize]) -> Equilibrium {
        let mut eq = canon.clone();
        for (ci, &i) in order.iter().enumerate() {
            eq.sizes[i] = canon.sizes[ci];
            eq.mpas[i] = canon.mpas[ci];
            eq.spis[i] = canon.spis[ci];
            eq.apss[i] = canon.apss[ci];
        }
        eq
    }

    /// Records `tier` if it is worse than anything seen so far.
    fn note_worst(worst: &Cell<DegradedSource>, tier: DegradedSource) {
        if tier > worst.get() {
            worst.set(tier);
        }
    }

    fn validate(&self, profiles: &[ProcessProfile], asg: &Assignment) -> Result<(), ModelError> {
        if asg.num_cores() != self.machine.num_cores() {
            return Err(ModelError::InvalidAssignment(format!(
                "assignment covers {} cores, machine has {}",
                asg.num_cores(),
                self.machine.num_cores()
            )));
        }
        for c in 0..asg.num_cores() {
            for &p in asg.processes_on(c) {
                if p >= profiles.len() {
                    return Err(ModelError::InvalidAssignment(format!(
                        "profile index {p} out of range for {} profiles",
                        profiles.len()
                    )));
                }
                if profiles[p].feature.assoc() != self.machine.l2_assoc() {
                    return Err(ModelError::InvalidAssignment(format!(
                        "profile '{}' was built for {} ways, machine cache has {}",
                        profiles[p].feature.name(),
                        profiles[p].feature.assoc(),
                        self.machine.l2_assoc()
                    )));
                }
            }
        }
        let _ = CoreId(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::ReuseHistogram;
    use crate::power::{PowerModel, PowerObservation};
    use crate::spi::SpiModel;
    use rand::Rng;
    use rand::SeedableRng;

    /// A hand-built profile so tests do not need simulation runs.
    fn synthetic_profile(
        name: &str,
        tail: f64,
        api: f64,
        machine: &MachineConfig,
    ) -> ProcessProfile {
        let head = 1.0 - tail;
        let hist =
            ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail)
                .unwrap();
        let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
        let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
        let feature = FeatureVector::new(
            name,
            hist,
            api,
            SpiModel::new(alpha, beta).unwrap(),
            machine.l2_assoc(),
        )
        .unwrap();
        ProcessProfile {
            feature,
            l1rpi: 0.35,
            l2rpi: api,
            brpi: 0.2,
            fppi: 0.1,
            processor_alone_w: 60.0,
            idle_processor_w: 44.0,
        }
    }

    /// A power model fitted on synthetic observations derived from the
    /// machine's ground truth.
    fn synthetic_power_model(machine: &MachineConfig) -> PowerModel {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = machine.num_cores() as f64;
        let mut obs = Vec::new();
        for _ in 0..200 {
            let ips = rng.gen_range(1e6..2.4e7);
            let rates = cmpsim::hpc::EventRates {
                ips,
                l1rps: ips * rng.gen_range(0.2..0.5),
                l2rps: ips * rng.gen_range(0.001..0.05),
                l2mps: ips * rng.gen_range(0.0..0.02),
                brps: ips * rng.gen_range(0.05..0.3),
                fpps: ips * rng.gen_range(0.0..0.3),
            };
            let watts = machine.power.core_power(&rates) + machine.power.uncore_w / n;
            obs.push(PowerObservation { rates, core_watts: watts });
        }
        PowerModel::fit_mvlr(&obs).unwrap()
    }

    fn server() -> MachineConfig {
        MachineConfig::four_core_server()
    }

    #[test]
    fn assignment_builder() {
        let mut a = Assignment::new(2);
        a.assign(1, 0);
        assert_eq!(a.num_processes(), 1);
        assert_eq!(a.processes_on(0), &[] as &[usize]);
        let b = a.with_assigned(0, 1);
        assert_eq!(b.num_processes(), 2);
        assert_eq!(a.num_processes(), 1, "with_assigned must not mutate");
    }

    #[test]
    fn empty_assignment_is_all_idle() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let est = cm.estimate_processor_power(&[], &Assignment::new(4)).unwrap();
        let idle = 4.0 * pm.idle_core_watts();
        assert!((est - idle).abs() < 1e-9);
    }

    #[test]
    fn single_process_uses_alone_power() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let p = synthetic_profile("solo", 0.3, 0.02, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0);
        let est = cm.estimate_processor_power(std::slice::from_ref(&p), &asg).unwrap();
        // core 0: alone power; cores 1-3 idle.
        let expect = p.core_power_alone(pm.idle_core_watts()) + 3.0 * pm.idle_core_watts();
        assert!((est - expect).abs() < 1e-9, "{est} vs {expect}");
    }

    #[test]
    fn contended_pair_uses_model_power() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1); // same die -> contention
        let est = cm.estimate_processor_power(&[a, b], &asg).unwrap();
        // Sanity range: above idle, below silly.
        let idle = 4.0 * pm.idle_core_watts();
        assert!(est > idle + 4.0, "{est} vs idle {idle}");
        assert!(est < idle + 60.0, "{est}");
    }

    #[test]
    fn separate_dies_do_not_contend() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.4, 0.03, &m);
        let mut same_die = Assignment::new(4);
        same_die.assign(0, 0).assign(1, 1);
        let mut diff_die = Assignment::new(4);
        diff_die.assign(0, 0).assign(2, 1);
        let ps = vec![a, b];
        let p_same = cm.estimate_processor_power(&ps, &same_die).unwrap();
        let p_diff = cm.estimate_processor_power(&ps, &diff_die).unwrap();
        // Across dies each runs alone (profiled alone power); same-die
        // estimates must differ because contention changes the rates.
        assert!((p_same - p_diff).abs() > 0.05, "same {p_same} vs diff {p_diff}");
    }

    #[test]
    fn time_sharing_averages_combinations() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.3, 0.02, &m);
        // Both on core 0, partner idle: average of two alone powers.
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(0, 1);
        let est = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        let expect = (a.core_power_alone(pm.idle_core_watts())
            + b.core_power_alone(pm.idle_core_watts()))
            / 2.0
            + 3.0 * pm.idle_core_watts();
        assert!((est - expect).abs() < 1e-9, "{est} vs {expect}");
    }

    #[test]
    fn incremental_matches_full() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let ps = vec![a, b];
        let mut current = Assignment::new(4);
        current.assign(0, 0);
        let inc = cm.estimate_after_assigning(&ps, &current, 1, 1).unwrap();
        let full = cm.estimate_processor_power(&ps, &current.with_assigned(1, 1)).unwrap();
        assert_eq!(inc, full);
    }

    #[test]
    fn validation_errors() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        // Wrong core count.
        assert!(cm.estimate_processor_power(&[], &Assignment::new(2)).is_err());
        // Bad profile index.
        let mut asg = Assignment::new(4);
        asg.assign(0, 5);
        assert!(cm.estimate_processor_power(&[], &asg).is_err());
        // Out-of-range core in incremental query.
        assert!(cm.estimate_after_assigning(&[], &Assignment::new(4), 0, 9).is_err());
    }

    #[test]
    fn memoized_estimates_are_identical_and_cached() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let cold = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1, "one contended pair solved");
        let warm = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cold.to_bits(), warm.to_bits(), "cache must not change results");
        cm.clear_equilibrium_cache();
        assert_eq!(cm.cached_equilibria(), 0);
        let refilled = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cold.to_bits(), refilled.to_bits());
    }

    #[test]
    fn cache_distinguishes_profile_content_not_index() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let ab = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        // Same indices, swapped contents: must NOT hit the stale entry.
        let ba = cm.estimate_processor_power(&[b.clone(), a.clone()], &asg).unwrap();
        let fresh = CombinedModel::new(&m, &pm);
        let ba_ref = fresh.estimate_processor_power(&[b, a], &asg).unwrap();
        assert_eq!(ba.to_bits(), ba_ref.to_bits(), "stale cache hit");
        // Symmetric pair, so powers agree loosely but the solves differ.
        assert!((ab - ba).abs() < 1.0);
    }

    #[test]
    fn estimate_candidates_matches_sequential_for_all_worker_counts() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let c = synthetic_profile("c", 0.5, 0.04, &m);
        let ps = vec![a, b, c];
        let mut current = Assignment::new(4);
        current.assign(0, 0).assign(2, 1);
        let cores = [0usize, 1, 2, 3];
        let seq: Vec<f64> = {
            let cm = CombinedModel::new(&m, &pm);
            cores
                .iter()
                .map(|&core| cm.estimate_after_assigning(&ps, &current, 2, core).unwrap())
                .collect()
        };
        for workers in [1usize, 2, 8] {
            let cm = CombinedModel::new(&m, &pm);
            let par = cm.estimate_candidates(&ps, &current, 2, &cores, workers).unwrap();
            let seq_bits: Vec<u64> = seq.iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "workers = {workers}");
            assert!(cm.cached_equilibria() >= 1);
        }
    }

    #[test]
    fn permuted_corunners_share_one_cache_entry_bit_equal() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let ab = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1);
        // Swapped profile order: same co-runner *set*, so the canonical
        // memo key must hit the existing entry...
        let ba = cm.estimate_processor_power(&[b.clone(), a.clone()], &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1, "permutation must not add an entry");
        // ...and the permuted cached result must be bit-equal to a fresh
        // solve in the swapped order.
        let fresh = CombinedModel::new(&m, &pm);
        let ba_ref = fresh.estimate_processor_power(&[b, a], &asg).unwrap();
        assert_eq!(ba.to_bits(), ba_ref.to_bits());
        // Same physical co-run, so the totals agree (summation order over
        // cores differs, so only up to rounding).
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn estimate_candidates_order_independent_through_memo_cache() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let c = synthetic_profile("c", 0.5, 0.04, &m);
        let cores = [0usize, 1, 2, 3];
        // Reference: profiles in order [a, b, c], tentative process = c.
        let ps_ref = vec![a.clone(), b.clone(), c.clone()];
        let mut cur_ref = Assignment::new(4);
        cur_ref.assign(0, 0).assign(1, 1);
        let cm_ref = CombinedModel::new(&m, &pm);
        let est_ref = cm_ref.estimate_candidates(&ps_ref, &cur_ref, 2, &cores, 2).unwrap();
        // Permuted: profiles in order [c, b, a]; the same physical
        // placement (a on core 0, b on core 1, c tentative).
        let ps_perm = vec![c, b, a];
        let mut cur_perm = Assignment::new(4);
        cur_perm.assign(0, 2).assign(1, 1);
        let cm_perm = CombinedModel::new(&m, &pm);
        // Warm the permuted model's cache with the reference order first,
        // so the permuted estimates flow through permuted cache hits.
        let full_ref = cm_ref.estimate_processor_power(&ps_ref, &cur_ref.with_assigned(1, 2));
        let warm = cm_perm.estimate_processor_power(&ps_perm, &cur_perm.with_assigned(1, 0));
        assert_eq!(full_ref.unwrap().to_bits(), warm.unwrap().to_bits());
        let est_perm = cm_perm.estimate_candidates(&ps_perm, &cur_perm, 0, &cores, 2).unwrap();
        let ref_bits: Vec<u64> = est_ref.iter().map(|x| x.to_bits()).collect();
        let perm_bits: Vec<u64> = est_perm.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ref_bits, perm_bits, "physical placement is identical");
    }

    #[test]
    fn cache_stays_bounded_and_evicted_entries_resolve_bit_identical() {
        let m = server();
        let pm = synthetic_power_model(&m);
        // A deliberately tiny bound so a modest sweep overflows it.
        let cm = CombinedModel::new(&m, &pm).with_equilibrium_cache_capacity(8);
        let cap = cm.equilibrium_cache_stats().capacity;
        assert!((8..=16).contains(&cap), "rounded-up capacity, got {cap}");

        // Sweep far more distinct contended pairs than the bound holds.
        let partner = synthetic_profile("partner", 0.2, 0.015, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let mut cold = Vec::new();
        for i in 0..3 * cap {
            let p = synthetic_profile("p", 0.1 + 0.7 * (i as f64) / (3 * cap) as f64, 0.02, &m);
            let ps = vec![p, partner.clone()];
            cold.push(cm.estimate_processor_power(&ps, &asg).unwrap());
            let st = cm.equilibrium_cache_stats();
            assert!(st.entries <= st.capacity, "iteration {i}: {st:?}");
        }
        let st = cm.equilibrium_cache_stats();
        assert!(st.evictions > 0, "sweep must overflow the bound: {st:?}");
        assert_eq!(st.misses as usize, 3 * cap, "each distinct pair solves once");

        // Replaying the sweep forces re-solves of evicted pairs; every
        // estimate must be bit-identical to its cold pass.
        for (i, &cold_est) in cold.iter().enumerate() {
            let p = synthetic_profile("p", 0.1 + 0.7 * (i as f64) / (3 * cap) as f64, 0.02, &m);
            let ps = vec![p, partner.clone()];
            let warm = cm.estimate_processor_power(&ps, &asg).unwrap();
            assert_eq!(cold_est.to_bits(), warm.to_bits(), "iteration {i}");
        }
    }

    #[test]
    fn zero_capacity_cache_still_estimates_identically() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let cached = CombinedModel::new(&m, &pm);
        let uncached = CombinedModel::new(&m, &pm).with_equilibrium_cache_capacity(0);
        let x = cached.estimate_processor_power(&ps, &asg).unwrap();
        let y = uncached.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(uncached.cached_equilibria(), 0);
        assert_eq!(uncached.equilibrium_cache_stats().capacity, 0);
    }

    #[test]
    fn cancellable_with_never_token_is_bit_exact() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let plain = cm.estimate_processor_power(&ps, &asg).unwrap();
        cm.clear_equilibrium_cache();
        let never =
            cm.estimate_processor_power_cancellable(&ps, &asg, &CancelToken::never()).unwrap();
        assert_eq!(plain.to_bits(), never.to_bits());
        let cands = cm.estimate_candidates(&ps, &Assignment::new(4), 0, &[0, 1], 2).unwrap();
        let cands_c = cm
            .estimate_candidates_cancellable(
                &ps,
                &Assignment::new(4),
                0,
                &[0, 1],
                2,
                &CancelToken::never(),
            )
            .unwrap();
        let xb: Vec<u64> = cands.iter().map(|x| x.to_bits()).collect();
        let yb: Vec<u64> = cands_c.iter().map(|x| x.to_bits()).collect();
        assert_eq!(xb, yb);
    }

    #[test]
    fn fired_token_propagates_typed_cancellation() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let fired = CancelToken::from_fn(|| true);
        let err = cm.estimate_processor_power_cancellable(&ps, &asg, &fired).unwrap_err();
        assert!(
            matches!(err, ModelError::Math(mathkit::MathError::Cancelled)),
            "want typed cancellation, got {err:?}"
        );
        // Candidate sweep: core 1 shares core 0's die, so the candidate
        // co-run is contended and must hit the cancellation point.
        let mut cur = Assignment::new(4);
        cur.assign(0, 0);
        let err = cm.estimate_candidates_cancellable(&ps, &cur, 1, &[1], 2, &fired).unwrap_err();
        assert!(matches!(err, ModelError::Math(mathkit::MathError::Cancelled)));
        // The combination walk itself is a cancellation point, so a
        // fired token stops the estimate even when every equilibrium is
        // already cached and no solver would run.
        let _ = cm.estimate_processor_power(&ps, &asg).unwrap();
        let err = cm.estimate_processor_power_cancellable(&ps, &asg, &fired).unwrap_err();
        assert!(matches!(err, ModelError::Math(mathkit::MathError::Cancelled)));
    }

    #[test]
    fn fired_token_cancels_solver_free_paths() {
        // One process alone on its die: the makespan walk takes the
        // alone-on-die shortcut and never enters an equilibrium solve,
        // so only the combination walk's own poll can observe the token.
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let ps = vec![synthetic_profile("a", 0.4, 0.03, &m)];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0);
        let fired = CancelToken::from_fn(|| true);
        let err = cm.estimate_makespan_cancellable(&ps, &asg, &fired).unwrap_err();
        assert!(
            matches!(err, ModelError::Math(mathkit::MathError::Cancelled)),
            "solver-free makespan path must still cancel, got {err:?}"
        );
        let err = cm.estimate_processor_power_cancellable(&ps, &asg, &fired).unwrap_err();
        assert!(matches!(err, ModelError::Math(mathkit::MathError::Cancelled)));
    }

    #[test]
    fn degraded_exact_cache_tier_is_bit_exact_with_healthy_estimate() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let healthy = cm.estimate_processor_power(&ps, &asg).unwrap();
        let stats_before = cm.equilibrium_cache_stats();
        let deg = cm.estimate_processor_power_degraded(&ps, &asg).unwrap();
        assert_eq!(deg.source, DegradedSource::ExactCache);
        assert_eq!(deg.power_w.to_bits(), healthy.to_bits());
        let stats_after = cm.equilibrium_cache_stats();
        assert_eq!(stats_before, stats_after, "degraded reads must not touch counters");
        assert_eq!(cm.solver_fallbacks(), 0, "degraded answers are not solver fallbacks");
    }

    #[test]
    fn degraded_neighbor_tier_reuses_nearest_cached_split() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let c = synthetic_profile("c", 0.45, 0.032, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        // Warm the cache with the (a, b) pair, then ask degraded for
        // (c, b): same cardinality, shares b's fingerprint -> neighbor.
        cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        let deg = cm.estimate_processor_power_degraded(&[c.clone(), b.clone()], &asg).unwrap();
        assert_eq!(deg.source, DegradedSource::StaleNeighbor);
        assert!(deg.power_w.is_finite() && deg.power_w > 0.0);
        // The neighbor answer re-rates on c's own curves, so it should be
        // in the neighborhood of the true (c, b) estimate.
        let truth = cm.estimate_processor_power(&[c, b], &asg).unwrap();
        assert!(
            (deg.power_w - truth).abs() < 0.2 * truth,
            "neighbor estimate {} too far from truth {truth}",
            deg.power_w
        );
    }

    #[test]
    fn degraded_cold_cache_falls_back_to_proportional_split() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let deg = cm.estimate_processor_power_degraded(&ps, &asg).unwrap();
        assert_eq!(deg.source, DegradedSource::ProportionalSplit);
        assert!(deg.power_w.is_finite() && deg.power_w > 0.0);
        assert_eq!(cm.cached_equilibria(), 0, "degraded solves must not populate the cache");
        // Uncontended shapes never need an equilibrium, so even the
        // proportional tier reports the exact-cache (best) source.
        let mut solo = Assignment::new(4);
        solo.assign(0, 0);
        let deg_solo = cm.estimate_processor_power_degraded(&ps, &solo).unwrap();
        assert_eq!(deg_solo.source, DegradedSource::ExactCache);
        let healthy_solo = cm.estimate_processor_power(&ps, &solo).unwrap();
        assert_eq!(deg_solo.power_w.to_bits(), healthy_solo.to_bits());
    }

    #[test]
    fn degraded_source_order_and_names() {
        assert!(DegradedSource::ExactCache < DegradedSource::StaleNeighbor);
        assert!(DegradedSource::StaleNeighbor < DegradedSource::ProportionalSplit);
        assert_eq!(DegradedSource::ExactCache.name(), "exact_cache");
        assert_eq!(DegradedSource::StaleNeighbor.name(), "stale_neighbor");
        assert_eq!(DegradedSource::ProportionalSplit.name(), "proportional_split");
    }

    #[test]
    fn warm_start_converges_to_cold_fixed_point_and_counts() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cold = CombinedModel::new(&m, &pm);
        let warm = CombinedModel::new(&m, &pm).with_warm_start(true);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let c = synthetic_profile("c", 0.45, 0.032, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        // First estimate on each model is a cold solve (empty cache, no
        // neighbor) and therefore bit-identical.
        let x0 = cold.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        let y0 = warm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        assert_eq!(x0.to_bits(), y0.to_bits(), "no neighbor -> identical cold path");
        assert_eq!(warm.equilibrium_cache_stats().warm_attempts, 0);
        // Second pair has a cached same-cardinality neighbor sharing b:
        // the warm model seeds Newton from it and must land on the same
        // fixed point the cold model finds (same equations, tight tol).
        let x1 = cold.estimate_processor_power(&[c.clone(), b.clone()], &asg).unwrap();
        let y1 = warm.estimate_processor_power(&[c, b], &asg).unwrap();
        assert!((x1 - y1).abs() <= 1e-6 * x1.abs(), "cold {x1} vs warm {y1}");
        let st = warm.equilibrium_cache_stats();
        assert_eq!(st.warm_attempts, 1, "{st:?}");
        assert_eq!(st.warm_hits + st.warm_fallbacks, st.warm_attempts, "{st:?}");
        assert_eq!(warm.solver_fallbacks(), 0, "warm fallback is not a solver-health event");
        assert_eq!(cold.equilibrium_cache_stats().warm_attempts, 0);
    }

    #[test]
    fn warm_start_is_deterministic_across_runs() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let c = synthetic_profile("c", 0.45, 0.032, &m);
        let ps = vec![a, b, c];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let run = || {
            let cm = CombinedModel::new(&m, &pm).with_warm_start(true);
            let mut out = Vec::new();
            out.push(cm.estimate_processor_power(&ps, &asg).unwrap());
            out.push(cm.estimate_after_assigning(&ps, &asg, 2, 2).unwrap());
            out.extend(cm.estimate_candidates(&ps, &asg, 2, &[0, 1, 2, 3], 2).unwrap());
            let st = cm.equilibrium_cache_stats();
            (out.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(), st.warm_attempts, st.warm_hits)
        };
        let (bits1, att1, hit1) = run();
        let (bits2, att2, hit2) = run();
        assert_eq!(bits1, bits2, "warm-start policy must be deterministic");
        assert_eq!(att1, att2);
        assert_eq!(hit1, hit2);
    }

    #[test]
    fn candidate_prestage_leaves_results_bit_identical() {
        // The candidate sweep prestages the union of all candidates'
        // co-run sets through the batch solver; estimates must stay
        // bit-identical to a model that never prestages (capacity 0
        // disables the cache and with it the prestage).
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let c = synthetic_profile("c", 0.5, 0.04, &m);
        let ps = vec![a, b, c];
        let mut current = Assignment::new(4);
        current.assign(0, 0).assign(2, 1);
        let cores = [0usize, 1, 2, 3];
        let plain = CombinedModel::new(&m, &pm).with_equilibrium_cache_capacity(0);
        let staged = CombinedModel::new(&m, &pm);
        let x = plain.estimate_candidates(&ps, &current, 2, &cores, 2).unwrap();
        let y = staged.estimate_candidates(&ps, &current, 2, &cores, 2).unwrap();
        let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
        assert!(staged.cached_equilibria() >= 2, "prestage should have populated the cache");
    }

    #[test]
    fn assignment_on_lower_power_machine_costs_less() {
        let big = server();
        let small = MachineConfig::duo_laptop();
        let pm_big = synthetic_power_model(&big);
        let pm_small = synthetic_power_model(&small);
        let p_big = synthetic_profile("x", 0.3, 0.02, &big);
        let p_small = synthetic_profile("x", 0.3, 0.02, &small);
        let mut asg_big = Assignment::new(4);
        asg_big.assign(0, 0);
        let mut asg_small = Assignment::new(2);
        asg_small.assign(0, 0);
        let e_big =
            CombinedModel::new(&big, &pm_big).estimate_processor_power(&[p_big], &asg_big).unwrap();
        let e_small = CombinedModel::new(&small, &pm_small)
            .estimate_processor_power(&[p_small], &asg_small)
            .unwrap();
        assert!(e_big > e_small);
    }
}
