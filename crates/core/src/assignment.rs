//! The combined performance + power model for assignment-time power
//! estimation (paper §5, Fig. 1, Eq. 11).
//!
//! The power model alone cannot evaluate a *tentative* assignment: its
//! inputs are HPC rates that exist only after the processes run. The
//! combined model closes the loop with profiling data. Instruction-related
//! event rates (L1RPI, L2RPI, BRPI, FPPI) are process properties fixed by
//! the input data; contention only changes SPI and the miss ratio L2MPR —
//! both of which the performance model predicts. Each per-second rate is
//! then `rate = per-instruction rate / SPI`, and Eq. 9 turns the rates
//! into power. Averaging over the Eq. 10 process combinations yields the
//! processor power of the assignment — using profiling data only.

use crate::eqcache::{EqCacheStats, EquilibriumCache};
use crate::equilibrium::Equilibrium;
use crate::feature::FeatureVector;
use crate::perf::PerformanceModel;
use crate::power::CorePowerModel;
use crate::profile::ProcessProfile;
use crate::sharing::combination_average;
use crate::ModelError;
use cmpsim::hpc::EventRates;
use cmpsim::machine::MachineConfig;
use cmpsim::types::{CoreId, DieId};

/// A tentative process-to-core mapping over profile indices.
///
/// # Examples
///
/// ```
/// use mpmc_model::assignment::Assignment;
///
/// let mut asg = Assignment::new(4);
/// asg.assign(0, 2).assign(0, 1).assign(3, 0);
/// assert_eq!(asg.processes_on(0), &[2, 1]);
/// assert_eq!(asg.num_processes(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    per_core: Vec<Vec<usize>>,
}

impl Assignment {
    /// An empty assignment over `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        Assignment { per_core: vec![Vec::new(); num_cores] }
    }

    /// Adds process `profile_idx` to `core`'s run queue.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn assign(&mut self, core: usize, profile_idx: usize) -> &mut Self {
        self.per_core[core].push(profile_idx);
        self
    }

    /// The processes queued on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn processes_on(&self, core: usize) -> &[usize] {
        &self.per_core[core]
    }

    /// Number of cores this assignment covers.
    pub fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total processes assigned.
    pub fn num_processes(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// A copy with `profile_idx` additionally assigned to `core` — the
    /// "what if process K goes on core C" primitive of Fig. 1.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn with_assigned(&self, core: usize, profile_idx: usize) -> Assignment {
        let mut next = self.clone();
        next.assign(core, profile_idx);
        next
    }
}

/// The combined model: performance model + power model + profiles.
///
/// Equilibrium solves are memoized: the same set of co-runners on the
/// same cache recurs constantly — across the Eq. 10 combinations of one
/// assignment, and across the candidate assignments of a Fig. 1 greedy
/// sweep (dies the tentative process does not land on are unchanged).
/// The cache key is the *canonically ordered* list of co-runner content
/// fingerprints (histogram + API + SPI coefficients + associativity), so
/// it stays valid even if callers re-index, re-order, or rebuild their
/// profile slices, and permuted co-runner sets share one entry.
///
/// The cache is bounded (sharded LRU, default
/// [`eqcache::DEFAULT_CAPACITY`](crate::eqcache::DEFAULT_CAPACITY)
/// entries) so long-running services never grow without limit; an
/// evicted co-runner set simply re-solves to a bit-identical
/// [`Equilibrium`] on its next appearance.
pub struct CombinedModel<'a, M: CorePowerModel> {
    machine: &'a MachineConfig,
    power: &'a M,
    perf: PerformanceModel,
    eq_cache: EquilibriumCache,
}

impl<'a, M: CorePowerModel> CombinedModel<'a, M> {
    /// Creates a combined model for `machine` using the fitted core power
    /// model `power`.
    pub fn new(machine: &'a MachineConfig, power: &'a M) -> Self {
        CombinedModel {
            machine,
            power,
            perf: PerformanceModel::new(machine.l2_assoc()),
            eq_cache: EquilibriumCache::new(crate::eqcache::DEFAULT_CAPACITY),
        }
    }

    /// Replaces the equilibrium memo cache with one bounded at
    /// `capacity` entries (rounded up to a multiple of the shard count;
    /// 0 disables memoization). Estimates are bit-identical for any
    /// capacity — the bound only affects time and memory.
    #[must_use]
    pub fn with_equilibrium_cache_capacity(mut self, capacity: usize) -> Self {
        self.eq_cache = EquilibriumCache::new(capacity);
        self
    }

    /// Number of distinct co-runner sets whose equilibrium is currently
    /// memoized (diagnostics / tests).
    pub fn cached_equilibria(&self) -> usize {
        self.eq_cache.entries()
    }

    /// A snapshot of the memo-cache counters (hits, misses, evictions,
    /// occupancy, capacity).
    pub fn equilibrium_cache_stats(&self) -> EqCacheStats {
        self.eq_cache.stats()
    }

    /// Fresh equilibrium solves that needed the fallback chain or came
    /// back degraded (service diagnostics).
    pub fn solver_fallbacks(&self) -> u64 {
        self.eq_cache.fallback_solves()
    }

    /// Drops all memoized equilibrium solves.
    pub fn clear_equilibrium_cache(&self) {
        self.eq_cache.clear();
    }

    /// Estimated average processor power of `assignment`, from profiling
    /// data only (Eq. 11 summed over dies).
    ///
    /// # Errors
    ///
    /// - [`ModelError::InvalidAssignment`] if the assignment shape or any
    ///   profile index is invalid.
    /// - Equilibrium errors from the performance model.
    pub fn estimate_processor_power(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
    ) -> Result<f64, ModelError> {
        self.validate(profiles, assignment)?;
        let mut total = 0.0;
        for die in 0..self.machine.dies {
            total += self.estimate_die_power(profiles, assignment, DieId(die as u32))?;
        }
        Ok(total)
    }

    /// Estimated average power of one die's cores under `assignment`
    /// (exposed so callers can inspect the per-die split).
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_processor_power`].
    pub fn estimate_die_power(
        &self,
        profiles: &[ProcessProfile],
        assignment: &Assignment,
        die: DieId,
    ) -> Result<f64, ModelError> {
        let cores = self.machine.cores_of(die);
        let queues: Vec<&[usize]> =
            cores.iter().map(|c| assignment.processes_on(c.0 as usize)).collect();
        let sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
        let idle_w = self.power.idle_core_watts();

        if sizes.iter().all(|&s| s == 0) {
            return Ok(idle_w * cores.len() as f64);
        }

        // Eq. 10: average the die power over all process combinations.
        let mut first_err: Option<ModelError> = None;
        let avg = combination_average(&sizes, |combo| {
            if first_err.is_some() {
                return 0.0;
            }
            match self.combination_power(profiles, &queues, combo, idle_w) {
                Ok(p) => p,
                Err(e) => {
                    first_err = Some(e);
                    0.0
                }
            }
        })?;
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(avg)
    }

    /// Fig. 1's incremental query: estimated processor power after
    /// additionally assigning `profile_idx` to `core`.
    ///
    /// # Errors
    ///
    /// As for [`CombinedModel::estimate_processor_power`].
    pub fn estimate_after_assigning(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        core: usize,
    ) -> Result<f64, ModelError> {
        if core >= current.num_cores() {
            return Err(ModelError::InvalidAssignment(format!(
                "core {core} out of range for {} cores",
                current.num_cores()
            )));
        }
        self.estimate_processor_power(profiles, &current.with_assigned(core, profile_idx))
    }

    /// Evaluates [`CombinedModel::estimate_after_assigning`] for every
    /// candidate core in parallel (`workers = 0` means auto), returning
    /// one estimate per entry of `cores` in order. The workers share the
    /// equilibrium memo cache, so co-runner sets common to several
    /// candidates (every die the tentative process does not touch) are
    /// solved once. Estimation is deterministic, so the result is
    /// identical to a sequential loop for any worker count.
    ///
    /// # Errors
    ///
    /// The error of the first (lowest-index) failing candidate, exactly
    /// as a sequential loop would report.
    pub fn estimate_candidates(
        &self,
        profiles: &[ProcessProfile],
        current: &Assignment,
        profile_idx: usize,
        cores: &[usize],
        workers: usize,
    ) -> Result<Vec<f64>, ModelError>
    where
        M: Sync,
    {
        mathkit::parallel::try_par_map(cores.to_vec(), workers, |_, core| {
            self.estimate_after_assigning(profiles, current, profile_idx, core)
        })
    }

    /// Power of the die for one concrete process combination: the chosen
    /// processes run simultaneously and share the die's cache.
    fn combination_power(
        &self,
        profiles: &[ProcessProfile],
        queues: &[&[usize]],
        combo: &[usize],
        idle_w: f64,
    ) -> Result<f64, ModelError> {
        // Gather the simultaneously running processes.
        let mut running: Vec<(usize, &ProcessProfile)> = Vec::new(); // (core slot, profile)
        for (slot, (&q, &pick)) in queues.iter().zip(combo).enumerate() {
            if pick == usize::MAX {
                continue;
            }
            running.push((slot, &profiles[q[pick]]));
        }
        let idle_cores = queues.len() - running.len();

        if running.len() == 1 {
            // Fig. 1 scenario (1)/(2): no cache contention — use the
            // measured alone power from the profiling vector.
            return Ok(running[0].1.core_power_alone(idle_w) + idle_cores as f64 * idle_w);
        }

        // Contended: performance model predicts SPI and MPA per process.
        let eq = self.solve_cached(&running)?;
        let mut power = idle_cores as f64 * idle_w;
        for (i, (_slot, prof)) in running.iter().enumerate() {
            let spi = eq.spis[i];
            let mpa = eq.mpas[i];
            let rates = EventRates {
                ips: 1.0 / spi,
                l1rps: prof.l1rpi / spi,
                l2rps: prof.l2rpi / spi,
                l2mps: prof.l2rpi * mpa / spi,
                brps: prof.brpi / spi,
                fpps: prof.fppi / spi,
            };
            power += self.power.predict_core(&rates);
        }
        Ok(power)
    }

    /// Memoized equilibrium solve for a co-runner set. The memo key is the
    /// *canonically ordered* list of content fingerprints, so permuted
    /// co-runner sets (`[a, b]` vs `[b, a]`) share one entry; the cached
    /// per-process results are stored in canonical order and permuted back
    /// to the caller's order on a hit. Because the solvers themselves work
    /// in the same canonical order internally, a cache hit is bit-equal to
    /// a fresh solve. Failed solves are not cached so transient-looking
    /// errors keep surfacing.
    fn solve_cached(
        &self,
        running: &[(usize, &ProcessProfile)],
    ) -> Result<Equilibrium, ModelError> {
        let fps: Vec<u64> = running.iter().map(|(_, p)| p.feature.content_fingerprint()).collect();
        let mut order: Vec<usize> = (0..running.len()).collect();
        order.sort_by_key(|&i| (fps[i], i));
        let key: Vec<u64> = order.iter().map(|&i| fps[i]).collect();
        if let Some(canon) = self.eq_cache.get(&key) {
            let mut eq = canon.clone();
            for (ci, &i) in order.iter().enumerate() {
                eq.sizes[i] = canon.sizes[ci];
                eq.mpas[i] = canon.mpas[ci];
                eq.spis[i] = canon.spis[ci];
                eq.apss[i] = canon.apss[ci];
            }
            return Ok(eq);
        }
        let features: Vec<&FeatureVector> = running.iter().map(|(_, p)| &p.feature).collect();
        let eq = self.perf.solve(&features)?;
        if eq.diagnostics.degraded || !eq.diagnostics.fallbacks.is_empty() {
            self.eq_cache.note_fallback();
        }
        let mut canon = eq.clone();
        for (ci, &i) in order.iter().enumerate() {
            canon.sizes[ci] = eq.sizes[i];
            canon.mpas[ci] = eq.mpas[i];
            canon.spis[ci] = eq.spis[i];
            canon.apss[ci] = eq.apss[i];
        }
        self.eq_cache.insert(key, canon);
        Ok(eq)
    }

    fn validate(&self, profiles: &[ProcessProfile], asg: &Assignment) -> Result<(), ModelError> {
        if asg.num_cores() != self.machine.num_cores() {
            return Err(ModelError::InvalidAssignment(format!(
                "assignment covers {} cores, machine has {}",
                asg.num_cores(),
                self.machine.num_cores()
            )));
        }
        for c in 0..asg.num_cores() {
            for &p in asg.processes_on(c) {
                if p >= profiles.len() {
                    return Err(ModelError::InvalidAssignment(format!(
                        "profile index {p} out of range for {} profiles",
                        profiles.len()
                    )));
                }
                if profiles[p].feature.assoc() != self.machine.l2_assoc() {
                    return Err(ModelError::InvalidAssignment(format!(
                        "profile '{}' was built for {} ways, machine cache has {}",
                        profiles[p].feature.name(),
                        profiles[p].feature.assoc(),
                        self.machine.l2_assoc()
                    )));
                }
            }
        }
        let _ = CoreId(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::ReuseHistogram;
    use crate::power::{PowerModel, PowerObservation};
    use crate::spi::SpiModel;
    use rand::Rng;
    use rand::SeedableRng;

    /// A hand-built profile so tests do not need simulation runs.
    fn synthetic_profile(
        name: &str,
        tail: f64,
        api: f64,
        machine: &MachineConfig,
    ) -> ProcessProfile {
        let head = 1.0 - tail;
        let hist =
            ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail)
                .unwrap();
        let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
        let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
        let feature = FeatureVector::new(
            name,
            hist,
            api,
            SpiModel::new(alpha, beta).unwrap(),
            machine.l2_assoc(),
        )
        .unwrap();
        ProcessProfile {
            feature,
            l1rpi: 0.35,
            l2rpi: api,
            brpi: 0.2,
            fppi: 0.1,
            processor_alone_w: 60.0,
            idle_processor_w: 44.0,
        }
    }

    /// A power model fitted on synthetic observations derived from the
    /// machine's ground truth.
    fn synthetic_power_model(machine: &MachineConfig) -> PowerModel {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = machine.num_cores() as f64;
        let mut obs = Vec::new();
        for _ in 0..200 {
            let ips = rng.gen_range(1e6..2.4e7);
            let rates = cmpsim::hpc::EventRates {
                ips,
                l1rps: ips * rng.gen_range(0.2..0.5),
                l2rps: ips * rng.gen_range(0.001..0.05),
                l2mps: ips * rng.gen_range(0.0..0.02),
                brps: ips * rng.gen_range(0.05..0.3),
                fpps: ips * rng.gen_range(0.0..0.3),
            };
            let watts = machine.power.core_power(&rates) + machine.power.uncore_w / n;
            obs.push(PowerObservation { rates, core_watts: watts });
        }
        PowerModel::fit_mvlr(&obs).unwrap()
    }

    fn server() -> MachineConfig {
        MachineConfig::four_core_server()
    }

    #[test]
    fn assignment_builder() {
        let mut a = Assignment::new(2);
        a.assign(1, 0);
        assert_eq!(a.num_processes(), 1);
        assert_eq!(a.processes_on(0), &[] as &[usize]);
        let b = a.with_assigned(0, 1);
        assert_eq!(b.num_processes(), 2);
        assert_eq!(a.num_processes(), 1, "with_assigned must not mutate");
    }

    #[test]
    fn empty_assignment_is_all_idle() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let est = cm.estimate_processor_power(&[], &Assignment::new(4)).unwrap();
        let idle = 4.0 * pm.idle_core_watts();
        assert!((est - idle).abs() < 1e-9);
    }

    #[test]
    fn single_process_uses_alone_power() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let p = synthetic_profile("solo", 0.3, 0.02, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0);
        let est = cm.estimate_processor_power(std::slice::from_ref(&p), &asg).unwrap();
        // core 0: alone power; cores 1-3 idle.
        let expect = p.core_power_alone(pm.idle_core_watts()) + 3.0 * pm.idle_core_watts();
        assert!((est - expect).abs() < 1e-9, "{est} vs {expect}");
    }

    #[test]
    fn contended_pair_uses_model_power() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1); // same die -> contention
        let est = cm.estimate_processor_power(&[a, b], &asg).unwrap();
        // Sanity range: above idle, below silly.
        let idle = 4.0 * pm.idle_core_watts();
        assert!(est > idle + 4.0, "{est} vs idle {idle}");
        assert!(est < idle + 60.0, "{est}");
    }

    #[test]
    fn separate_dies_do_not_contend() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.4, 0.03, &m);
        let mut same_die = Assignment::new(4);
        same_die.assign(0, 0).assign(1, 1);
        let mut diff_die = Assignment::new(4);
        diff_die.assign(0, 0).assign(2, 1);
        let ps = vec![a, b];
        let p_same = cm.estimate_processor_power(&ps, &same_die).unwrap();
        let p_diff = cm.estimate_processor_power(&ps, &diff_die).unwrap();
        // Across dies each runs alone (profiled alone power); same-die
        // estimates must differ because contention changes the rates.
        assert!((p_same - p_diff).abs() > 0.05, "same {p_same} vs diff {p_diff}");
    }

    #[test]
    fn time_sharing_averages_combinations() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.3, 0.02, &m);
        // Both on core 0, partner idle: average of two alone powers.
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(0, 1);
        let est = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        let expect = (a.core_power_alone(pm.idle_core_watts())
            + b.core_power_alone(pm.idle_core_watts()))
            / 2.0
            + 3.0 * pm.idle_core_watts();
        assert!((est - expect).abs() < 1e-9, "{est} vs {expect}");
    }

    #[test]
    fn incremental_matches_full() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let ps = vec![a, b];
        let mut current = Assignment::new(4);
        current.assign(0, 0);
        let inc = cm.estimate_after_assigning(&ps, &current, 1, 1).unwrap();
        let full = cm.estimate_processor_power(&ps, &current.with_assigned(1, 1)).unwrap();
        assert_eq!(inc, full);
    }

    #[test]
    fn validation_errors() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        // Wrong core count.
        assert!(cm.estimate_processor_power(&[], &Assignment::new(2)).is_err());
        // Bad profile index.
        let mut asg = Assignment::new(4);
        asg.assign(0, 5);
        assert!(cm.estimate_processor_power(&[], &asg).is_err());
        // Out-of-range core in incremental query.
        assert!(cm.estimate_after_assigning(&[], &Assignment::new(4), 0, 9).is_err());
    }

    #[test]
    fn memoized_estimates_are_identical_and_cached() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let cold = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1, "one contended pair solved");
        let warm = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cold.to_bits(), warm.to_bits(), "cache must not change results");
        cm.clear_equilibrium_cache();
        assert_eq!(cm.cached_equilibria(), 0);
        let refilled = cm.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(cold.to_bits(), refilled.to_bits());
    }

    #[test]
    fn cache_distinguishes_profile_content_not_index() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let ab = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        // Same indices, swapped contents: must NOT hit the stale entry.
        let ba = cm.estimate_processor_power(&[b.clone(), a.clone()], &asg).unwrap();
        let fresh = CombinedModel::new(&m, &pm);
        let ba_ref = fresh.estimate_processor_power(&[b, a], &asg).unwrap();
        assert_eq!(ba.to_bits(), ba_ref.to_bits(), "stale cache hit");
        // Symmetric pair, so powers agree loosely but the solves differ.
        assert!((ab - ba).abs() < 1.0);
    }

    #[test]
    fn estimate_candidates_matches_sequential_for_all_worker_counts() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let c = synthetic_profile("c", 0.5, 0.04, &m);
        let ps = vec![a, b, c];
        let mut current = Assignment::new(4);
        current.assign(0, 0).assign(2, 1);
        let cores = [0usize, 1, 2, 3];
        let seq: Vec<f64> = {
            let cm = CombinedModel::new(&m, &pm);
            cores
                .iter()
                .map(|&core| cm.estimate_after_assigning(&ps, &current, 2, core).unwrap())
                .collect()
        };
        for workers in [1usize, 2, 8] {
            let cm = CombinedModel::new(&m, &pm);
            let par = cm.estimate_candidates(&ps, &current, 2, &cores, workers).unwrap();
            let seq_bits: Vec<u64> = seq.iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "workers = {workers}");
            assert!(cm.cached_equilibria() >= 1);
        }
    }

    #[test]
    fn permuted_corunners_share_one_cache_entry_bit_equal() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let cm = CombinedModel::new(&m, &pm);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let ab = cm.estimate_processor_power(&[a.clone(), b.clone()], &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1);
        // Swapped profile order: same co-runner *set*, so the canonical
        // memo key must hit the existing entry...
        let ba = cm.estimate_processor_power(&[b.clone(), a.clone()], &asg).unwrap();
        assert_eq!(cm.cached_equilibria(), 1, "permutation must not add an entry");
        // ...and the permuted cached result must be bit-equal to a fresh
        // solve in the swapped order.
        let fresh = CombinedModel::new(&m, &pm);
        let ba_ref = fresh.estimate_processor_power(&[b, a], &asg).unwrap();
        assert_eq!(ba.to_bits(), ba_ref.to_bits());
        // Same physical co-run, so the totals agree (summation order over
        // cores differs, so only up to rounding).
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn estimate_candidates_order_independent_through_memo_cache() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.3, 0.02, &m);
        let b = synthetic_profile("b", 0.2, 0.015, &m);
        let c = synthetic_profile("c", 0.5, 0.04, &m);
        let cores = [0usize, 1, 2, 3];
        // Reference: profiles in order [a, b, c], tentative process = c.
        let ps_ref = vec![a.clone(), b.clone(), c.clone()];
        let mut cur_ref = Assignment::new(4);
        cur_ref.assign(0, 0).assign(1, 1);
        let cm_ref = CombinedModel::new(&m, &pm);
        let est_ref = cm_ref.estimate_candidates(&ps_ref, &cur_ref, 2, &cores, 2).unwrap();
        // Permuted: profiles in order [c, b, a]; the same physical
        // placement (a on core 0, b on core 1, c tentative).
        let ps_perm = vec![c, b, a];
        let mut cur_perm = Assignment::new(4);
        cur_perm.assign(0, 2).assign(1, 1);
        let cm_perm = CombinedModel::new(&m, &pm);
        // Warm the permuted model's cache with the reference order first,
        // so the permuted estimates flow through permuted cache hits.
        let full_ref = cm_ref.estimate_processor_power(&ps_ref, &cur_ref.with_assigned(1, 2));
        let warm = cm_perm.estimate_processor_power(&ps_perm, &cur_perm.with_assigned(1, 0));
        assert_eq!(full_ref.unwrap().to_bits(), warm.unwrap().to_bits());
        let est_perm = cm_perm.estimate_candidates(&ps_perm, &cur_perm, 0, &cores, 2).unwrap();
        let ref_bits: Vec<u64> = est_ref.iter().map(|x| x.to_bits()).collect();
        let perm_bits: Vec<u64> = est_perm.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ref_bits, perm_bits, "physical placement is identical");
    }

    #[test]
    fn cache_stays_bounded_and_evicted_entries_resolve_bit_identical() {
        let m = server();
        let pm = synthetic_power_model(&m);
        // A deliberately tiny bound so a modest sweep overflows it.
        let cm = CombinedModel::new(&m, &pm).with_equilibrium_cache_capacity(8);
        let cap = cm.equilibrium_cache_stats().capacity;
        assert!((8..=16).contains(&cap), "rounded-up capacity, got {cap}");

        // Sweep far more distinct contended pairs than the bound holds.
        let partner = synthetic_profile("partner", 0.2, 0.015, &m);
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let mut cold = Vec::new();
        for i in 0..3 * cap {
            let p = synthetic_profile("p", 0.1 + 0.7 * (i as f64) / (3 * cap) as f64, 0.02, &m);
            let ps = vec![p, partner.clone()];
            cold.push(cm.estimate_processor_power(&ps, &asg).unwrap());
            let st = cm.equilibrium_cache_stats();
            assert!(st.entries <= st.capacity, "iteration {i}: {st:?}");
        }
        let st = cm.equilibrium_cache_stats();
        assert!(st.evictions > 0, "sweep must overflow the bound: {st:?}");
        assert_eq!(st.misses as usize, 3 * cap, "each distinct pair solves once");

        // Replaying the sweep forces re-solves of evicted pairs; every
        // estimate must be bit-identical to its cold pass.
        for (i, &cold_est) in cold.iter().enumerate() {
            let p = synthetic_profile("p", 0.1 + 0.7 * (i as f64) / (3 * cap) as f64, 0.02, &m);
            let ps = vec![p, partner.clone()];
            let warm = cm.estimate_processor_power(&ps, &asg).unwrap();
            assert_eq!(cold_est.to_bits(), warm.to_bits(), "iteration {i}");
        }
    }

    #[test]
    fn zero_capacity_cache_still_estimates_identically() {
        let m = server();
        let pm = synthetic_power_model(&m);
        let a = synthetic_profile("a", 0.4, 0.03, &m);
        let b = synthetic_profile("b", 0.1, 0.01, &m);
        let ps = vec![a, b];
        let mut asg = Assignment::new(4);
        asg.assign(0, 0).assign(1, 1);
        let cached = CombinedModel::new(&m, &pm);
        let uncached = CombinedModel::new(&m, &pm).with_equilibrium_cache_capacity(0);
        let x = cached.estimate_processor_power(&ps, &asg).unwrap();
        let y = uncached.estimate_processor_power(&ps, &asg).unwrap();
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(uncached.cached_equilibria(), 0);
        assert_eq!(uncached.equilibrium_cache_stats().capacity, 0);
    }

    #[test]
    fn assignment_on_lower_power_machine_costs_less() {
        let big = server();
        let small = MachineConfig::duo_laptop();
        let pm_big = synthetic_power_model(&big);
        let pm_small = synthetic_power_model(&small);
        let p_big = synthetic_profile("x", 0.3, 0.02, &big);
        let p_small = synthetic_profile("x", 0.3, 0.02, &small);
        let mut asg_big = Assignment::new(4);
        asg_big.assign(0, 0);
        let mut asg_small = Assignment::new(2);
        asg_small.assign(0, 0);
        let e_big =
            CombinedModel::new(&big, &pm_big).estimate_processor_power(&[p_big], &asg_big).unwrap();
        let e_small = CombinedModel::new(&small, &pm_small)
            .estimate_processor_power(&[p_small], &asg_small)
            .unwrap();
        assert!(e_big > e_small);
    }
}
