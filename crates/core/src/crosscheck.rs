//! Invariant and metamorphic cross-checks for the paper's models.
//!
//! Every check here encodes a property the DAC 2010 model must satisfy
//! *by construction* — capacity conservation (Eq. 7), monotone miss
//! curves (Eq. 2), the occupancy bound `G(n) <= A` (Eq. 5), power at or
//! above the idle floor (Eq. 9), and order-independence of the
//! equilibrium. They are cheap (no simulation), return structured
//! [`Violation`]s instead of panicking, and are exercised from three
//! places:
//!
//! 1. unit/integration tests (`cargo test`),
//! 2. the differential validation harness (`experiments::diffval`),
//! 3. the CLI gate (`mpmc validate`).
//!
//! The *metamorphic* checks perturb an input in a direction with a known
//! qualitative effect (scaling a histogram's tail mass cannot lower the
//! miss ratio; adding an idle process cannot change anyone's occupancy)
//! and verify the model moves the right way.

use crate::equilibrium::{self, Equilibrium, SolveOptions};
use crate::feature::FeatureVector;
use crate::histogram::ReuseHistogram;
use crate::spi::SpiModel;
use crate::ModelError;
use std::fmt;

/// Slack for capacity and bound checks: solver outer loops accept a
/// capacity residual of `1e-4` ways before the cosmetic rescale.
const CAPACITY_TOL: f64 = 1e-4;

/// Slack for the per-process fixed-point residual `|S - G(APS(S)*T)|`
/// of a converged, non-degraded equilibrium, in ways.
const FIXED_POINT_TOL: f64 = 1e-2;

/// One failed invariant: which check tripped and a display-ready detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable check name (e.g. `"capacity"`).
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl Violation {
    fn new(check: &'static str, detail: impl Into<String>) -> Self {
        Violation { check, detail: detail.into() }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Checks a solved [`Equilibrium`] against the features it was solved
/// for: array shapes, finite bounds, capacity conservation (Eq. 7),
/// consistency of the derived MPA/SPI/APS arrays with the feature
/// vectors, and — for converged non-degraded solutions — the per-process
/// fixed point `S_i = G_i(APS_i(S_i) * T)` (Eq. 1).
pub fn check_equilibrium(
    features: &[&FeatureVector],
    assoc: usize,
    eq: &Equilibrium,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let a = assoc as f64;
    let k = features.len();
    if eq.sizes.len() != k || eq.mpas.len() != k || eq.spis.len() != k || eq.apss.len() != k {
        out.push(Violation::new(
            "shape",
            format!("equilibrium arrays do not all have {k} entries"),
        ));
        return out; // the element-wise checks below would index out of bounds
    }
    let total: f64 = eq.sizes.iter().sum();
    if !total.is_finite() || total > a + CAPACITY_TOL {
        out.push(Violation::new(
            "capacity",
            format!("sum of sizes {total} exceeds associativity {assoc}"),
        ));
    }
    if eq.cache_filled && (total - a).abs() > CAPACITY_TOL {
        out.push(Violation::new(
            "capacity",
            format!("cache_filled but sum of sizes {total} != {assoc}"),
        ));
    }
    if !(eq.window.is_finite() && eq.window >= 0.0) {
        out.push(Violation::new("window", format!("window {} not finite/non-negative", eq.window)));
    }
    for (i, f) in features.iter().enumerate() {
        let name = f.name();
        let s = eq.sizes[i];
        if !(s.is_finite() && (-CAPACITY_TOL..=a + CAPACITY_TOL).contains(&s)) {
            out.push(Violation::new("size-bounds", format!("{name}: size {s} outside [0, {a}]")));
            continue;
        }
        let m = eq.mpas[i];
        if !((-1e-9..=1.0 + 1e-9).contains(&m)) {
            out.push(Violation::new("mpa-bounds", format!("{name}: MPA {m} outside [0, 1]")));
        }
        if (m - f.mpa(s)).abs() > 1e-9 {
            out.push(Violation::new(
                "mpa-consistency",
                format!("{name}: recorded MPA {m} != MPA({s}) = {}", f.mpa(s)),
            ));
        }
        let spi = eq.spis[i];
        if !(spi.is_finite() && spi > 0.0) {
            out.push(Violation::new("spi-bounds", format!("{name}: SPI {spi} not positive")));
        } else {
            let expect = f.spi_model().spi(f.mpa(s));
            if ((spi - expect) / expect).abs() > 1e-9 {
                out.push(Violation::new(
                    "spi-consistency",
                    format!("{name}: recorded SPI {spi} != alpha*MPA+beta = {expect}"),
                ));
            }
            let aps = eq.apss[i];
            if (aps * spi - f.api()).abs() > 1e-9 * f.api().max(1.0) {
                out.push(Violation::new(
                    "aps-consistency",
                    format!("{name}: APS {aps} * SPI {spi} != API {}", f.api()),
                ));
            }
        }
        // Eq. 1 residual: only meaningful for converged equilibria of
        // active processes (degraded heuristic splits skip it by design,
        // and saturated/unfilled caches pin S at the saturation point).
        if eq.cache_filled && !eq.diagnostics.degraded && f.api() > 0.0 {
            let implied = f.occupancy().g(f.aps_at(s) * eq.window);
            if (s - implied).abs() > FIXED_POINT_TOL {
                out.push(Violation::new(
                    "fixed-point",
                    format!("{name}: S = {s} but G(APS(S)*T) = {implied}"),
                ));
            }
        }
    }
    out
}

/// Checks a reuse-distance histogram and its derived miss-ratio curve:
/// unit mass, `MPA in [0, 1]`, and monotone non-increasing in the cache
/// size over `0..=max_ways` (Eq. 2 — more cache cannot miss more).
pub fn check_histogram_invariants(h: &ReuseHistogram, max_ways: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(e) = crate::validate::histogram(h) {
        out.push(Violation::new("histogram-mass", e.to_string()));
    }
    let mut prev = f64::INFINITY;
    for s in 0..=max_ways {
        let m = h.mpa_int(s);
        if !((-1e-9..=1.0 + 1e-9).contains(&m)) {
            out.push(Violation::new("mpa-bounds", format!("MPA({s}) = {m} outside [0, 1]")));
        }
        if m > prev + crate::validate::TOLERANCE {
            out.push(Violation::new(
                "mpa-monotone",
                format!("MPA({s}) = {m} > MPA({}) = {prev}", s - 1),
            ));
        }
        prev = m;
    }
    out
}

/// Checks the derived occupancy curve: `G(0) = 0`, `G` monotone
/// non-decreasing, and `G(n) <= A` for all `n` (the Eq. 5 bound — a
/// process can never occupy more ways than the cache has).
pub fn check_occupancy_invariants(f: &FeatureVector) -> Vec<Violation> {
    let mut out = Vec::new();
    let occ = f.occupancy();
    let a = f.assoc() as f64;
    if occ.g(0.0).abs() > 1e-9 {
        out.push(Violation::new("occupancy-origin", format!("G(0) = {} != 0", occ.g(0.0))));
    }
    let n_max = occ.n_max();
    let mut prev = -1e-9;
    for step in 0..=64 {
        // Geometric sweep reaching past the tabulated range.
        let n = n_max * 1.5 * f64::from(step) / 64.0;
        let g = occ.g(n);
        if g > a + 1e-6 {
            out.push(Violation::new(
                "occupancy-bound",
                format!("G({n}) = {g} exceeds associativity {a}"),
            ));
        }
        if g < prev - 1e-9 {
            out.push(Violation::new(
                "occupancy-monotone",
                format!("G({n}) = {g} < previous sample {prev}"),
            ));
        }
        prev = g;
    }
    out
}

/// Checks that the equilibrium is independent of process ordering: the
/// same feature set solved in reversed and rotated order must yield
/// *bit-identical* per-process results (sizes, window, filled flag) once
/// mapped back. The solvers guarantee this by solving in a canonical
/// content-fingerprint order internally.
///
/// # Errors
///
/// Propagates solver errors (the check itself never fails the solve).
pub fn check_order_independence(
    features: &[&FeatureVector],
    assoc: usize,
) -> Result<Vec<Violation>, ModelError> {
    let mut out = Vec::new();
    if features.len() < 2 {
        return Ok(out);
    }
    let base = equilibrium::solve_robust(features, assoc, &SolveOptions::default())?;
    let k = features.len();
    let perms: [Vec<usize>; 2] = [
        (0..k).rev().collect(),
        (0..k).map(|i| (i + 1) % k).collect(), // one rotation
    ];
    for perm in &perms {
        let permuted: Vec<&FeatureVector> = perm.iter().map(|&i| features[i]).collect();
        let eq = equilibrium::solve_robust(&permuted, assoc, &SolveOptions::default())?;
        for (pi, &i) in perm.iter().enumerate() {
            if eq.sizes[pi].to_bits() != base.sizes[i].to_bits()
                || eq.spis[pi].to_bits() != base.spis[i].to_bits()
            {
                out.push(Violation::new(
                    "order-independence",
                    format!(
                        "process '{}': size {} (order {perm:?}) != {} (identity order)",
                        features[i].name(),
                        eq.sizes[pi],
                        base.sizes[i]
                    ),
                ));
            }
        }
        if eq.window.to_bits() != base.window.to_bits() || eq.cache_filled != base.cache_filled {
            out.push(Violation::new(
                "order-independence",
                format!("window/filled differ under order {perm:?}"),
            ));
        }
    }
    Ok(out)
}

/// Checks the power floor: an estimate for `num_cores` cores can never
/// fall below the all-idle power `num_cores * idle_core_w` (beyond half
/// a watt of measurement-quantization headroom, matching
/// [`crate::validate::profile`]).
pub fn check_power_floor(estimate_w: f64, num_cores: usize, idle_core_w: f64) -> Vec<Violation> {
    let floor = num_cores as f64 * idle_core_w;
    if !estimate_w.is_finite() || estimate_w < floor - 0.5 {
        vec![Violation::new(
            "power-floor",
            format!("estimate {estimate_w} W below idle floor {floor} W ({num_cores} cores)"),
        )]
    } else {
        Vec::new()
    }
}

/// Metamorphic check: scaling a histogram's tail mass up by
/// `factor >= 1` (more never-reused accesses) and renormalizing must not
/// *decrease* the predicted miss ratio at any cache size.
///
/// # Errors
///
/// Rejects `factor < 1` (the property only holds in that direction) and
/// propagates histogram-construction errors.
pub fn metamorphic_tail_scaling(
    f: &FeatureVector,
    factor: f64,
) -> Result<Vec<Violation>, ModelError> {
    if factor.is_nan() || factor < 1.0 {
        return Err(ModelError::InvalidDistribution(format!(
            "tail-scaling metamorphic check needs factor >= 1, got {factor}"
        )));
    }
    let scaled = f.histogram().with_scaled_tail(factor)?;
    let mut out = Vec::new();
    for step in 0..=(2 * f.assoc()) {
        let s = f64::from(u32::try_from(step).unwrap_or(u32::MAX)) * 0.5;
        let before = f.histogram().mpa(s);
        let after = scaled.mpa(s);
        if after < before - 1e-12 {
            out.push(Violation::new(
                "metamorphic-tail",
                format!(
                    "'{}': scaling tail x{factor} lowered MPA({s}) from {before} to {after}",
                    f.name()
                ),
            ));
        }
    }
    Ok(out)
}

/// Metamorphic check: appending an *idle* process (`API == 0`) to a
/// co-run set must leave every other process's equilibrium bit-identical
/// and give the idle process exactly zero occupancy.
///
/// # Errors
///
/// Propagates solver and construction errors.
pub fn metamorphic_idle_process(
    features: &[&FeatureVector],
    assoc: usize,
) -> Result<Vec<Violation>, ModelError> {
    let base = equilibrium::solve_robust(features, assoc, &SolveOptions::default())?;
    let idle = idle_feature(assoc)?;
    let mut with_idle: Vec<&FeatureVector> = features.to_vec();
    with_idle.push(&idle);
    let eq = equilibrium::solve_robust(&with_idle, assoc, &SolveOptions::default())?;
    let mut out = Vec::new();
    let k = features.len();
    if !mathkit::float::exactly_zero(eq.sizes[k]) || !mathkit::float::exactly_zero(eq.apss[k]) {
        out.push(Violation::new(
            "metamorphic-idle",
            format!(
                "idle process got {} ways, {} APS; expected exactly 0",
                eq.sizes[k], eq.apss[k]
            ),
        ));
    }
    for (i, f) in features.iter().enumerate() {
        if eq.sizes[i].to_bits() != base.sizes[i].to_bits() {
            out.push(Violation::new(
                "metamorphic-idle",
                format!(
                    "'{}': size changed from {} to {} when an idle process joined",
                    f.name(),
                    base.sizes[i],
                    eq.sizes[i]
                ),
            ));
        }
    }
    Ok(out)
}

/// A well-formed idle (L2-silent) feature vector for `assoc` ways.
///
/// # Errors
///
/// Propagates construction errors (none expected for valid `assoc`).
pub fn idle_feature(assoc: usize) -> Result<FeatureVector, ModelError> {
    let hist = ReuseHistogram::new(vec![], 1.0)?;
    let spi = SpiModel::new(0.0, 1e-9)?;
    FeatureVector::new("idle", hist, 0.0, spi, assoc)
}

/// Runs the full static battery on one co-run set: histogram and
/// occupancy invariants per feature, a robust solve checked with
/// [`check_equilibrium`], order independence, the idle-process
/// metamorphic check, and tail scaling (x2) per feature. Returns every
/// violation found; an empty vector means the set is clean.
///
/// # Errors
///
/// Propagates solver errors (a *failed solve* is an error, not a
/// violation — the caller decides how to report it).
pub fn check_corun_set(
    features: &[&FeatureVector],
    assoc: usize,
) -> Result<Vec<Violation>, ModelError> {
    let mut out = Vec::new();
    for f in features {
        out.extend(check_histogram_invariants(f.histogram(), assoc));
        out.extend(check_occupancy_invariants(f));
        out.extend(metamorphic_tail_scaling(f, 2.0)?);
    }
    let eq = equilibrium::solve_robust(features, assoc, &SolveOptions::default())?;
    out.extend(check_equilibrium(features, assoc, &eq));
    out.extend(check_order_independence(features, assoc)?);
    out.extend(metamorphic_idle_process(features, assoc)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::machine::MachineConfig;
    use workloads::spec::SpecWorkload;

    fn fv(w: SpecWorkload) -> FeatureVector {
        FeatureVector::from_workload(&w.params(), &MachineConfig::four_core_server()).unwrap()
    }

    #[test]
    fn clean_corun_set_has_no_violations() {
        let (mcf, gzip) = (fv(SpecWorkload::Mcf), fv(SpecWorkload::Gzip));
        let violations = check_corun_set(&[&mcf, &gzip], 16).unwrap();
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn corrupted_equilibrium_is_caught() {
        let (mcf, gzip) = (fv(SpecWorkload::Mcf), fv(SpecWorkload::Gzip));
        let features = [&mcf, &gzip];
        let mut eq = equilibrium::solve(&features, 16).unwrap();
        assert!(check_equilibrium(&features, 16, &eq).is_empty());
        // Break capacity conservation.
        eq.sizes[0] += 3.0;
        let v = check_equilibrium(&features, 16, &eq);
        assert!(v.iter().any(|v| v.check == "capacity"), "{v:?}");
        // Break derived-array consistency.
        let mut eq2 = equilibrium::solve(&features, 16).unwrap();
        eq2.mpas[1] = 0.9;
        let v = check_equilibrium(&features, 16, &eq2);
        assert!(v.iter().any(|v| v.check == "mpa-consistency"), "{v:?}");
        // Wrong shape short-circuits.
        let mut eq3 = equilibrium::solve(&features, 16).unwrap();
        eq3.sizes.pop();
        let v = check_equilibrium(&features, 16, &eq3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "shape");
    }

    #[test]
    fn histogram_invariants_catch_bad_mass() {
        let h = ReuseHistogram::new(vec![0.6, 0.2], 0.2).unwrap();
        assert!(check_histogram_invariants(&h, 8).is_empty());
        // A histogram built via from_parts with bad mass is caught.
        let bad = ReuseHistogram::from_parts(vec![0.6, 0.2], 0.5);
        let v = check_histogram_invariants(&bad, 8);
        assert!(v.iter().any(|v| v.check == "histogram-mass"), "{v:?}");
    }

    #[test]
    fn occupancy_invariants_hold_for_all_specs() {
        for w in SpecWorkload::duo_suite() {
            let f = fv(w);
            let v = check_occupancy_invariants(&f);
            assert!(v.is_empty(), "{}: {v:?}", f.name());
        }
    }

    #[test]
    fn power_floor_check() {
        assert!(check_power_floor(130.0, 4, 30.0).is_empty());
        assert!(check_power_floor(119.6, 4, 30.0).is_empty(), "inside quantization headroom");
        let v = check_power_floor(100.0, 4, 30.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "power-floor");
        assert!(!check_power_floor(f64::NAN, 4, 30.0).is_empty());
    }

    #[test]
    fn tail_scaling_rejects_factor_below_one() {
        let mcf = fv(SpecWorkload::Mcf);
        assert!(metamorphic_tail_scaling(&mcf, 0.5).is_err());
        assert!(metamorphic_tail_scaling(&mcf, 1.0).unwrap().is_empty());
        assert!(metamorphic_tail_scaling(&mcf, 4.0).unwrap().is_empty());
    }

    #[test]
    fn idle_process_check_passes_for_pairs() {
        let (art, twolf) = (fv(SpecWorkload::Art), fv(SpecWorkload::Twolf));
        let v = metamorphic_idle_process(&[&art, &twolf], 16).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn order_independence_check_passes() {
        let (mcf, gzip, art) =
            (fv(SpecWorkload::Mcf), fv(SpecWorkload::Gzip), fv(SpecWorkload::Art));
        let v = check_order_independence(&[&mcf, &gzip, &art], 16).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violation_displays_check_name() {
        let v = Violation::new("capacity", "sum too big");
        assert_eq!(v.to_string(), "[capacity] sum too big");
    }
}
