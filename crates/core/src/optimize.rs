//! Deterministic placement optimization over [`Assignment`]s (ROADMAP
//! item 2: turn the combined model of paper §5 into a scheduler).
//!
//! The paper's assignment-time estimator (Fig. 1, Eq. 11) answers "what
//! would this placement cost?"; this module closes the loop and searches
//! for the placement itself, under three objectives:
//!
//! - **min-power** ([`Objective::MinPower`]): least estimated average
//!   processor power (Eq. 11 summed over dies).
//! - **min-makespan** ([`Objective::MinMakespan`]): least worst-case
//!   relative completion time under Eq. 10 round-robin time sharing
//!   (see [`CombinedModel::estimate_makespan`]).
//! - **power-capped perf** ([`Objective::PowerCapped`]): least makespan
//!   among placements whose estimated power stays under a cap; an
//!   infeasible cap surfaces as
//!   [`ModelError::InfeasiblePowerCap`] carrying the least-power
//!   placement found as a diagnostic.
//!
//! # Search strategy
//!
//! Small instances are solved **exactly**: a depth-first enumeration
//! assigns processes (in canonical content order) to cores, with two
//! symmetry-pruning rules — a process may only open the *first* empty
//! core of a die and the *first* entirely-empty die, and
//! permutation-equivalent complete placements are deduplicated by a
//! canonical fingerprint (per-die sorted queues of content fingerprints,
//! dies sorted). For the min-makespan objective an admissible
//! alone-SPI bound additionally prunes subtrees that cannot beat the
//! greedy incumbent (a process on a queue of length `q` can never finish
//! faster than `q * alone_spi`, and queues only grow). All surviving
//! leaves are batch-prestaged through the equilibrium memo cache
//! (`solve_batch`) and then scored sequentially, so the answer is
//! bit-identical for any worker count.
//!
//! When the distinct-leaf count exceeds
//! [`OptimizeOptions::exhaustive_leaf_limit`], the engine switches to a
//! **seeded local search**: a greedy construction plus seeded random
//! restarts, refined by steepest-descent move (process to another core)
//! and swap (two processes exchange cores) neighborhoods. Every
//! neighborhood round batch-prestages its candidate assignments and then
//! scores them in a fixed order, so local search is deterministic for
//! any worker count too — and, like the exact path, invariant under
//! scrambled process order because all decisions are made in canonical
//! content order.

use crate::assignment::{Assignment, CombinedModel, DegradedEstimate, DegradedSource};
use crate::power::CorePowerModel;
use crate::profile::ProcessProfile;
use crate::ModelError;
use mathkit::sync::CancelToken;
use rand::Rng;
use rand::SeedableRng;
use std::cell::Cell;
use std::collections::BTreeSet;

/// What the optimizer minimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Least estimated average processor power (watts).
    MinPower,
    /// Least estimated makespan (worst relative completion time).
    MinMakespan,
    /// Least makespan subject to estimated power `<= cap_w` watts.
    PowerCapped {
        /// The power budget in watts.
        cap_w: f64,
    },
}

impl Objective {
    /// Parses the CLI/wire spelling: `power`, `makespan`, or
    /// `capped:<watts>`.
    ///
    /// # Errors
    ///
    /// A display-ready message when the spec is unknown or the cap is
    /// not a positive finite number (callers map it to their usage-error
    /// channel).
    pub fn from_spec(spec: &str) -> Result<Objective, String> {
        match spec {
            "power" => Ok(Objective::MinPower),
            "makespan" => Ok(Objective::MinMakespan),
            _ => {
                if let Some(watts) = spec.strip_prefix("capped:") {
                    let cap_w: f64 = watts.parse().map_err(|_| {
                        format!("invalid power cap '{watts}': expected a number of watts")
                    })?;
                    if !cap_w.is_finite() || cap_w <= 0.0 {
                        return Err(format!(
                            "invalid power cap '{watts}': must be positive and finite"
                        ));
                    }
                    Ok(Objective::PowerCapped { cap_w })
                } else {
                    Err(format!(
                        "unknown objective '{spec}': expected power, makespan, or capped:<watts>"
                    ))
                }
            }
        }
    }

    /// The stable wire spelling ([`Objective::from_spec`] round-trips it).
    pub fn spec(&self) -> String {
        match self {
            Objective::MinPower => "power".into(),
            Objective::MinMakespan => "makespan".into(),
            Objective::PowerCapped { cap_w } => format!("capped:{cap_w}"),
        }
    }
}

/// Tuning knobs for [`optimize`]. The defaults solve a 4-core /
/// 8-process instance exactly and fall back to local search beyond
/// roughly that size.
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Worker threads for the batched equilibrium prestage (`0` = auto).
    /// Results are bit-identical for any value.
    pub workers: usize,
    /// Seed for the local-search random restarts. Same seed, same
    /// machine, same process contents: same answer.
    pub seed: u64,
    /// Exact search is used while the symmetry-deduplicated placement
    /// count stays at or under this; beyond it the engine switches to
    /// seeded local search.
    pub exhaustive_leaf_limit: u64,
    /// Seeded random restarts for the local search (the greedy
    /// construction is always tried in addition).
    pub restarts: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions { workers: 0, seed: 0, exhaustive_leaf_limit: 20_000, restarts: 2 }
    }
}

/// Which engine produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Exhaustive enumeration over symmetry classes: the answer is the
    /// true optimum of the model.
    Exact,
    /// Greedy construction + seeded restarts + move/swap descent: the
    /// answer is a deterministic local optimum.
    LocalSearch,
}

impl SearchMethod {
    /// Stable lowercase label for wire protocols and logs.
    pub fn name(self) -> &'static str {
        match self {
            SearchMethod::Exact => "exact",
            SearchMethod::LocalSearch => "local_search",
        }
    }
}

/// The optimizer's answer: the chosen placement plus both metrics and
/// search diagnostics.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen placement (profile indices per core, in canonical
    /// content order within each queue).
    pub assignment: Assignment,
    /// Estimated average processor power of the placement (watts).
    pub power_w: f64,
    /// Estimated makespan of the placement (relative completion time).
    pub makespan: f64,
    /// Placements whose objective was actually scored.
    pub evaluated: u64,
    /// Search nodes skipped: canonical-fingerprint duplicates plus (for
    /// makespan) alone-SPI bound prunes in the exact engine; non-improving
    /// neighbor evaluations in the local engine count under `evaluated`.
    pub pruned: u64,
    /// Which engine produced the answer.
    pub method: SearchMethod,
}

/// Scored placement: capped runs order infeasible placements after all
/// feasible ones, then by value; plain runs compare values directly.
#[derive(Debug, Clone, Copy)]
struct Score {
    infeasible: bool,
    value: f64,
}

impl Score {
    fn better_than(&self, other: &Score) -> bool {
        (self.infeasible, other.infeasible) == (false, true)
            || (self.infeasible == other.infeasible
                && self.value.total_cmp(&other.value) == std::cmp::Ordering::Less)
    }
}

/// The core/die topology the search walks, plus the processes to place
/// in canonical content order.
struct Instance<'p> {
    profiles: &'p [ProcessProfile],
    /// Profile index of each process, sorted by (content fingerprint,
    /// profile index) so scrambled inputs search identically.
    procs: Vec<usize>,
    /// Content fingerprint per canonical process.
    fps: Vec<u64>,
    /// Predicted full-cache (alone) SPI per canonical process.
    alone_spi: Vec<f64>,
    /// Cores grouped by die, ascending.
    cores_by_die: Vec<Vec<usize>>,
    num_cores: usize,
}

impl<'p> Instance<'p> {
    fn new<M: CorePowerModel>(
        model: &CombinedModel<'_, M>,
        profiles: &'p [ProcessProfile],
        processes: &[usize],
    ) -> Result<Self, ModelError> {
        if processes.is_empty() {
            return Err(ModelError::EmptyInput("processes to place"));
        }
        let machine = model.machine();
        if machine.num_cores() == 0 {
            return Err(ModelError::EmptyInput("machine cores"));
        }
        for &p in processes {
            if p >= profiles.len() {
                return Err(ModelError::InvalidAssignment(format!(
                    "profile index {p} out of range for {} profiles",
                    profiles.len()
                )));
            }
        }
        let mut procs = processes.to_vec();
        procs.sort_by_key(|&p| (profiles[p].feature.content_fingerprint(), p));
        let fps: Vec<u64> =
            procs.iter().map(|&p| profiles[p].feature.content_fingerprint()).collect();
        let assoc = machine.l2_assoc() as f64;
        let alone_spi: Vec<f64> =
            procs.iter().map(|&p| profiles[p].feature.spi_at(assoc)).collect();
        let cores_by_die: Vec<Vec<usize>> = (0..machine.dies)
            .map(|d| {
                machine
                    .cores_of(cmpsim::types::DieId(d as u32))
                    .iter()
                    .map(|c| c.0 as usize)
                    .collect()
            })
            .collect();
        Ok(Instance {
            profiles,
            procs,
            fps,
            alone_spi,
            cores_by_die,
            num_cores: machine.num_cores(),
        })
    }

    /// Symmetry-pruned candidate cores for the next process given the
    /// current per-core fingerprint queues: all occupied cores, the first
    /// empty core of each occupied die, and the first core of the first
    /// entirely-empty die (per die size, should dies ever differ).
    fn candidate_cores(&self, queues: &[Vec<u64>]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut empty_die_sizes: Vec<usize> = Vec::new();
        for cores in &self.cores_by_die {
            if cores.iter().all(|&c| queues[c].is_empty()) {
                if !empty_die_sizes.contains(&cores.len()) {
                    empty_die_sizes.push(cores.len());
                    if let Some(&first) = cores.first() {
                        out.push(first);
                    }
                }
                continue;
            }
            let mut first_empty_done = false;
            for &c in cores {
                if queues[c].is_empty() {
                    if !first_empty_done {
                        first_empty_done = true;
                        out.push(c);
                    }
                } else {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Canonical fingerprint of a complete placement: queues sorted
    /// within each die, dies sorted, everything length-prefixed so
    /// distinct shapes cannot collide.
    fn leaf_key(&self, queues: &[Vec<u64>]) -> Vec<u64> {
        let mut dies: Vec<Vec<u64>> = Vec::with_capacity(self.cores_by_die.len());
        for cores in &self.cores_by_die {
            let mut qs: Vec<&Vec<u64>> = cores.iter().map(|&c| &queues[c]).collect();
            qs.sort();
            let mut flat = Vec::new();
            for q in qs {
                flat.push(q.len() as u64);
                flat.extend_from_slice(q);
            }
            dies.push(flat);
        }
        dies.sort();
        let mut key = Vec::new();
        for die in dies {
            key.push(die.len() as u64);
            key.extend(die);
        }
        key
    }

    /// Materializes a choice vector (core per canonical process) as an
    /// [`Assignment`]; queues fill in canonical content order.
    fn to_assignment(&self, choice: &[usize]) -> Assignment {
        let mut asg = Assignment::new(self.num_cores);
        for (k, &core) in choice.iter().enumerate() {
            asg.assign(core, self.procs[k]);
        }
        asg
    }

    /// Admissible makespan lower bound of any completion of the partial
    /// placement behind `queues`/`lens`: a process on a queue of length
    /// `q` can never finish faster than `q * alone_spi`, and queues only
    /// grow as more processes are placed.
    fn makespan_bound(&self, lens: &[usize], max_alone: &[f64]) -> f64 {
        let mut bound: f64 = 0.0;
        for (len, m) in lens.iter().zip(max_alone) {
            bound = bound.max(*len as f64 * m);
        }
        bound
    }
}

/// One placement's metrics, lazily computed per objective.
struct Metrics {
    power_w: Option<f64>,
    score: Score,
}

fn score_assignment<M: CorePowerModel>(
    model: &CombinedModel<'_, M>,
    profiles: &[ProcessProfile],
    asg: &Assignment,
    objective: Objective,
    cancel: &CancelToken,
) -> Result<Metrics, ModelError> {
    match objective {
        Objective::MinPower => {
            let p = model.estimate_processor_power_cancellable(profiles, asg, cancel)?;
            Ok(Metrics { power_w: Some(p), score: Score { infeasible: false, value: p } })
        }
        Objective::MinMakespan => {
            let m = model.estimate_makespan_cancellable(profiles, asg, cancel)?;
            Ok(Metrics { power_w: None, score: Score { infeasible: false, value: m } })
        }
        Objective::PowerCapped { cap_w } => {
            let p = model.estimate_processor_power_cancellable(profiles, asg, cancel)?;
            if p.total_cmp(&cap_w) == std::cmp::Ordering::Greater {
                // Over budget: ordered after every feasible placement,
                // least-power first, so the best infeasible placement is
                // still tracked for the diagnostic.
                return Ok(Metrics {
                    power_w: Some(p),
                    score: Score { infeasible: true, value: p },
                });
            }
            let m = model.estimate_makespan_cancellable(profiles, asg, cancel)?;
            Ok(Metrics { power_w: Some(p), score: Score { infeasible: false, value: m } })
        }
    }
}

/// Finds the best placement of `processes` (profile indices; repeats are
/// separate process instances) under `objective`. Deterministic: the
/// same machine, profiles contents, process multiset, objective, and
/// options produce the same answer bits for any worker count and any
/// input order.
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] when there are no processes or cores.
/// - [`ModelError::InvalidAssignment`] for a bad profile index.
/// - [`ModelError::InfeasiblePowerCap`] when no placement satisfies a
///   [`Objective::PowerCapped`] budget; the error carries the
///   least-power placement found as a diagnostic.
/// - [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
///   `cancel` fires.
/// - Equilibrium errors from the performance model.
pub fn optimize<M: CorePowerModel + Sync>(
    model: &CombinedModel<'_, M>,
    profiles: &[ProcessProfile],
    processes: &[usize],
    objective: Objective,
    opts: &OptimizeOptions,
    cancel: &CancelToken,
) -> Result<Optimized, ModelError> {
    let inst = Instance::new(model, profiles, processes)?;
    if let Some(done) = exact_search(model, &inst, objective, opts, cancel)? {
        return finish(model, &inst, objective, done, SearchMethod::Exact, cancel);
    }
    let done = local_search(model, &inst, objective, opts, cancel)?;
    finish(model, &inst, objective, done, SearchMethod::LocalSearch, cancel)
}

/// Exhaustive scoring of every placement (no pruning, no dedup) — the
/// reference the exact engine is tested against, and the `--brute`
/// baseline of the CI smoke gate. Refuses instances with more than
/// 2^20 raw placements.
///
/// # Errors
///
/// As for [`optimize`], plus [`ModelError::InvalidAssignment`] when the
/// instance is too large to brute-force.
pub fn brute_force<M: CorePowerModel + Sync>(
    model: &CombinedModel<'_, M>,
    profiles: &[ProcessProfile],
    processes: &[usize],
    objective: Objective,
    cancel: &CancelToken,
) -> Result<Optimized, ModelError> {
    let inst = Instance::new(model, profiles, processes)?;
    let n = inst.procs.len();
    let c = inst.num_cores;
    let space = (c as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    if space > 1 << 20 {
        return Err(ModelError::InvalidAssignment(format!(
            "brute force over {c}^{n} placements is too large; use optimize()"
        )));
    }
    let mut choice = vec![0usize; n];
    let mut best: Option<(Score, Vec<usize>)> = None;
    let mut best_power: Option<(f64, Vec<usize>)> = None;
    let mut evaluated = 0u64;
    'space: loop {
        let asg = inst.to_assignment(&choice);
        let metrics = score_assignment(model, profiles, &asg, objective, cancel)?;
        evaluated += 1;
        track_best(&mut best, &mut best_power, &metrics, &choice);
        // Odometer increment over the C^N space.
        let mut k = 0;
        loop {
            if k == n {
                break 'space;
            }
            choice[k] += 1;
            if choice[k] < c {
                break;
            }
            choice[k] = 0;
            k += 1;
        }
    }
    // n >= 1 and c >= 1, so at least one placement was scored.
    let Some((score, choice)) = best else {
        return Err(ModelError::EmptyInput("placements to score"));
    };
    finish(
        model,
        &inst,
        objective,
        SearchOutcome { score, choice, evaluated, pruned: 0, best_power },
        SearchMethod::Exact,
        cancel,
    )
}

/// A fast, solver-free placement for the service's degraded tier: greedy
/// min-power construction where every estimate comes from the no-solve
/// degraded estimator (stale cache entries, neighbor splits, or the
/// proportional closed form — see
/// [`CombinedModel::estimate_processor_power_degraded`]). Reports the
/// worst equilibrium source any step needed so callers can tag the
/// answer honestly.
///
/// # Errors
///
/// Validation errors as for [`optimize`]; the degraded tiers themselves
/// cannot fail on valid inputs.
pub fn greedy_min_power_degraded<M: CorePowerModel>(
    model: &CombinedModel<'_, M>,
    profiles: &[ProcessProfile],
    processes: &[usize],
) -> Result<(Assignment, DegradedEstimate), ModelError> {
    let inst = Instance::new(model, profiles, processes)?;
    let worst = Cell::new(DegradedSource::ExactCache);
    let mut asg = Assignment::new(inst.num_cores);
    let mut last = 0.0;
    for &p in &inst.procs {
        let mut best: Option<(f64, usize)> = None;
        for core in 0..inst.num_cores {
            let cand = asg.try_with_assigned(core, p)?;
            let est = model.estimate_processor_power_degraded(profiles, &cand)?;
            if est.source > worst.get() {
                worst.set(est.source);
            }
            let better = match &best {
                None => true,
                Some((w, _)) => est.power_w.total_cmp(w) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((est.power_w, core));
            }
        }
        // Instance::new rejected zero-core machines, so a core was found.
        let Some((power, core)) = best else {
            return Err(ModelError::EmptyInput("machine cores"));
        };
        asg.try_assign(core, p)?;
        last = power;
    }
    Ok((asg, DegradedEstimate { power_w: last, source: worst.get() }))
}

/// What a search engine hands back to [`finish`].
struct SearchOutcome {
    score: Score,
    choice: Vec<usize>,
    evaluated: u64,
    pruned: u64,
    /// Least-power placement seen (capped runs only; the infeasibility
    /// diagnostic).
    best_power: Option<(f64, Vec<usize>)>,
}

fn track_best(
    best: &mut Option<(Score, Vec<usize>)>,
    best_power: &mut Option<(f64, Vec<usize>)>,
    metrics: &Metrics,
    choice: &[usize],
) {
    let better = match best {
        None => true,
        Some((incumbent, _)) => metrics.score.better_than(incumbent),
    };
    if better {
        *best = Some((metrics.score, choice.to_vec()));
    }
    if let Some(p) = metrics.power_w {
        let better = match best_power {
            None => true,
            Some((w, _)) => p.total_cmp(w) == std::cmp::Ordering::Less,
        };
        if better {
            *best_power = Some((p, choice.to_vec()));
        }
    }
}

/// Converts a winning choice vector into the public [`Optimized`],
/// computing whichever of the two metrics the search did not need (all
/// equilibria are memoized by now, so this is nearly free). Surfaces the
/// infeasible-cap error.
fn finish<M: CorePowerModel>(
    model: &CombinedModel<'_, M>,
    inst: &Instance<'_>,
    objective: Objective,
    outcome: SearchOutcome,
    method: SearchMethod,
    cancel: &CancelToken,
) -> Result<Optimized, ModelError> {
    if outcome.score.infeasible {
        // Only capped runs mark placements infeasible, and capped scoring
        // always tracks the least-power placement for the diagnostic.
        if let (Objective::PowerCapped { cap_w }, Some((best_power_w, choice))) =
            (objective, &outcome.best_power)
        {
            return Err(ModelError::InfeasiblePowerCap {
                cap_w,
                best_power_w: *best_power_w,
                best_placement: inst.to_assignment(choice).to_queues(),
            });
        }
        return Err(ModelError::EquilibriumFailed(
            "internal: infeasible placement score without a power cap".into(),
        ));
    }
    let assignment = inst.to_assignment(&outcome.choice);
    let power_w = model.estimate_processor_power_cancellable(inst.profiles, &assignment, cancel)?;
    let makespan = model.estimate_makespan_cancellable(inst.profiles, &assignment, cancel)?;
    Ok(Optimized {
        assignment,
        power_w,
        makespan,
        evaluated: outcome.evaluated,
        pruned: outcome.pruned,
        method,
    })
}

/// Depth-first enumeration over symmetry classes. Returns `Ok(None)`
/// when the class count exceeds the exhaustive limit (local search takes
/// over).
fn exact_search<M: CorePowerModel + Sync>(
    model: &CombinedModel<'_, M>,
    inst: &Instance<'_>,
    objective: Objective,
    opts: &OptimizeOptions,
    cancel: &CancelToken,
) -> Result<Option<SearchOutcome>, ModelError> {
    // Greedy incumbent: seeds the makespan bound and guarantees the
    // exact answer is never worse than the constructive one.
    let greedy_choice = greedy_construct(model, inst, objective, cancel)?;
    let incumbent_bound = match objective {
        Objective::MinMakespan => {
            let asg = inst.to_assignment(&greedy_choice);
            Some(model.estimate_makespan_cancellable(inst.profiles, &asg, cancel)?)
        }
        _ => None,
    };

    // Pass 1 (dry, no solves): enumerate symmetry classes, dedup by
    // canonical fingerprint, apply the admissible makespan bound, and
    // collect one representative choice vector per class. Bails out as
    // soon as the class count exceeds the limit.
    let n = inst.procs.len();
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut leaves: Vec<Vec<usize>> = Vec::new();
    let mut dup_pruned = 0u64;
    let mut bound_pruned = 0u64;
    let mut over_limit = false;
    {
        let mut choice: Vec<usize> = Vec::with_capacity(n);
        let mut queues: Vec<Vec<u64>> = vec![Vec::new(); inst.num_cores];
        let mut lens = vec![0usize; inst.num_cores];
        let mut max_alone = vec![0.0f64; inst.num_cores];
        dfs(
            inst,
            0,
            &mut choice,
            &mut queues,
            &mut lens,
            &mut max_alone,
            incumbent_bound,
            &mut |leaf_key, choice| {
                if !seen.insert(leaf_key) {
                    dup_pruned += 1;
                    return true;
                }
                if leaves.len() as u64 >= opts.exhaustive_leaf_limit {
                    over_limit = true;
                    return false;
                }
                leaves.push(choice.to_vec());
                true
            },
            &mut bound_pruned,
        );
    }
    if over_limit {
        return Ok(None);
    }
    let pruned = dup_pruned + bound_pruned;

    // Pass 2: one batched prestage over every surviving class, then
    // sequential scoring in enumeration order (ties keep the earlier
    // leaf). Workers only affect the prestage, never the bits.
    let assignments: Vec<Assignment> = leaves.iter().map(|c| inst.to_assignment(c)).collect();
    model.prestage_assignments(inst.profiles, &assignments, opts.workers, cancel)?;
    let mut best: Option<(Score, Vec<usize>)> = None;
    let mut best_power: Option<(f64, Vec<usize>)> = None;
    let mut evaluated = 0u64;
    for (choice, asg) in leaves.iter().zip(&assignments) {
        let metrics = score_assignment(model, inst.profiles, asg, objective, cancel)?;
        evaluated += 1;
        track_best(&mut best, &mut best_power, &metrics, choice);
    }

    // The greedy incumbent competes too (it is always one of the
    // enumerated classes unless the bound pruned its subtree, which can
    // only happen on a tie).
    let greedy_asg = inst.to_assignment(&greedy_choice);
    let metrics = score_assignment(model, inst.profiles, &greedy_asg, objective, cancel)?;
    evaluated += 1;
    track_best(&mut best, &mut best_power, &metrics, &greedy_choice);

    // The greedy incumbent always scores, so `best` is populated.
    let Some((score, choice)) = best else {
        return Err(ModelError::EmptyInput("placements to score"));
    };
    Ok(Some(SearchOutcome { score, choice, evaluated, pruned, best_power }))
}

/// The shared DFS of the exact engine's dry pass. `visit` gets each
/// not-yet-pruned leaf (canonical key + choice vector) and returns
/// `false` to abort the whole walk.
#[allow(clippy::too_many_arguments)]
fn dfs(
    inst: &Instance<'_>,
    k: usize,
    choice: &mut Vec<usize>,
    queues: &mut Vec<Vec<u64>>,
    lens: &mut Vec<usize>,
    max_alone: &mut Vec<f64>,
    incumbent_bound: Option<f64>,
    visit: &mut dyn FnMut(Vec<u64>, &[usize]) -> bool,
    pruned: &mut u64,
) -> bool {
    if k == inst.procs.len() {
        let key = inst.leaf_key(queues);
        return visit(key, choice);
    }
    for core in inst.candidate_cores(queues) {
        let prev_max = max_alone[core];
        choice.push(core);
        queues[core].push(inst.fps[k]);
        lens[core] += 1;
        max_alone[core] = max_alone[core].max(inst.alone_spi[k]);

        let mut cont = true;
        let mut bounded = false;
        if let Some(limit) = incumbent_bound {
            // Strictly-worse subtrees cannot improve on the incumbent;
            // ties are kept so the incumbent stays reachable.
            if inst.makespan_bound(lens, max_alone).total_cmp(&limit) == std::cmp::Ordering::Greater
            {
                *pruned += 1;
                bounded = true;
            }
        }
        if !bounded {
            cont =
                dfs(inst, k + 1, choice, queues, lens, max_alone, incumbent_bound, visit, pruned);
        }

        max_alone[core] = prev_max;
        lens[core] -= 1;
        queues[core].pop();
        choice.pop();
        if !cont {
            return false;
        }
    }
    true
}

/// Greedy construction in canonical process order: each process goes to
/// the core that scores best given everything placed so far.
fn greedy_construct<M: CorePowerModel>(
    model: &CombinedModel<'_, M>,
    inst: &Instance<'_>,
    objective: Objective,
    cancel: &CancelToken,
) -> Result<Vec<usize>, ModelError> {
    let mut choice: Vec<usize> = Vec::with_capacity(inst.procs.len());
    let mut asg = Assignment::new(inst.num_cores);
    for (k, &p) in inst.procs.iter().enumerate() {
        let mut best: Option<(Score, usize)> = None;
        for core in 0..inst.num_cores {
            let cand = asg.try_with_assigned(core, p)?;
            let metrics = score_assignment(model, inst.profiles, &cand, objective, cancel)?;
            let better = match &best {
                None => true,
                Some((s, _)) => metrics.score.better_than(s),
            };
            if better {
                best = Some((metrics.score, core));
            }
        }
        // Instance::new rejected zero-core machines, so a core was found.
        let Some((_, core)) = best else {
            return Err(ModelError::EmptyInput("machine cores"));
        };
        asg.try_assign(core, p)?;
        choice.push(core);
        debug_assert_eq!(choice.len(), k + 1);
    }
    Ok(choice)
}

/// Seeded local search: greedy start plus seeded random restarts, each
/// refined by steepest-descent move/swap neighborhoods. Each round
/// batch-prestages all neighbors (`solve_batch`, plus warm starts from
/// eqcache neighbors when the model enables them) and then scores them
/// in a fixed order.
fn local_search<M: CorePowerModel + Sync>(
    model: &CombinedModel<'_, M>,
    inst: &Instance<'_>,
    objective: Objective,
    opts: &OptimizeOptions,
    cancel: &CancelToken,
) -> Result<SearchOutcome, ModelError> {
    const MAX_ROUNDS: usize = 64;
    let n = inst.procs.len();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.seed);
    let mut best: Option<(Score, Vec<usize>)> = None;
    let mut best_power: Option<(f64, Vec<usize>)> = None;
    let mut evaluated = 0u64;

    for restart in 0..=opts.restarts {
        let mut choice = if restart == 0 {
            greedy_construct(model, inst, objective, cancel)?
        } else {
            (0..n).map(|_| rng.gen_range(0..inst.num_cores)).collect()
        };
        let asg = inst.to_assignment(&choice);
        let start = score_assignment(model, inst.profiles, &asg, objective, cancel)?;
        evaluated += 1;
        let mut current = start.score;
        track_best(&mut best, &mut best_power, &start, &choice);

        for _round in 0..MAX_ROUNDS {
            // Neighborhood: every single-process move, then every pair
            // swap, in a fixed order.
            let mut neighbors: Vec<Vec<usize>> = Vec::new();
            for k in 0..n {
                for core in 0..inst.num_cores {
                    if core == choice[k] {
                        continue;
                    }
                    let mut next = choice.clone();
                    next[k] = core;
                    neighbors.push(next);
                }
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    if choice[a] == choice[b] {
                        continue;
                    }
                    let mut next = choice.clone();
                    next.swap(a, b);
                    neighbors.push(next);
                }
            }
            if neighbors.is_empty() {
                break;
            }
            let assignments: Vec<Assignment> =
                neighbors.iter().map(|c| inst.to_assignment(c)).collect();
            model.prestage_assignments(inst.profiles, &assignments, opts.workers, cancel)?;
            let mut round_best: Option<(Score, usize)> = None;
            for (i, asg) in assignments.iter().enumerate() {
                let metrics = score_assignment(model, inst.profiles, asg, objective, cancel)?;
                evaluated += 1;
                track_best(&mut best, &mut best_power, &metrics, &neighbors[i]);
                let better = match &round_best {
                    None => metrics.score.better_than(&current),
                    Some((s, _)) => metrics.score.better_than(s),
                };
                if better {
                    round_best = Some((metrics.score, i));
                }
            }
            match round_best {
                Some((score, i)) => {
                    choice = neighbors[i].clone();
                    current = score;
                }
                None => break, // local optimum
            }
        }
    }

    // Every restart scores its starting point, so `best` is populated.
    let Some((score, choice)) = best else {
        return Err(ModelError::EmptyInput("placements to score"));
    };
    Ok(SearchOutcome { score, choice, evaluated, pruned: 0, best_power })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureVector;
    use crate::histogram::ReuseHistogram;
    use crate::power::{PowerModel, PowerObservation};
    use crate::spi::SpiModel;
    use cmpsim::machine::MachineConfig;
    use rand::Rng;
    use rand::SeedableRng;

    fn tiny_server() -> MachineConfig {
        MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::four_core_server() }
    }

    fn synthetic_profile(
        name: &str,
        tail: f64,
        api: f64,
        machine: &MachineConfig,
    ) -> ProcessProfile {
        let head = 1.0 - tail;
        let hist =
            ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail)
                .unwrap();
        let alpha = api * (machine.mem_cycles - machine.l2_hit_cycles) as f64 / machine.freq_hz;
        let beta = (machine.cpi_base + api * machine.l2_hit_cycles as f64) / machine.freq_hz;
        let feature = FeatureVector::new(
            name,
            hist,
            api,
            SpiModel::new(alpha, beta).unwrap(),
            machine.l2_assoc(),
        )
        .unwrap();
        ProcessProfile {
            feature,
            l1rpi: 0.35,
            l2rpi: api,
            brpi: 0.2,
            fppi: 0.1,
            processor_alone_w: 60.0,
            idle_processor_w: 44.0,
        }
    }

    fn synthetic_power_model(machine: &MachineConfig) -> PowerModel {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = machine.num_cores() as f64;
        let mut obs = Vec::new();
        for _ in 0..200 {
            let ips = rng.gen_range(1e6..2.4e7);
            let rates = cmpsim::hpc::EventRates {
                ips,
                l1rps: ips * rng.gen_range(0.2..0.5),
                l2rps: ips * rng.gen_range(0.001..0.05),
                l2mps: ips * rng.gen_range(0.0..0.02),
                brps: ips * rng.gen_range(0.05..0.3),
                fpps: ips * rng.gen_range(0.0..0.3),
            };
            let watts = machine.power.core_power(&rates) + machine.power.uncore_w / n;
            obs.push(PowerObservation { rates, core_watts: watts });
        }
        PowerModel::fit_mvlr(&obs).unwrap()
    }

    fn profile_set(machine: &MachineConfig, n: usize) -> Vec<ProcessProfile> {
        let tails = [0.05, 0.12, 0.2, 0.3, 0.4, 0.5, 0.08, 0.25];
        let apis = [0.008, 0.012, 0.02, 0.03, 0.04, 0.015, 0.025, 0.01];
        (0..n)
            .map(|i| {
                synthetic_profile(
                    &format!("p{i}"),
                    tails[i % tails.len()],
                    apis[i % apis.len()],
                    machine,
                )
            })
            .collect()
    }

    #[test]
    fn objective_spec_round_trips() {
        for spec in ["power", "makespan", "capped:55.5"] {
            let o = Objective::from_spec(spec).unwrap();
            assert_eq!(o.spec(), spec);
        }
        assert!(Objective::from_spec("speed").is_err());
        assert!(Objective::from_spec("capped:").is_err());
        assert!(Objective::from_spec("capped:-3").is_err());
        assert!(Objective::from_spec("capped:nan").is_err());
    }

    #[test]
    fn exact_matches_brute_force_on_all_objectives() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 5);
        let processes: Vec<usize> = (0..5).collect();
        let cancel = CancelToken::never();

        // A cap between the min and max power makes capped feasible but
        // non-trivial.
        let cm = CombinedModel::new(&m, &pm);
        let min_p =
            brute_force(&cm, &profiles, &processes, Objective::MinPower, &cancel).unwrap().power_w;
        let cap = min_p + 1.0;

        for objective in
            [Objective::MinPower, Objective::MinMakespan, Objective::PowerCapped { cap_w: cap }]
        {
            let cm = CombinedModel::new(&m, &pm);
            let exact = optimize(
                &cm,
                &profiles,
                &processes,
                objective,
                &OptimizeOptions::default(),
                &cancel,
            )
            .unwrap();
            assert_eq!(exact.method, SearchMethod::Exact, "{objective:?}");
            let cm2 = CombinedModel::new(&m, &pm);
            let brute = brute_force(&cm2, &profiles, &processes, objective, &cancel).unwrap();
            let (a, b) = match objective {
                Objective::MinPower => (exact.power_w, brute.power_w),
                _ => (exact.makespan, brute.makespan),
            };
            assert_eq!(a.to_bits(), b.to_bits(), "{objective:?}: exact {a} vs brute {b}");
            assert!(
                exact.evaluated < brute.evaluated,
                "{objective:?}: symmetry pruning should shrink the search \
                 ({} vs {})",
                exact.evaluated,
                brute.evaluated
            );
            assert_eq!(exact.assignment.num_processes(), processes.len());
        }
    }

    #[test]
    fn infeasible_cap_is_typed_with_diagnostic() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 4);
        let processes: Vec<usize> = (0..4).collect();
        let cm = CombinedModel::new(&m, &pm);
        let err = optimize(
            &cm,
            &profiles,
            &processes,
            Objective::PowerCapped { cap_w: 1.0 },
            &OptimizeOptions::default(),
            &CancelToken::never(),
        )
        .unwrap_err();
        match err {
            ModelError::InfeasiblePowerCap { cap_w, best_power_w, best_placement } => {
                assert_eq!(cap_w, 1.0);
                assert!(best_power_w > 1.0);
                let placed: usize = best_placement.iter().map(Vec::len).sum();
                assert_eq!(placed, 4, "diagnostic must carry a complete placement");
                // The diagnostic really is the least-power placement.
                let best = optimize(
                    &cm,
                    &profiles,
                    &processes,
                    Objective::MinPower,
                    &OptimizeOptions::default(),
                    &CancelToken::never(),
                )
                .unwrap();
                assert_eq!(best.power_w.to_bits(), best_power_w.to_bits());
            }
            other => panic!("expected InfeasiblePowerCap, got {other:?}"),
        }
    }

    #[test]
    fn local_search_is_valid_and_not_worse_than_random() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 6);
        let processes: Vec<usize> = (0..6).collect();
        let cm = CombinedModel::new(&m, &pm);
        let cancel = CancelToken::never();
        let opts = OptimizeOptions { exhaustive_leaf_limit: 0, restarts: 1, ..Default::default() };
        let got =
            optimize(&cm, &profiles, &processes, Objective::MinPower, &opts, &cancel).unwrap();
        assert_eq!(got.method, SearchMethod::LocalSearch);
        assert_eq!(got.assignment.num_processes(), 6);
        assert_eq!(got.assignment.num_cores(), m.num_cores());

        // Never worse than a seeded random placement.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.seed);
        let mut random = Assignment::new(m.num_cores());
        for &p in &processes {
            random.assign(rng.gen_range(0..m.num_cores()), p);
        }
        let random_power = cm.estimate_processor_power(&profiles, &random).unwrap();
        assert!(
            got.power_w <= random_power,
            "local search {} worse than random {}",
            got.power_w,
            random_power
        );
    }

    #[test]
    fn local_search_matches_exact_on_small_instance() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 4);
        let processes: Vec<usize> = (0..4).collect();
        let cm = CombinedModel::new(&m, &pm);
        let cancel = CancelToken::never();
        let exact = optimize(
            &cm,
            &profiles,
            &processes,
            Objective::MinPower,
            &OptimizeOptions::default(),
            &cancel,
        )
        .unwrap();
        let opts = OptimizeOptions { exhaustive_leaf_limit: 0, restarts: 2, ..Default::default() };
        let local =
            optimize(&cm, &profiles, &processes, Objective::MinPower, &opts, &cancel).unwrap();
        assert!(local.power_w >= exact.power_w, "local search cannot beat the true optimum");
        assert!(
            (local.power_w - exact.power_w) / exact.power_w < 0.05,
            "local search should land near the optimum: {} vs {}",
            local.power_w,
            exact.power_w
        );
    }

    #[test]
    fn validation_errors_are_typed() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 2);
        let cm = CombinedModel::new(&m, &pm);
        let cancel = CancelToken::never();
        let opts = OptimizeOptions::default();
        assert!(matches!(
            optimize(&cm, &profiles, &[], Objective::MinPower, &opts, &cancel),
            Err(ModelError::EmptyInput(_))
        ));
        assert!(matches!(
            optimize(&cm, &profiles, &[7], Objective::MinPower, &opts, &cancel),
            Err(ModelError::InvalidAssignment(_))
        ));
    }

    #[test]
    fn duplicate_profiles_are_separate_processes() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 2);
        let cm = CombinedModel::new(&m, &pm);
        let got = optimize(
            &cm,
            &profiles,
            &[0, 0, 1],
            Objective::MinPower,
            &OptimizeOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(got.assignment.num_processes(), 3);
    }

    #[test]
    fn degraded_greedy_places_everything_and_tags_source() {
        let m = tiny_server();
        let pm = synthetic_power_model(&m);
        let profiles = profile_set(&m, 4);
        let cm = CombinedModel::new(&m, &pm);
        // Cold cache: everything must come from the proportional tier.
        let (asg, est) = greedy_min_power_degraded(&cm, &profiles, &[0, 1, 2, 3]).unwrap();
        assert_eq!(asg.num_processes(), 4);
        assert!(est.power_w.is_finite());
        assert_eq!(est.source, DegradedSource::ProportionalSplit);
    }
}
