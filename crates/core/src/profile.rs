//! Automated performance profiling with the stressmark (paper §3.4).
//!
//! To characterize a process without simulating every co-run, the paper
//! pairs it with a stressmark of tunable footprint on a cache-sharing
//! core. In the `i`-th run the stressmark defends `i` ways, pushing the
//! process into `A - i` ways; recording the process's MPA in each run
//! tabulates its MPA curve, whose finite differences are the
//! reuse-distance histogram (Eq. 8). One additional solo run yields the
//! API and anchors `MPA(A)`; regressing SPI on MPA across all runs gives
//! the Eq. 3 coefficients. The result is the process's
//! [`FeatureVector`].

use crate::feature::FeatureVector;
use crate::histogram::ReuseHistogram;
use crate::spi::SpiModel;
use crate::ModelError;
use cmpsim::engine::{simulate, Placement, SimOptions, SimResult};
use cmpsim::machine::MachineConfig;
use cmpsim::process::ProcessSpec;
use workloads::spec::WorkloadParams;
use workloads::stressmark::Stressmark;

/// How the profiler anchors MPA samples to effective cache sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Anchoring {
    /// Anchor at the occupancy the process actually achieved
    /// (time-averaged ways per set). This is the simulator-equivalent of
    /// the paper's "we tune S_stress,i to control S_B,i" and the default.
    #[default]
    Measured,
    /// Anchor at the nominal size `A - s_stress` — the paper's §3.4
    /// simplifying assumption that the stressmark holds its footprint
    /// perfectly. Kept for the ablation study.
    Nominal,
}

/// Options controlling profiling runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileOptions {
    /// Duration of each co-run (scaled seconds).
    pub duration_s: f64,
    /// Warmup excluded from statistics.
    pub warmup_s: f64,
    /// Master seed (each run derives its own).
    pub seed: u64,
    /// MPA-sample anchoring strategy.
    pub anchoring: Anchoring,
    /// Worker threads for the stressmark fan-out and batch profiling
    /// (`0` = auto, see [`mathkit::parallel::resolve_workers`]). Every
    /// run's seed depends only on the master seed and the run's identity,
    /// so results are bit-identical for any worker count.
    pub workers: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            duration_s: 1.0,
            warmup_s: 0.35,
            seed: 0xBEEF,
            anchoring: Anchoring::Measured,
            workers: 0,
        }
    }
}

/// The §5 profiling vector: everything the *combined* model needs about a
/// process, gathered in the same profiling pass.
#[derive(Debug, Clone)]
pub struct ProcessProfile {
    /// The performance-model feature vector.
    pub feature: FeatureVector,
    /// L1 references per instruction (input-fixed process property).
    pub l1rpi: f64,
    /// L2 references per instruction.
    pub l2rpi: f64,
    /// Branches per instruction.
    pub brpi: f64,
    /// FP operations per instruction.
    pub fppi: f64,
    /// Measured processor power when the process runs alone (W).
    pub processor_alone_w: f64,
    /// Measured processor power with every core idle (W).
    pub idle_processor_w: f64,
}

impl ProcessProfile {
    /// The process's power in *core* space: its measured increment over
    /// the idle processor, re-based onto the model's per-core idle power
    /// `idle_core_w` (the MVLR intercept). This is the `P_{K,alone}` used
    /// by scenario (1) of the Fig. 1 algorithm.
    pub fn core_power_alone(&self, idle_core_w: f64) -> f64 {
        self.processor_alone_w - self.idle_processor_w + idle_core_w
    }
}

/// The stressmark-driven profiler.
///
/// # Examples
///
/// ```no_run
/// use mpmc_model::profile::Profiler;
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let profiler = Profiler::new(MachineConfig::four_core_server());
/// let fv = profiler.profile(&SpecWorkload::Gzip.params())?;
/// assert_eq!(fv.assoc(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    machine: MachineConfig,
    opts: ProfileOptions,
}

impl Profiler {
    /// Creates a profiler for `machine` with default options.
    pub fn new(machine: MachineConfig) -> Self {
        Profiler { machine, opts: ProfileOptions::default() }
    }

    /// Overrides the profiling options (builder style).
    pub fn with_options(mut self, opts: ProfileOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The machine this profiler targets.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Profiles a workload into its performance [`FeatureVector`]:
    /// one solo run plus `A - 1` stressmark co-runs.
    ///
    /// # Errors
    ///
    /// - Simulation errors from the underlying engine.
    /// - [`ModelError::UnusableProfile`] if the workload never accessed
    ///   the L2 during the solo run.
    /// - Histogram/regression errors if the measurements are degenerate.
    pub fn profile(&self, params: &WorkloadParams) -> Result<FeatureVector, ModelError> {
        let (fv, _) = self.profile_runs(params)?;
        Ok(fv)
    }

    /// Profiles a workload into the full §5 [`ProcessProfile`] (feature
    /// vector + instruction-related event rates + alone/idle power).
    ///
    /// # Errors
    ///
    /// As for [`Profiler::profile`].
    pub fn profile_full(&self, params: &WorkloadParams) -> Result<ProcessProfile, ModelError> {
        let (feature, solo) = self.profile_runs(params)?;
        let p = &solo.processes[0];
        let idle = simulate(
            &self.machine,
            Placement::idle(self.machine.num_cores()),
            SimOptions {
                duration_s: self.opts.duration_s,
                warmup_s: self.opts.warmup_s,
                seed: self.opts.seed ^ 0x1D1E,
                ..Default::default()
            },
        )?;
        Ok(ProcessProfile {
            l1rpi: p.l1rpi(),
            l2rpi: p.l2rpi(),
            brpi: p.brpi(),
            fppi: p.fppi(),
            processor_alone_w: solo.avg_measured_power(),
            idle_processor_w: idle.avg_measured_power(),
            feature,
        })
    }

    /// Profiles a whole suite, one [`FeatureVector`] per workload, fanning
    /// the workloads out across `opts.workers` threads. Each workload is
    /// profiled exactly as [`Profiler::profile`] would (same seeds, which
    /// do not depend on batch position), so the output is bit-identical
    /// to a sequential loop for any worker count. Inside the batch each
    /// per-workload stressmark sweep runs sequentially to keep the thread
    /// count bounded by `opts.workers`.
    ///
    /// # Errors
    ///
    /// The error of the first (lowest-index) failing workload, as a
    /// sequential loop would report.
    pub fn profile_batch(
        &self,
        suite: &[WorkloadParams],
    ) -> Result<Vec<FeatureVector>, ModelError> {
        let inner = self.sequential_inner();
        mathkit::parallel::try_par_map(
            (0..suite.len()).collect::<Vec<usize>>(),
            self.opts.workers,
            |_, i| inner.profile(&suite[i]),
        )
    }

    /// Batch variant of [`Profiler::profile_full`]; same determinism and
    /// error contract as [`Profiler::profile_batch`].
    ///
    /// # Errors
    ///
    /// The error of the first (lowest-index) failing workload.
    pub fn profile_full_batch(
        &self,
        suite: &[WorkloadParams],
    ) -> Result<Vec<ProcessProfile>, ModelError> {
        let inner = self.sequential_inner();
        mathkit::parallel::try_par_map(
            (0..suite.len()).collect::<Vec<usize>>(),
            self.opts.workers,
            |_, i| inner.profile_full(&suite[i]),
        )
    }

    /// A copy of this profiler whose per-workload sweep runs on one
    /// thread, used inside batch fan-outs to avoid nested thread growth.
    fn sequential_inner(&self) -> Profiler {
        let mut inner = self.clone();
        inner.opts.workers = 1;
        inner
    }

    /// Shared implementation: returns the feature vector and the solo-run
    /// result (for the power-profile fields).
    fn profile_runs(
        &self,
        params: &WorkloadParams,
    ) -> Result<(FeatureVector, SimResult), ModelError> {
        let a = self.machine.l2_assoc();
        let num_sets = self.machine.l2_sets;

        // Solo run: API, MPA(A), SPI at the largest effective size.
        let solo = self.run_pair(params, None, 0)?;
        let stats = &solo.processes[0];
        if stats.counters.l2_refs == 0 {
            return Err(ModelError::UnusableProfile(format!(
                "workload '{}' issued no L2 accesses during the solo run",
                params.name
            )));
        }
        let api = stats.api();

        // Stressmark sweeps: in the i-th run the stressmark defends `i`
        // ways, nominally leaving `A - i` to the process. The paper "tunes
        // S_stress to control S_B"; the simulator-equivalent of that
        // control is to *measure* the occupancy the process actually
        // achieved (time-averaged ways per set) and anchor the MPA sample
        // there, which removes the systematic error of assuming the
        // stressmark holds its footprint perfectly.
        let solo_anchor = match self.opts.anchoring {
            Anchoring::Measured => stats.avg_ways,
            Anchoring::Nominal => a as f64,
        };
        // Each co-run's seed is salted by `s_stress` alone, so the runs
        // are independent of execution order and the fan-out below is
        // bit-identical to the old sequential loop for any worker count.
        let mut points: Vec<(f64, f64)> = vec![(solo_anchor, stats.mpa())];
        let mut spi_points: Vec<(f64, f64)> = vec![(stats.mpa(), stats.spi())];
        let runs = mathkit::parallel::try_par_map(
            (1..a).collect::<Vec<usize>>(),
            self.opts.workers,
            |_, s_stress| self.run_pair(params, Some(s_stress), s_stress as u64),
        )?;
        for (s_stress, run) in (1..a).zip(runs) {
            let p = &run.processes[0];
            let anchor = match self.opts.anchoring {
                Anchoring::Measured => p.avg_ways,
                Anchoring::Nominal => (a - s_stress) as f64,
            };
            points.push((anchor, p.mpa()));
            spi_points.push((p.mpa(), p.spi()));
            let _ = num_sets;
        }

        // Assemble the measured MPA(S) curve: anchored at (0, 1) by
        // definition, sorted and deduplicated in S, clipped to be
        // non-increasing (noise would otherwise become negative histogram
        // mass in Eq. 8), then resampled at integer sizes 0..=A.
        points.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut xs = vec![0.0];
        let mut ys = vec![1.0];
        for &(s, m) in &points {
            if s <= xs.last().copied().unwrap_or(0.0) + 1e-6 {
                continue;
            }
            let clipped = m.min(ys.last().copied().unwrap_or(1.0));
            xs.push(s);
            ys.push(clipped);
        }
        if xs.len() < 2 {
            return Err(ModelError::UnusableProfile(format!(
                "workload '{}' produced no usable occupancy points",
                params.name
            )));
        }
        let curve = mathkit::interp::PiecewiseLinear::new(xs, ys)?;
        let mpa_at: Vec<f64> = (0..=a).map(|s| curve.eval(s as f64)).collect();

        let hist = ReuseHistogram::from_mpa_curve(&mpa_at)?;
        let spi = SpiModel::fit(&spi_points)?;
        let feature = FeatureVector::new(params.name, hist, api, spi, a)?;
        Ok((feature, solo))
    }

    /// Runs the workload on core 0, optionally with a stressmark of
    /// `stress_ways` on core 1 (they share die 0's cache in every preset).
    fn run_pair(
        &self,
        params: &WorkloadParams,
        stress_ways: Option<usize>,
        salt: u64,
    ) -> Result<SimResult, ModelError> {
        let mut placement = Placement::idle(self.machine.num_cores());
        placement.assign(
            0,
            ProcessSpec::new(params.name, Box::new(params.generator(self.machine.l2_sets, 1))),
        )?;
        if let Some(s) = stress_ways {
            placement.assign(
                1,
                ProcessSpec::new(
                    format!("stress{s}"),
                    Box::new(Stressmark::new(s, self.machine.l2_sets, 2)),
                ),
            )?;
        }
        Ok(simulate(
            &self.machine,
            placement,
            SimOptions {
                duration_s: self.opts.duration_s,
                warmup_s: self.opts.warmup_s,
                seed: self.opts.seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9)),
                ..Default::default()
            },
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::SpecWorkload;

    /// A small, fast machine for unit tests: same physics, fewer sets.
    fn tiny_machine() -> MachineConfig {
        MachineConfig { l2_sets: 64, l2_assoc: 8, ..MachineConfig::two_core_workstation() }
    }

    fn fast_profiler() -> Profiler {
        Profiler::new(tiny_machine()).with_options(ProfileOptions {
            duration_s: 0.35,
            warmup_s: 0.12,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn profiles_a_cache_friendly_workload() {
        let fv = fast_profiler().profile(&SpecWorkload::Gzip.params()).unwrap();
        assert_eq!(fv.name(), "gzip");
        // gzip's reuse is shallow: most mass within a few ways.
        assert!(fv.mpa(4.0) < 0.25, "mpa(4) = {}", fv.mpa(4.0));
        // API should be near the generator's target.
        assert!((fv.api() - 0.004).abs() < 0.001, "api {}", fv.api());
    }

    #[test]
    fn profiled_mpa_tracks_ground_truth() {
        let params = SpecWorkload::Vpr.params();
        let fv = fast_profiler().profile(&params).unwrap();
        for s in 2..=8usize {
            let truth = params.pattern.true_mpa(s);
            let got = fv.mpa(s as f64);
            assert!((got - truth).abs() < 0.1, "s={s}: profiled {got:.3} vs truth {truth:.3}");
        }
    }

    #[test]
    fn profiled_spi_model_is_physical() {
        let fv = fast_profiler().profile(&SpecWorkload::Mcf.params()).unwrap();
        let m = tiny_machine();
        // beta should be near the timing model's miss-free SPI.
        let api = fv.api();
        let beta_expect = (m.cpi_base + api * m.l2_hit_cycles as f64) / m.freq_hz;
        let alpha_expect = api * (m.mem_cycles - m.l2_hit_cycles) as f64 / m.freq_hz;
        assert!(
            (fv.spi_model().beta() - beta_expect).abs() < 0.5 * beta_expect,
            "beta {} vs {}",
            fv.spi_model().beta(),
            beta_expect
        );
        assert!(
            (fv.spi_model().alpha() - alpha_expect).abs() < 0.3 * alpha_expect,
            "alpha {} vs {}",
            fv.spi_model().alpha(),
            alpha_expect
        );
    }

    #[test]
    fn full_profile_has_power_fields() {
        let pp = fast_profiler().profile_full(&SpecWorkload::Twolf.params()).unwrap();
        assert!(pp.processor_alone_w > pp.idle_processor_w, "busy must beat idle");
        assert!(pp.l1rpi > 0.1);
        assert!((pp.l2rpi - pp.feature.api()).abs() < 1e-9);
        assert!(pp.brpi > 0.0);
        // Core-space alone power re-bases onto the intercept.
        let core = pp.core_power_alone(5.0);
        assert!((core - (pp.processor_alone_w - pp.idle_processor_w + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_mass_is_normalized() {
        let fv = fast_profiler().profile(&SpecWorkload::Art.params()).unwrap();
        let total: f64 = fv.histogram().probs().iter().sum::<f64>() + fv.histogram().p_inf();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
