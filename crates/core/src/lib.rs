//! Core modeling framework of *Performance and Power Modeling in a
//! Multi-Programmed Multi-Core Environment* (Chen, Xu, Dick, Mao —
//! DAC 2010).
//!
//! Three models, as in the paper:
//!
//! 1. **Performance model** (§3): [`histogram`], [`spi`], [`occupancy`],
//!    [`equilibrium`], [`feature`], [`perf`] — predict effective cache
//!    sizes, miss ratios, and throughput of co-scheduled processes from
//!    per-process profiles only.
//! 2. **Power model** (§4): [`power`] (Eq. 9 via MVLR, plus the NN
//!    comparator) and [`sharing`] (time sharing, Eq. 10).
//! 3. **Combined model** (§5): [`assignment`] — power estimation for a
//!    tentative process-to-core mapping before it runs (Fig. 1, Eq. 11).
//!
//! Profiling lives in [`profile`]: the stressmark-driven feature-vector
//! extraction of §3.4, executed on the `cmpsim` substrate. Profiles can
//! be saved and reloaded through [`persist`] so the expensive profiling
//! pass runs once per process.
//!
//! # Examples
//!
//! Predict the slowdown of two processes sharing a 16-way cache:
//!
//! ```
//! use mpmc_model::feature::FeatureVector;
//! use mpmc_model::perf::PerformanceModel;
//! use cmpsim::machine::MachineConfig;
//! use workloads::spec::SpecWorkload;
//!
//! # fn main() -> Result<(), mpmc_model::ModelError> {
//! let machine = MachineConfig::four_core_server();
//! let mcf = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &machine)?;
//! let gzip = FeatureVector::from_workload(&SpecWorkload::Gzip.params(), &machine)?;
//! let pred = PerformanceModel::new(16).predict(&[mcf, gzip])?;
//! assert!(pred[0].ways + pred[1].ways <= 16.0 + 1e-6);
//! # Ok(())
//! # }
//! ```

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]
// Library code must surface failures as `ModelError`, not panic; tests
// may still unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod assignment;
pub mod crosscheck;
pub mod eqcache;
pub mod equilibrium;
pub mod feature;
pub mod histogram;
pub mod occupancy;
pub mod optimize;
pub mod perf;
pub mod persist;
pub mod power;
pub mod profile;
pub mod sharing;
pub mod spi;
pub mod validate;

mod error;

pub use error::ModelError;
