use std::fmt;

/// Error type for the modeling framework.
#[derive(Debug)]
pub enum ModelError {
    /// A numerical routine failed.
    Math(mathkit::MathError),
    /// A simulation used during profiling failed.
    Sim(cmpsim::engine::SimError),
    /// An input collection was empty where at least one element is needed.
    EmptyInput(&'static str),
    /// A probability or probability-like quantity was outside `[0, 1]`
    /// or a histogram failed to normalize.
    InvalidDistribution(String),
    /// The equilibrium system could not be solved.
    EquilibriumFailed(String),
    /// An assignment referenced a process or core that does not exist.
    InvalidAssignment(String),
    /// Profiling produced data the model cannot use (e.g. a process that
    /// never accessed the L2).
    UnusableProfile(String),
    /// An input carried NaN or infinity where a finite value is required.
    NonFinite(String),
    /// A result was produced by a degraded fallback path and the caller
    /// asked (strict mode) for degradation to be treated as failure.
    Degraded(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Math(e) => write!(f, "numerical error: {e}"),
            ModelError::Sim(e) => write!(f, "simulation error: {e}"),
            ModelError::EmptyInput(what) => write!(f, "empty input: {what}"),
            ModelError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            ModelError::EquilibriumFailed(msg) => write!(f, "equilibrium solve failed: {msg}"),
            ModelError::InvalidAssignment(msg) => write!(f, "invalid assignment: {msg}"),
            ModelError::UnusableProfile(msg) => write!(f, "unusable profile: {msg}"),
            ModelError::NonFinite(msg) => write!(f, "non-finite input: {msg}"),
            ModelError::Degraded(msg) => write!(f, "degraded result rejected: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Math(e) => Some(e),
            ModelError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mathkit::MathError> for ModelError {
    fn from(e: mathkit::MathError) -> Self {
        ModelError::Math(e)
    }
}

impl From<cmpsim::engine::SimError> for ModelError {
    fn from(e: cmpsim::engine::SimError) -> Self {
        ModelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = ModelError::from(mathkit::MathError::Singular);
        assert!(e.to_string().contains("numerical"));
        assert!(e.source().is_some());
        let e = ModelError::EmptyInput("processes");
        assert!(e.to_string().contains("processes"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ModelError>();
    }
}
