use std::fmt;

/// Error type for the modeling framework.
#[derive(Debug)]
pub enum ModelError {
    /// A numerical routine failed.
    Math(mathkit::MathError),
    /// A simulation used during profiling failed.
    Sim(cmpsim::engine::SimError),
    /// An input collection was empty where at least one element is needed.
    EmptyInput(&'static str),
    /// A probability or probability-like quantity was outside `[0, 1]`
    /// or a histogram failed to normalize.
    InvalidDistribution(String),
    /// The equilibrium system could not be solved.
    EquilibriumFailed(String),
    /// An assignment referenced a process or core that does not exist.
    InvalidAssignment(String),
    /// A core index was outside the machine (typed so wire-facing layers
    /// can reject it as an input error instead of panicking on it).
    InvalidCore {
        /// The offending core index.
        core: usize,
        /// How many cores the assignment/machine actually has.
        num_cores: usize,
    },
    /// No placement satisfied a requested power cap. Carries the
    /// least-power placement the optimizer found (per-core profile
    /// indices) as a diagnostic so callers can report how far off the
    /// cap was — a solver-domain outcome, not an input error.
    InfeasiblePowerCap {
        /// The requested cap in watts.
        cap_w: f64,
        /// Estimated power of the best (least-power) placement found.
        best_power_w: f64,
        /// That placement, as per-core profile-index queues.
        best_placement: Vec<Vec<usize>>,
    },
    /// Profiling produced data the model cannot use (e.g. a process that
    /// never accessed the L2).
    UnusableProfile(String),
    /// An input carried NaN or infinity where a finite value is required.
    NonFinite(String),
    /// A result was produced by a degraded fallback path and the caller
    /// asked (strict mode) for degradation to be treated as failure.
    Degraded(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Math(e) => write!(f, "numerical error: {e}"),
            ModelError::Sim(e) => write!(f, "simulation error: {e}"),
            ModelError::EmptyInput(what) => write!(f, "empty input: {what}"),
            ModelError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            ModelError::EquilibriumFailed(msg) => write!(f, "equilibrium solve failed: {msg}"),
            ModelError::InvalidAssignment(msg) => write!(f, "invalid assignment: {msg}"),
            ModelError::InvalidCore { core, num_cores } => {
                write!(f, "core {core} out of range: machine has {num_cores} cores")
            }
            ModelError::InfeasiblePowerCap { cap_w, best_power_w, best_placement } => write!(
                f,
                "power cap {cap_w} W is infeasible: best placement found needs \
                 {best_power_w} W ({best_placement:?})"
            ),
            ModelError::UnusableProfile(msg) => write!(f, "unusable profile: {msg}"),
            ModelError::NonFinite(msg) => write!(f, "non-finite input: {msg}"),
            ModelError::Degraded(msg) => write!(f, "degraded result rejected: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Math(e) => Some(e),
            ModelError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mathkit::MathError> for ModelError {
    fn from(e: mathkit::MathError) -> Self {
        ModelError::Math(e)
    }
}

impl From<cmpsim::engine::SimError> for ModelError {
    fn from(e: cmpsim::engine::SimError) -> Self {
        ModelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = ModelError::from(mathkit::MathError::Singular);
        assert!(e.to_string().contains("numerical"));
        assert!(e.source().is_some());
        let e = ModelError::EmptyInput("processes");
        assert!(e.to_string().contains("processes"));
        assert!(e.source().is_none());
    }

    #[test]
    fn invalid_core_and_infeasible_cap_display() {
        let e = ModelError::InvalidCore { core: 7, num_cores: 4 };
        assert!(e.to_string().contains("core 7"));
        assert!(e.to_string().contains("4 cores"));
        assert!(e.source().is_none());
        let e = ModelError::InfeasiblePowerCap {
            cap_w: 50.0,
            best_power_w: 61.5,
            best_placement: vec![vec![0], vec![1]],
        };
        let msg = e.to_string();
        assert!(msg.contains("50"), "{msg}");
        assert!(msg.contains("61.5"), "{msg}");
        assert!(msg.contains("infeasible"), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ModelError>();
    }
}
