//! The user-facing performance model (paper §3).
//!
//! [`PerformanceModel`] wraps the equilibrium solver into the prediction
//! interface the paper describes: given the feature vectors of processes
//! assigned to cores sharing one last-level cache, predict each process's
//! effective cache size, MPA, and SPI *before running them together*.

use crate::equilibrium::{self, Equilibrium, SolveOptions};
use crate::feature::FeatureVector;
use crate::ModelError;
use mathkit::sync::CancelToken;

/// Which equilibrium solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Guaranteed-convergent nested bisection (default).
    #[default]
    Bisection,
    /// Newton–Raphson, the paper's named method.
    Newton,
    /// The staged fallback chain ([`equilibrium::solve_robust`]): Newton,
    /// perturbed restarts, bounded fixed point, heuristic split. Never
    /// fails on solver trouble; check
    /// [`Equilibrium::diagnostics`] for degradation.
    Robust,
}

/// Prediction for one process in a co-scheduled set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessPrediction {
    /// Effective cache size in ways.
    pub ways: f64,
    /// Misses per L2 access.
    pub mpa: f64,
    /// Seconds per instruction.
    pub spi: f64,
    /// L2 accesses per second.
    pub aps: f64,
}

/// The performance model for one shared cache.
///
/// # Examples
///
/// ```
/// use mpmc_model::perf::PerformanceModel;
/// use mpmc_model::feature::FeatureVector;
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let m = MachineConfig::four_core_server();
/// let model = PerformanceModel::new(m.l2_assoc());
/// let mcf = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &m)?;
/// let art = FeatureVector::from_workload(&SpecWorkload::Art.params(), &m)?;
/// let pred = model.predict(&[mcf, art])?;
/// assert!(pred[0].spi > 0.0 && pred[1].mpa > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PerformanceModel {
    assoc: usize,
    solver: SolverKind,
}

impl PerformanceModel {
    /// Creates a model for an `assoc`-way shared cache using the default
    /// solver.
    pub fn new(assoc: usize) -> Self {
        PerformanceModel { assoc, solver: SolverKind::Bisection }
    }

    /// Selects the equilibrium solver (builder style).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// The cache associativity this model targets.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Predicts the steady state of `features` sharing the cache. Accepts
    /// owned or borrowed feature vectors.
    ///
    /// # Errors
    ///
    /// Propagates equilibrium-solver errors (empty input, associativity
    /// mismatch, non-convergence).
    pub fn predict<F: AsRef<FeatureVector>>(
        &self,
        features: &[F],
    ) -> Result<Vec<ProcessPrediction>, ModelError> {
        let eq = self.solve(features)?;
        Ok((0..eq.sizes.len())
            .map(|i| ProcessPrediction {
                ways: eq.sizes[i],
                mpa: eq.mpas[i],
                spi: eq.spis[i],
                aps: eq.apss[i],
            })
            .collect())
    }

    /// Like [`PerformanceModel::predict`] but exposes the full
    /// [`Equilibrium`] (window, feasibility flag) for callers that need
    /// the intermediates.
    ///
    /// # Errors
    ///
    /// Propagates equilibrium-solver errors.
    pub fn solve<F: AsRef<FeatureVector>>(
        &self,
        features: &[F],
    ) -> Result<Equilibrium, ModelError> {
        self.solve_cancellable(features, &CancelToken::never())
    }

    /// [`PerformanceModel::solve`] with a cooperative cancellation token
    /// threaded into the selected solver's iteration loops. Bit-identical
    /// to [`PerformanceModel::solve`] under a never-firing token.
    ///
    /// # Errors
    ///
    /// Everything [`PerformanceModel::solve`] returns, plus
    /// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
    /// the token fires.
    pub fn solve_cancellable<F: AsRef<FeatureVector>>(
        &self,
        features: &[F],
        cancel: &CancelToken,
    ) -> Result<Equilibrium, ModelError> {
        let refs: Vec<&FeatureVector> = features.iter().map(|f| f.as_ref()).collect();
        match self.solver {
            SolverKind::Bisection => equilibrium::solve_cancellable(&refs, self.assoc, cancel),
            SolverKind::Newton => equilibrium::solve_newton_cancellable(&refs, self.assoc, cancel),
            SolverKind::Robust => equilibrium::solve_robust_cancellable(
                &refs,
                self.assoc,
                &SolveOptions::default(),
                cancel,
            ),
        }
    }

    /// Solves many co-run sets in one pass with the configured solver,
    /// amortizing scratch allocations and fanning chunks out over
    /// `workers` threads (`0` = auto). Each set's result is bit-identical
    /// to a standalone [`PerformanceModel::solve`] of the same features.
    ///
    /// # Errors
    ///
    /// The first per-set error in set order, if any (the configured
    /// solver's usual errors apply per set).
    pub fn solve_batch_cancellable(
        &self,
        sets: &[equilibrium::CorunSet<'_>],
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<Equilibrium>, ModelError> {
        let mut out = Vec::with_capacity(sets.len());
        for res in self.solve_batch_results(sets, workers, cancel) {
            out.push(res?);
        }
        Ok(out)
    }

    /// Batch solve returning one `Result` per set, so callers that can
    /// tolerate individual failures (the estimate prestage) keep going.
    pub(crate) fn solve_batch_results(
        &self,
        sets: &[equilibrium::CorunSet<'_>],
        workers: usize,
        cancel: &CancelToken,
    ) -> Vec<Result<Equilibrium, ModelError>> {
        let strategy = match self.solver {
            SolverKind::Bisection => equilibrium::BatchStrategy::Bisection,
            SolverKind::Newton => equilibrium::BatchStrategy::Newton,
            SolverKind::Robust => equilibrium::BatchStrategy::Robust(SolveOptions::default()),
        };
        equilibrium::solve_batch_results(sets, self.assoc, strategy, workers, cancel)
    }
}

impl AsRef<FeatureVector> for FeatureVector {
    fn as_ref(&self) -> &FeatureVector {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::machine::MachineConfig;
    use workloads::spec::SpecWorkload;

    fn fv(w: SpecWorkload) -> FeatureVector {
        FeatureVector::from_workload(&w.params(), &MachineConfig::four_core_server()).unwrap()
    }

    #[test]
    fn predict_matches_solve() {
        let model = PerformanceModel::new(16);
        let feats = vec![fv(SpecWorkload::Mcf), fv(SpecWorkload::Gzip)];
        let pred = model.predict(&feats).unwrap();
        let eq = model.solve(&feats).unwrap();
        assert_eq!(pred.len(), 2);
        assert_eq!(pred[0].ways, eq.sizes[0]);
        assert_eq!(pred[1].spi, eq.spis[1]);
    }

    #[test]
    fn solver_kinds_agree() {
        let feats = vec![fv(SpecWorkload::Art), fv(SpecWorkload::Twolf)];
        let b = PerformanceModel::new(16).predict(&feats).unwrap();
        let n = PerformanceModel::new(16).with_solver(SolverKind::Newton).predict(&feats).unwrap();
        let r = PerformanceModel::new(16).with_solver(SolverKind::Robust).predict(&feats).unwrap();
        assert!((b[0].ways - n[0].ways).abs() < 0.05);
        assert!((b[1].mpa - n[1].mpa).abs() < 0.01);
        assert!((b[0].ways - r[0].ways).abs() < 0.05);
        assert!((b[1].mpa - r[1].mpa).abs() < 0.01);
    }

    #[test]
    fn accepts_references() {
        let a = fv(SpecWorkload::Vpr);
        let b = fv(SpecWorkload::Bzip2);
        let model = PerformanceModel::new(16);
        let pred = model.predict(&[&a, &b]).unwrap();
        assert_eq!(pred.len(), 2);
    }

    #[test]
    fn assoc_accessor() {
        assert_eq!(PerformanceModel::new(12).assoc(), 12);
    }

    #[test]
    fn batch_matches_sequential_for_every_solver() {
        use crate::equilibrium::CorunSet;
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let c = fv(SpecWorkload::Art);
        let d = fv(SpecWorkload::Twolf);
        let sets = vec![
            CorunSet { features: vec![&a, &b] },
            CorunSet { features: vec![&c, &d] },
            CorunSet { features: vec![&a, &b] }, // duplicate: solved once, cloned
            CorunSet { features: vec![&a, &c, &d] },
        ];
        for kind in [SolverKind::Bisection, SolverKind::Newton, SolverKind::Robust] {
            let model = PerformanceModel::new(16).with_solver(kind);
            let batch = model
                .solve_batch_cancellable(&sets, 2, &CancelToken::never())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            for (set, got) in sets.iter().zip(&batch) {
                let solo = model.solve(&set.features).unwrap();
                assert_eq!(solo.sizes.len(), got.sizes.len(), "{kind:?}");
                for (x, y) in solo.sizes.iter().zip(&got.sizes) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind:?}");
                }
                assert_eq!(solo.window.to_bits(), got.window.to_bits(), "{kind:?}");
            }
        }
    }
}
