//! Validation and sanitization of solver-reachable inputs.
//!
//! Everything the pipeline consumes from outside — persisted profiles,
//! measured histograms, hand-edited feature files — passes through here
//! before it can reach a numerical routine. Each check returns a typed
//! [`ModelError`] instead of letting a NaN propagate into a solver or a
//! panic surface in library code.
//!
//! The checks mirror the physical invariants of the paper's model:
//! histogram mass is a probability distribution (non-negative, sums to 1),
//! MPA curves are miss *ratios* in `[0, 1]` and non-increasing in the
//! cache size (more cache can only help), SPI coefficients are finite and
//! physical, and event rates are finite and non-negative.

use crate::feature::FeatureVector;
use crate::histogram::ReuseHistogram;
use crate::profile::ProcessProfile;
use crate::ModelError;

/// Slack allowed on normalization and monotonicity checks. Persisted
/// curves round-trip through decimal text, so exact comparisons would
/// reject files the model itself wrote.
pub const TOLERANCE: f64 = 1e-6;

/// Checks that `x` is finite, passing it through on success.
///
/// # Errors
///
/// [`ModelError::NonFinite`] naming `what` if `x` is NaN or infinite.
pub fn finite(x: f64, what: &str) -> Result<f64, ModelError> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(ModelError::NonFinite(format!("{what} is {x}")))
    }
}

/// Checks that `x` is finite and `>= 0`, passing it through on success.
///
/// # Errors
///
/// [`ModelError::NonFinite`] for NaN/infinity,
/// [`ModelError::InvalidDistribution`] for negative values.
pub fn non_negative(x: f64, what: &str) -> Result<f64, ModelError> {
    finite(x, what)?;
    if x < 0.0 {
        return Err(ModelError::InvalidDistribution(format!("{what} is negative ({x})")));
    }
    Ok(x)
}

/// Validates a reuse-distance histogram: all mass finite, non-negative,
/// and totalling 1 within [`TOLERANCE`].
///
/// [`ReuseHistogram::new`] enforces this at construction, so this is a
/// re-check for values that arrived by other routes (persisted files,
/// fault-injection tests, manual edits through public fields elsewhere).
///
/// # Errors
///
/// [`ModelError::NonFinite`] or [`ModelError::InvalidDistribution`].
pub fn histogram(h: &ReuseHistogram) -> Result<(), ModelError> {
    for (i, &p) in h.probs().iter().enumerate() {
        non_negative(p, &format!("histogram probability p[{i}]"))?;
    }
    non_negative(h.p_inf(), "histogram tail mass p_inf")?;
    let total: f64 = h.probs().iter().sum::<f64>() + h.p_inf();
    if (total - 1.0).abs() > TOLERANCE {
        return Err(ModelError::InvalidDistribution(format!(
            "histogram mass sums to {total}, expected 1"
        )));
    }
    Ok(())
}

/// Validates a tabulated MPA curve sampled at integer cache sizes: every
/// value finite, inside `[0, 1]`, and non-increasing (within
/// [`TOLERANCE`]) — a larger cache cannot miss more often.
///
/// # Errors
///
/// [`ModelError::NonFinite`], [`ModelError::InvalidDistribution`], or
/// [`ModelError::EmptyInput`] for an empty curve.
pub fn mpa_curve(mpas: &[f64]) -> Result<(), ModelError> {
    if mpas.is_empty() {
        return Err(ModelError::EmptyInput("MPA curve has no samples"));
    }
    for (s, &m) in mpas.iter().enumerate() {
        finite(m, &format!("MPA({s})"))?;
        if !(-TOLERANCE..=1.0 + TOLERANCE).contains(&m) {
            return Err(ModelError::InvalidDistribution(format!("MPA({s}) = {m} outside [0, 1]")));
        }
    }
    for (s, w) in mpas.windows(2).enumerate() {
        if w[1] > w[0] + TOLERANCE {
            return Err(ModelError::InvalidDistribution(format!(
                "MPA curve not monotone: MPA({}) = {} > MPA({s}) = {}",
                s + 1,
                w[1],
                w[0]
            )));
        }
    }
    Ok(())
}

/// Validates a feature vector end to end: API in `[0, 1]` (0 denotes an
/// idle, L2-silent process), finite physical SPI coefficients, a
/// well-formed histogram, and a monotone MPA curve over the integer sizes
/// `0..=A`.
///
/// # Errors
///
/// Any error from the underlying checks, tagged with the process name.
pub fn feature_vector(f: &FeatureVector) -> Result<(), ModelError> {
    let tag =
        |e: ModelError| ModelError::UnusableProfile(format!("feature vector '{}': {e}", f.name()));
    finite(f.api(), "API").map_err(tag)?;
    if !(f.api() >= 0.0 && f.api() <= 1.0) {
        return Err(ModelError::UnusableProfile(format!(
            "feature vector '{}': API {} outside [0, 1]",
            f.name(),
            f.api()
        )));
    }
    non_negative(f.spi_model().alpha(), "SPI alpha").map_err(tag)?;
    finite(f.spi_model().beta(), "SPI beta").map_err(tag)?;
    if f.spi_model().beta() <= 0.0 {
        return Err(ModelError::UnusableProfile(format!(
            "feature vector '{}': SPI beta {} must be positive",
            f.name(),
            f.spi_model().beta()
        )));
    }
    histogram(f.histogram()).map_err(tag)?;
    let mpas: Vec<f64> = (0..=f.assoc()).map(|s| f.mpa(s as f64)).collect();
    mpa_curve(&mpas).map_err(tag)?;
    Ok(())
}

/// Validates the §5 process profile: a usable feature vector plus finite,
/// non-negative event rates and physically ordered power readings
/// (running a process cannot draw less than the idle processor, beyond
/// measurement noise).
///
/// # Errors
///
/// Any error from the underlying checks, tagged with the process name.
pub fn profile(p: &ProcessProfile) -> Result<(), ModelError> {
    feature_vector(&p.feature)?;
    let name = p.feature.name();
    non_negative(p.l1rpi, "L1 references per instruction")
        .and_then(|_| non_negative(p.l2rpi, "L2 references per instruction"))
        .and_then(|_| non_negative(p.brpi, "branches per instruction"))
        .and_then(|_| non_negative(p.fppi, "FP operations per instruction"))
        .and_then(|_| non_negative(p.processor_alone_w, "alone power"))
        .and_then(|_| non_negative(p.idle_processor_w, "idle power"))
        .map_err(|e| ModelError::UnusableProfile(format!("profile '{name}': {e}")))?;
    // One ADC step of headroom: quantization can legitimately rank a
    // lightly loaded processor at or a hair below the idle reading.
    if p.processor_alone_w < p.idle_processor_w - 0.5 {
        return Err(ModelError::UnusableProfile(format!(
            "profile '{name}': alone power {} W below idle power {} W",
            p.processor_alone_w, p.idle_processor_w
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::SpiModel;

    fn hist(probs: Vec<f64>, p_inf: f64) -> ReuseHistogram {
        ReuseHistogram::new(probs, p_inf).unwrap()
    }

    fn fv() -> FeatureVector {
        FeatureVector::new(
            "t",
            hist(vec![0.4, 0.3], 0.3),
            0.01,
            SpiModel::new(2e-8, 1e-8).unwrap(),
            8,
        )
        .unwrap()
    }

    #[test]
    fn finite_accepts_and_rejects() {
        assert_eq!(finite(1.5, "x").unwrap(), 1.5);
        assert!(matches!(finite(f64::NAN, "x"), Err(ModelError::NonFinite(_))));
        assert!(matches!(finite(f64::INFINITY, "x"), Err(ModelError::NonFinite(_))));
    }

    #[test]
    fn non_negative_rejects_negatives() {
        assert!(non_negative(-0.1, "x").is_err());
        assert!(non_negative(0.0, "x").is_ok());
    }

    #[test]
    fn good_histogram_passes() {
        assert!(histogram(&hist(vec![0.5, 0.2], 0.3)).is_ok());
    }

    #[test]
    fn mpa_curve_checks() {
        assert!(mpa_curve(&[1.0, 0.5, 0.2, 0.2]).is_ok());
        assert!(mpa_curve(&[]).is_err());
        assert!(mpa_curve(&[1.0, f64::NAN]).is_err());
        assert!(mpa_curve(&[1.0, 1.5]).is_err(), "out of [0,1]");
        assert!(mpa_curve(&[0.2, 0.5]).is_err(), "increasing");
        // Round-off wiggle within tolerance is fine.
        assert!(mpa_curve(&[0.5, 0.5 + 1e-9]).is_ok());
    }

    #[test]
    fn valid_feature_vector_passes() {
        assert!(feature_vector(&fv()).is_ok());
    }

    #[test]
    fn valid_profile_passes_and_bad_rates_fail() {
        let good = ProcessProfile {
            feature: fv(),
            l1rpi: 0.3,
            l2rpi: 0.01,
            brpi: 0.2,
            fppi: 0.1,
            processor_alone_w: 40.0,
            idle_processor_w: 30.0,
        };
        assert!(profile(&good).is_ok());

        let mut bad = good.clone();
        bad.l1rpi = f64::NAN;
        assert!(matches!(profile(&bad), Err(ModelError::UnusableProfile(_))));

        let mut bad = good.clone();
        bad.fppi = -1.0;
        assert!(profile(&bad).is_err());

        let mut bad = good;
        bad.processor_alone_w = 10.0; // far below idle
        assert!(profile(&bad).is_err());
    }
}
