//! Time sharing and process-combination averaging (paper §4.2, Eq. 10).
//!
//! With round-robin time slicing and negligible context-switch cost
//! (measured at ~1 % of a 20 ms timeslice), the power of a core running
//! `k` processes is the weighted mean of the per-process powers, weights
//! being the slice lengths (equal in the paper's setup). Across a set of
//! cache-sharing cores, each instant pairs one process from every core's
//! run queue; averaging over all such *process combinations* yields
//! Eq. 10.

use crate::ModelError;

/// Equal-weight time-shared core power: `(1/k) * sum_i P_i` (§4.2).
///
/// Returns 0 for an empty slice (an idle core contributes no process
/// power; its idle draw is the model intercept, accounted elsewhere).
pub fn time_shared_core_power(process_powers: &[f64]) -> f64 {
    if process_powers.is_empty() {
        return 0.0;
    }
    process_powers.iter().sum::<f64>() / process_powers.len() as f64
}

/// Weighted time-shared core power, the generalization to unequal
/// timeslices the scheduler substrate supports.
///
/// # Errors
///
/// Returns [`ModelError::InvalidAssignment`] if lengths differ, weights
/// are not all positive, or the inputs are empty.
pub fn weighted_core_power(process_powers: &[f64], weights: &[f64]) -> Result<f64, ModelError> {
    if process_powers.is_empty() {
        return Err(ModelError::InvalidAssignment("no processes to weight".into()));
    }
    if process_powers.len() != weights.len() {
        return Err(ModelError::InvalidAssignment(format!(
            "{} powers but {} weights",
            process_powers.len(),
            weights.len()
        )));
    }
    if weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
        return Err(ModelError::InvalidAssignment("weights must be positive and finite".into()));
    }
    let total_w: f64 = weights.iter().sum();
    Ok(process_powers.iter().zip(weights).map(|(p, w)| p * w).sum::<f64>() / total_w)
}

/// Iterates every *process combination* (Eq. 10): one index per non-empty
/// core, the cartesian product of `0..set_sizes[i]`. The callback receives
/// the combination (one chosen process index per core, aligned with
/// `set_sizes`) and returns that combination's power; the mean over all
/// combinations is returned.
///
/// Cores with `set_sizes[i] == 0` are skipped (their entry in the
/// combination is `usize::MAX` as an explicit "idle" marker).
///
/// # Errors
///
/// Returns [`ModelError::InvalidAssignment`] if every core is empty.
///
/// # Examples
///
/// ```
/// // Two cores with 2 and 3 processes -> 6 combinations.
/// let mut seen = 0;
/// let avg = mpmc_model::sharing::combination_average(&[2, 3], |_combo| {
///     seen += 1;
///     1.0
/// }).unwrap();
/// assert_eq!(seen, 6);
/// assert_eq!(avg, 1.0);
/// ```
pub fn combination_average<F: FnMut(&[usize]) -> f64>(
    set_sizes: &[usize],
    f: F,
) -> Result<f64, ModelError> {
    combination_average_cancellable(set_sizes, &mathkit::sync::CancelToken::never(), f)
}

/// [`combination_average`] with a cancellation point per combination.
///
/// The odometer walk visits the full cartesian product — combinatorial
/// in the per-core queue lengths — so the model's cancellable entry
/// points route through this variant: a fired token stops the walk at
/// the next combination instead of after the whole product (the
/// equilibrium solves inside `f` poll too, but the alone-on-die
/// shortcut path never enters a solver).
///
/// # Errors
///
/// As [`combination_average`], plus
/// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
/// `cancel` fires.
pub fn combination_average_cancellable<F: FnMut(&[usize]) -> f64>(
    set_sizes: &[usize],
    cancel: &mathkit::sync::CancelToken,
    mut f: F,
) -> Result<f64, ModelError> {
    let total: usize = set_sizes.iter().filter(|&&s| s > 0).product();
    if set_sizes.iter().all(|&s| s == 0) || total == 0 {
        return Err(ModelError::InvalidAssignment(
            "combination average needs at least one process".into(),
        ));
    }
    let mut combo: Vec<usize> =
        set_sizes.iter().map(|&s| if s == 0 { usize::MAX } else { 0 }).collect();
    let mut sum = 0.0;
    let mut count = 0usize;
    loop {
        cancel.check()?;
        sum += f(&combo);
        count += 1;
        // Odometer increment over non-empty cores.
        let mut pos = None;
        for (i, &size) in set_sizes.iter().enumerate() {
            if size == 0 {
                continue;
            }
            if combo[i] + 1 < size {
                combo[i] += 1;
                pos = Some(i);
                break;
            }
            combo[i] = 0;
        }
        if pos.is_none() {
            break;
        }
    }
    debug_assert_eq!(count, total);
    Ok(sum / count as f64)
}

/// Number of process combinations Eq. 10 averages over for the given
/// per-core run-queue sizes.
pub fn combination_count(set_sizes: &[usize]) -> usize {
    set_sizes.iter().filter(|&&s| s > 0).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weight_mean() {
        assert_eq!(time_shared_core_power(&[10.0, 20.0]), 15.0);
        assert_eq!(time_shared_core_power(&[7.0]), 7.0);
        assert_eq!(time_shared_core_power(&[]), 0.0);
    }

    #[test]
    fn weighted_mean() {
        let p = weighted_core_power(&[10.0, 20.0], &[3.0, 1.0]).unwrap();
        assert!((p - 12.5).abs() < 1e-12);
        // Equal weights reduce to the §4.2 formula.
        let eq = weighted_core_power(&[10.0, 20.0], &[1.0, 1.0]).unwrap();
        assert_eq!(eq, time_shared_core_power(&[10.0, 20.0]));
    }

    #[test]
    fn weighted_validation() {
        assert!(weighted_core_power(&[], &[]).is_err());
        assert!(weighted_core_power(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_core_power(&[1.0], &[0.0]).is_err());
        assert!(weighted_core_power(&[1.0], &[f64::NAN]).is_err());
    }

    #[test]
    fn combinations_enumerate_cartesian_product() {
        let mut seen = Vec::new();
        combination_average(&[2, 2], |c| {
            seen.push((c[0], c[1]));
            0.0
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn idle_cores_are_skipped_with_marker() {
        let mut seen = Vec::new();
        combination_average(&[2, 0, 1], |c| {
            seen.push(c.to_vec());
            1.0
        })
        .unwrap();
        assert_eq!(seen.len(), 2);
        for c in &seen {
            assert_eq!(c[1], usize::MAX);
            assert_eq!(c[2], 0);
        }
    }

    #[test]
    fn average_is_mean_of_combination_values() {
        // Values 1, 2, 3, 4 across 4 combinations -> mean 2.5.
        let avg = combination_average(&[2, 2], |c| (c[0] * 2 + c[1] + 1) as f64).unwrap();
        assert_eq!(avg, 2.5);
    }

    #[test]
    fn all_empty_rejected() {
        assert!(combination_average(&[0, 0], |_| 0.0).is_err());
    }

    #[test]
    fn cancellation_stops_walk_at_next_combination() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicBool::new(false));
        let token = mathkit::sync::CancelToken::flag(Arc::clone(&fired));
        let mut calls = 0usize;
        let err = combination_average_cancellable(&[3, 3], &token, |_c| {
            calls += 1;
            fired.store(true, Ordering::Relaxed);
            0.0
        })
        .unwrap_err();
        assert!(
            matches!(err, ModelError::Math(mathkit::MathError::Cancelled)),
            "want typed cancellation, got {err:?}"
        );
        assert_eq!(calls, 1, "walk must stop at the next combination, not finish all 9");
        // A pre-fired token stops the walk before the first evaluation.
        let pre = mathkit::sync::CancelToken::from_fn(|| true);
        let mut evals = 0usize;
        assert!(combination_average_cancellable(&[2, 2], &pre, |_c| {
            evals += 1;
            0.0
        })
        .is_err());
        assert_eq!(evals, 0);
        // The plain wrapper (never-token) still sees every combination.
        let mut seen = 0usize;
        combination_average(&[2, 2], |_c| {
            seen += 1;
            0.0
        })
        .unwrap();
        assert_eq!(seen, 4);
    }

    #[test]
    fn combination_count_matches_eq10_denominator() {
        assert_eq!(combination_count(&[2, 3]), 6);
        assert_eq!(combination_count(&[2, 0, 3]), 6);
        assert_eq!(combination_count(&[1]), 1);
        assert_eq!(combination_count(&[4, 4, 4, 4]), 256);
    }
}
