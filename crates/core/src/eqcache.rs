//! The bounded, sharded equilibrium memo cache behind
//! [`CombinedModel`](crate::assignment::CombinedModel).
//!
//! The original memo cache was a single `Mutex<HashMap<..>>`: correct,
//! but it grew without bound over a long candidate sweep and serialized
//! every reader behind one lock. This replacement bounds memory with a
//! per-shard LRU ([`mathkit::lru`]) and spreads contention over several
//! independently locked shards.
//!
//! Two properties the rest of the model relies on:
//!
//! - **Determinism.** The cache key is the *canonically ordered* list of
//!   co-runner content fingerprints, and the shard is a pure function of
//!   that key, so permuted co-runner sets always land on the same entry.
//!   Eviction only ever forces a re-solve, and the solvers work in the
//!   same canonical order whether or not the cache is present — so a
//!   hit, a miss, and a post-eviction re-solve are all bit-identical.
//! - **Bounded memory.** `entries() <= capacity()` at every instant; the
//!   total capacity is split evenly across shards and each shard evicts
//!   independently.

use crate::equilibrium::Equilibrium;
use mathkit::lru::LruCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards (a power of two).
const SHARDS: usize = 8;

/// Default total capacity (entries) of the equilibrium memo cache.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EqCacheStats {
    /// Lookups that found a memoized equilibrium.
    pub hits: u64,
    /// Lookups that had to solve.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently memoized (across all shards).
    pub entries: usize,
    /// Total configured capacity (0 = caching disabled).
    pub capacity: usize,
    /// Misses where a same-cardinality neighbor was available to seed a
    /// warm-started Newton solve.
    pub warm_attempts: u64,
    /// Warm-started solves that converged (the seed was used).
    pub warm_hits: u64,
    /// Warm-started solves that did not converge and fell back to the
    /// cold solver. Tracked separately from `fallback_solves`: a warm
    /// fallback is an optimization miss, not a solver-health event.
    pub warm_fallbacks: u64,
}

/// A sharded, capacity-bounded LRU from canonical fingerprint keys to
/// canonical-order [`Equilibrium`] solutions.
#[derive(Debug)]
pub struct EquilibriumCache {
    shards: Vec<Mutex<LruCache<Vec<u64>, Equilibrium>>>,
    capacity: usize,
    /// Fresh solves whose diagnostics recorded a fallback or degraded
    /// result (tracked here because the cache sees every solve).
    fallback_solves: AtomicU64,
    /// Warm-start accounting (see [`EqCacheStats`]).
    warm_attempts: AtomicU64,
    warm_hits: AtomicU64,
    warm_fallbacks: AtomicU64,
}

/// Mixes the canonical fingerprint list into a shard index. SplitMix64
/// finalization over the folded fingerprints: cheap and well-spread, and
/// a pure function of the key so permutation-equivalent co-runner sets
/// always pick the same shard.
fn shard_of(key: &[u64]) -> usize {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    for &fp in key {
        z = z.wrapping_add(fp).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
    }
    (z as usize) & (SHARDS - 1)
}

/// Multiset intersection size of two sorted fingerprint lists (canonical
/// keys are sorted, so a linear two-pointer sweep suffices).
fn shared_fingerprints(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut shared) = (0, 0, 0);
    // lint:allow(cancellation_propagation) -- bounded two-pointer sweep: i or j advances every iteration
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    shared
}

impl EquilibriumCache {
    /// A cache bounded at `capacity` total entries, rounded up to a
    /// multiple of the shard count so every shard gets the same bound
    /// (the effective bound is [`EquilibriumCache::capacity`]). Capacity
    /// 0 disables memoization entirely (every lookup misses, nothing is
    /// stored).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS);
        EquilibriumCache {
            shards: (0..SHARDS).map(|_| Mutex::new(LruCache::new(per_shard))).collect(),
            capacity: per_shard * SHARDS,
            fallback_solves: AtomicU64::new(0),
            warm_attempts: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            warm_fallbacks: AtomicU64::new(0),
        }
    }

    /// The total capacity bound (entries).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the canonical key, promoting the entry on a hit.
    pub fn get(&self, key: &[u64]) -> Option<Equilibrium> {
        let mut shard = self.lock(key);
        shard.get(key).cloned()
    }

    /// Looks up the canonical key *without* promoting it — a stale read
    /// for the degraded path, which must not distort the recency order
    /// the healthy path's eviction decisions rely on.
    pub fn peek(&self, key: &[u64]) -> Option<Equilibrium> {
        self.lock(key).peek(key).cloned()
    }

    /// Finds the nearest same-cardinality neighbor of `key`: a cached
    /// entry with the same co-runner count sharing all but at most one
    /// content fingerprint. Used by the serving layer's degraded tier —
    /// a stale answer for an *almost* identical co-run beats the
    /// proportional closed form when one is available.
    ///
    /// Ties are broken deterministically (most shared fingerprints, then
    /// lexicographically smallest key), independent of shard layout and
    /// recency order, so concurrent healthy traffic cannot change which
    /// neighbor a given cache population yields. Returns the winning key
    /// together with its equilibrium; no promotion happens.
    pub fn neighbor(&self, key: &[u64]) -> Option<(Vec<u64>, Equilibrium)> {
        let mut best: Option<(usize, Vec<u64>, Equilibrium)> = None;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in shard.iter() {
                if k.len() != key.len() || k.as_slice() == key {
                    continue;
                }
                let shared = shared_fingerprints(key, k);
                if shared + 1 < key.len() {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bs, bk, _)) => shared > *bs || (shared == *bs && *k < *bk),
                };
                if better {
                    best = Some((shared, k.clone(), v.clone()));
                }
            }
        }
        best.map(|(_, k, v)| (k, v))
    }

    /// Memoizes a canonical-order solve under its canonical key.
    pub fn insert(&self, key: Vec<u64>, eq: Equilibrium) {
        let mut shard = self.lock(&key);
        shard.insert(key, eq);
    }

    /// Records that a fresh solve needed the fallback chain (or came
    /// back degraded).
    pub fn note_fallback(&self) {
        self.fallback_solves.fetch_add(1, Ordering::Relaxed);
    }

    /// Fresh solves that went through the fallback chain.
    pub fn fallback_solves(&self) -> u64 {
        self.fallback_solves.load(Ordering::Relaxed)
    }

    /// Records a miss where a neighbor seed was available and a
    /// warm-started solve was attempted.
    pub fn note_warm_attempt(&self) {
        self.warm_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a warm-started solve that converged.
    pub fn note_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a warm-started solve that fell back to the cold solver.
    pub fn note_warm_fallback(&self) {
        self.warm_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently memoized.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// Drops every memoized entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// A snapshot of the aggregated counters.
    pub fn stats(&self) -> EqCacheStats {
        let mut st = EqCacheStats {
            capacity: self.capacity,
            warm_attempts: self.warm_attempts.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_fallbacks: self.warm_fallbacks.load(Ordering::Relaxed),
            ..Default::default()
        };
        for s in &self.shards {
            let s = s.lock().unwrap_or_else(|e| e.into_inner());
            st.hits += s.hits();
            st.misses += s.misses();
            st.evictions += s.evictions();
            st.entries += s.len();
        }
        st
    }

    fn lock(&self, key: &[u64]) -> std::sync::MutexGuard<'_, LruCache<Vec<u64>, Equilibrium>> {
        self.shards[shard_of(key)].lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{SolveDiagnostics, SolveMethod};

    fn dummy_eq(tag: f64) -> Equilibrium {
        Equilibrium {
            sizes: vec![tag],
            mpas: vec![tag],
            spis: vec![tag],
            apss: vec![tag],
            window: tag,
            cache_filled: true,
            diagnostics: SolveDiagnostics {
                method: SolveMethod::ClosedForm,
                iterations: 0,
                residual: 0.0,
                fallbacks: Vec::new(),
                degraded: false,
            },
        }
    }

    #[test]
    fn shard_is_a_pure_function_of_the_key() {
        let key = vec![1u64, 2, 3];
        assert_eq!(shard_of(&key), shard_of(&key.clone()));
        assert!(shard_of(&key) < SHARDS);
    }

    #[test]
    fn bounded_under_distinct_keys() {
        let cache = EquilibriumCache::new(16);
        for i in 0..500u64 {
            cache.insert(vec![i, i + 1], dummy_eq(i as f64));
            assert!(cache.entries() <= cache.capacity(), "at i = {i}");
        }
        let st = cache.stats();
        assert!(st.evictions > 0);
        assert!(st.entries <= st.capacity);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = EquilibriumCache::new(0);
        cache.insert(vec![1], dummy_eq(1.0));
        assert_eq!(cache.entries(), 0);
        assert!(cache.get(&[1]).is_none());
    }

    #[test]
    fn hit_returns_the_stored_value() {
        let cache = EquilibriumCache::new(8);
        cache.insert(vec![7, 8], dummy_eq(3.5));
        let got = cache.get(&[7, 8]).expect("stored entry");
        assert_eq!(got.window.to_bits(), 3.5f64.to_bits());
        assert!(cache.get(&[8, 7]).is_none(), "keys are exact, not set-equal");
        let st = cache.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn peek_is_stale_no_promotion_no_counters() {
        let cache = EquilibriumCache::new(8);
        cache.insert(vec![7, 8], dummy_eq(3.5));
        let got = cache.peek(&[7, 8]).expect("stored entry");
        assert_eq!(got.window.to_bits(), 3.5f64.to_bits());
        assert!(cache.peek(&[9, 9]).is_none());
        let st = cache.stats();
        assert_eq!(st.hits, 0, "peek must not count as a hit");
        assert_eq!(st.misses, 0, "peek must not count as a miss");
    }

    #[test]
    fn neighbor_finds_off_by_one_key_of_same_cardinality() {
        let cache = EquilibriumCache::new(64);
        cache.insert(vec![10, 20, 30], dummy_eq(1.0));
        cache.insert(vec![10, 20], dummy_eq(2.0)); // wrong cardinality
        cache.insert(vec![11, 21, 31], dummy_eq(3.0)); // shares nothing
        let (k, eq) = cache.neighbor(&[10, 20, 99]).expect("off-by-one neighbor");
        assert_eq!(k, vec![10, 20, 30]);
        assert_eq!(eq.window.to_bits(), 1.0f64.to_bits());
        // Two-away keys never qualify.
        assert!(cache.neighbor(&[10, 98, 99]).is_none());
        // An exact match is not its own neighbor.
        assert!(cache.neighbor(&[10, 20, 30]).is_none());
    }

    #[test]
    fn neighbor_tie_break_is_smallest_key() {
        let cache = EquilibriumCache::new(64);
        cache.insert(vec![10, 20, 31], dummy_eq(1.0));
        cache.insert(vec![10, 20, 30], dummy_eq(2.0));
        // Both share {10, 20} with the probe; the lexicographically
        // smaller key wins regardless of insertion/recency order.
        let (k, _) = cache.neighbor(&[10, 20, 99]).expect("neighbor");
        assert_eq!(k, vec![10, 20, 30]);
    }

    #[test]
    fn clear_and_fallback_counter() {
        let cache = EquilibriumCache::new(8);
        cache.insert(vec![1], dummy_eq(1.0));
        cache.note_fallback();
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.fallback_solves(), 1);
    }

    #[test]
    fn warm_counters_aggregate_into_stats() {
        let cache = EquilibriumCache::new(8);
        assert_eq!(cache.stats().warm_attempts, 0);
        cache.note_warm_attempt();
        cache.note_warm_attempt();
        cache.note_warm_hit();
        cache.note_warm_fallback();
        let st = cache.stats();
        assert_eq!(st.warm_attempts, 2);
        assert_eq!(st.warm_hits, 1);
        assert_eq!(st.warm_fallbacks, 1);
        // Warm fallbacks are optimization misses, not solver-health events.
        assert_eq!(cache.fallback_solves(), 0);
    }
}
