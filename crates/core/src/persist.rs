//! Saving and loading profiles in a line-oriented text format.
//!
//! Profiling is the framework's only expensive step (`A` runs per
//! process), so a deployment profiles once and reuses the result. This
//! module persists [`ProcessProfile`]s (and bare [`FeatureVector`]s) in a
//! human-auditable `key value...` format:
//!
//! ```text
//! # mpmc profile v1
//! name mcf
//! assoc 16
//! api 0.0348
//! alpha 3.245e-10
//! beta 4.583e-11
//! hist 0.0751 0.0698 0.0649 ...
//! p_inf 0.2513
//! l1rpi 0.42
//! l2rpi 0.0348
//! brpi 0.24
//! fppi 0
//! processor_alone_w 52.04
//! idle_processor_w 44.42
//! ```
//!
//! Blank lines and `#` comments are ignored; unknown keys are rejected so
//! silent format drift cannot hide.

use crate::feature::FeatureVector;
use crate::histogram::ReuseHistogram;
use crate::profile::ProcessProfile;
use crate::spi::SpiModel;
use crate::ModelError;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Format version written in the header.
pub const FORMAT_VERSION: u32 = 1;

/// Writes a full [`ProcessProfile`] to `w`. A mutable reference to a
/// writer also works (`&mut w`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_profile<W: Write>(profile: &ProcessProfile, mut w: W) -> std::io::Result<()> {
    write_feature_body(&profile.feature, &mut w)?;
    writeln!(w, "l1rpi {}", profile.l1rpi)?;
    writeln!(w, "l2rpi {}", profile.l2rpi)?;
    writeln!(w, "brpi {}", profile.brpi)?;
    writeln!(w, "fppi {}", profile.fppi)?;
    writeln!(w, "processor_alone_w {}", profile.processor_alone_w)?;
    writeln!(w, "idle_processor_w {}", profile.idle_processor_w)?;
    Ok(())
}

/// Writes a bare [`FeatureVector`] to `w` (performance model only).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_feature<W: Write>(feature: &FeatureVector, mut w: W) -> std::io::Result<()> {
    write_feature_body(feature, &mut w)
}

fn write_feature_body<W: Write>(feature: &FeatureVector, w: &mut W) -> std::io::Result<()> {
    writeln!(w, "# mpmc profile v{FORMAT_VERSION}")?;
    writeln!(w, "name {}", feature.name())?;
    writeln!(w, "assoc {}", feature.assoc())?;
    writeln!(w, "api {}", feature.api())?;
    writeln!(w, "alpha {}", feature.spi_model().alpha())?;
    writeln!(w, "beta {}", feature.spi_model().beta())?;
    write!(w, "hist")?;
    for p in feature.histogram().probs() {
        write!(w, " {p}")?;
    }
    writeln!(w)?;
    writeln!(w, "p_inf {}", feature.histogram().p_inf())?;
    Ok(())
}

/// Reads a full [`ProcessProfile`] written by [`write_profile`].
///
/// # Errors
///
/// - [`ModelError::UnusableProfile`] for malformed input, missing keys,
///   or unknown keys.
/// - Construction errors if the stored values are out of domain.
pub fn read_profile<R: Read>(r: R) -> Result<ProcessProfile, ModelError> {
    let fields = parse_fields(r)?;
    let feature = feature_from_fields(&fields)?;
    let profile = ProcessProfile {
        feature,
        l1rpi: field_f64(&fields, "l1rpi")?,
        l2rpi: field_f64(&fields, "l2rpi")?,
        brpi: field_f64(&fields, "brpi")?,
        fppi: field_f64(&fields, "fppi")?,
        processor_alone_w: field_f64(&fields, "processor_alone_w")?,
        idle_processor_w: field_f64(&fields, "idle_processor_w")?,
    };
    crate::validate::profile(&profile)?;
    Ok(profile)
}

/// Reads a bare [`FeatureVector`] written by [`write_feature`].
///
/// # Errors
///
/// As for [`read_profile`].
pub fn read_feature<R: Read>(r: R) -> Result<FeatureVector, ModelError> {
    let fields = parse_fields(r)?;
    // Power-profile keys may be present (a full profile is a superset);
    // they are simply ignored here.
    let feature = feature_from_fields(&fields)?;
    crate::validate::feature_vector(&feature)?;
    Ok(feature)
}

const FEATURE_KEYS: [&str; 7] = ["name", "assoc", "api", "alpha", "beta", "hist", "p_inf"];
const PROFILE_KEYS: [&str; 6] =
    ["l1rpi", "l2rpi", "brpi", "fppi", "processor_alone_w", "idle_processor_w"];

fn parse_fields<R: Read>(r: R) -> Result<BTreeMap<String, String>, ModelError> {
    let mut fields = BTreeMap::new();
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line.map_err(|e| ModelError::UnusableProfile(format!("read error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(' ').ok_or_else(|| {
            ModelError::UnusableProfile(format!("line {}: expected 'key value'", lineno + 1))
        })?;
        if !FEATURE_KEYS.contains(&key) && !PROFILE_KEYS.contains(&key) {
            return Err(ModelError::UnusableProfile(format!(
                "line {}: unknown key '{key}'",
                lineno + 1
            )));
        }
        if fields.insert(key.to_string(), value.trim().to_string()).is_some() {
            return Err(ModelError::UnusableProfile(format!(
                "line {}: duplicate key '{key}'",
                lineno + 1
            )));
        }
    }
    Ok(fields)
}

fn feature_from_fields(fields: &BTreeMap<String, String>) -> Result<FeatureVector, ModelError> {
    let name =
        fields.get("name").ok_or(ModelError::UnusableProfile("missing key 'name'".into()))?.clone();
    let assoc_raw =
        fields.get("assoc").ok_or(ModelError::UnusableProfile("missing key 'assoc'".into()))?;
    // Associativity is a count: parse as an integer rather than truncating
    // a float, so "16.7", "-2", and "1e3" are rejected loudly.
    let assoc = assoc_raw.parse::<usize>().map_err(|_| {
        ModelError::UnusableProfile(format!(
            "bad value for 'assoc': '{assoc_raw}' (want a positive integer)"
        ))
    })?;
    if assoc == 0 || assoc > 4096 {
        return Err(ModelError::UnusableProfile(format!(
            "assoc {assoc} outside supported range 1..=4096"
        )));
    }
    let api = field_f64(fields, "api")?;
    let alpha = field_f64(fields, "alpha")?;
    let beta = field_f64(fields, "beta")?;
    let p_inf = field_f64(fields, "p_inf")?;
    let hist_raw =
        fields.get("hist").ok_or(ModelError::UnusableProfile("missing key 'hist'".into()))?;
    let probs: Vec<f64> = hist_raw
        .split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|_| ModelError::UnusableProfile(format!("bad hist value '{tok}'")))
        })
        .collect::<Result<_, _>>()?;
    let hist = ReuseHistogram::new(probs, p_inf)?;
    let spi = SpiModel::new(alpha, beta)?;
    FeatureVector::new(name, hist, api, spi, assoc)
}

fn field_f64(fields: &BTreeMap<String, String>, key: &str) -> Result<f64, ModelError> {
    let raw = fields
        .get(key)
        .ok_or_else(|| ModelError::UnusableProfile(format!("missing key '{key}'")))?;
    let v = raw
        .parse::<f64>()
        .map_err(|_| ModelError::UnusableProfile(format!("bad value for '{key}': '{raw}'")))?;
    // `f64::from_str` happily accepts "NaN" and "inf"; a profile carrying
    // them would poison every solver downstream.
    if !v.is_finite() {
        return Err(ModelError::UnusableProfile(format!("non-finite value for '{key}': '{raw}'")));
    }
    Ok(v)
}

/// Writes a fitted Eq. 9 power model (intercept + five coefficients).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_power_model<W: Write>(
    model: &crate::power::PowerModel,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "# mpmc power model v{FORMAT_VERSION}")?;
    writeln!(w, "idle_core_w {}", crate::power::CorePowerModel::idle_core_watts(model))?;
    write!(w, "coefficients")?;
    for c in model.coefficients() {
        write!(w, " {c}")?;
    }
    writeln!(w)?;
    Ok(())
}

/// Reads a power model written by [`write_power_model`].
///
/// # Errors
///
/// [`ModelError::UnusableProfile`] for malformed input; construction
/// errors for out-of-domain values.
pub fn read_power_model<R: Read>(r: R) -> Result<crate::power::PowerModel, ModelError> {
    let mut idle = None;
    let mut coeffs = None;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line.map_err(|e| ModelError::UnusableProfile(format!("read error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(' ').ok_or_else(|| {
            ModelError::UnusableProfile(format!("line {}: expected 'key value'", lineno + 1))
        })?;
        match key {
            "idle_core_w" => {
                idle = Some(value.trim().parse::<f64>().map_err(|_| {
                    ModelError::UnusableProfile(format!("bad idle_core_w '{value}'"))
                })?);
            }
            "coefficients" => {
                coeffs = Some(
                    value
                        .split_whitespace()
                        .map(|tok| {
                            tok.parse::<f64>().map_err(|_| {
                                ModelError::UnusableProfile(format!("bad coefficient '{tok}'"))
                            })
                        })
                        .collect::<Result<Vec<f64>, _>>()?,
                );
            }
            other => {
                return Err(ModelError::UnusableProfile(format!(
                    "line {}: unknown key '{other}'",
                    lineno + 1
                )));
            }
        }
    }
    let idle = idle.ok_or(ModelError::UnusableProfile("missing key 'idle_core_w'".into()))?;
    let coeffs = coeffs.ok_or(ModelError::UnusableProfile("missing key 'coefficients'".into()))?;
    crate::power::PowerModel::from_parts(idle, coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::machine::MachineConfig;
    use workloads::spec::SpecWorkload;

    fn sample_profile() -> ProcessProfile {
        let machine = MachineConfig::four_core_server();
        let feature = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &machine).unwrap();
        ProcessProfile {
            feature,
            l1rpi: 0.42,
            l2rpi: 0.0348,
            brpi: 0.24,
            fppi: 0.0,
            processor_alone_w: 52.04,
            idle_processor_w: 44.42,
        }
    }

    #[test]
    fn profile_roundtrip() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let back = read_profile(buf.as_slice()).unwrap();
        assert_eq!(back.feature.name(), "mcf");
        assert_eq!(back.feature.assoc(), 16);
        assert!((back.feature.api() - profile.feature.api()).abs() < 1e-15);
        assert!((back.l1rpi - 0.42).abs() < 1e-15);
        assert!((back.processor_alone_w - 52.04).abs() < 1e-12);
        // Histogram identical at every integer size.
        for s in 0..=16 {
            assert!(
                (back.feature.mpa(s as f64) - profile.feature.mpa(s as f64)).abs() < 1e-12,
                "s={s}"
            );
        }
    }

    #[test]
    fn feature_roundtrip_and_subset_read() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        // A full profile parses as a bare feature too.
        let fv = read_feature(buf.as_slice()).unwrap();
        assert_eq!(fv.name(), "mcf");

        let mut buf = Vec::new();
        write_feature(&profile.feature, &mut buf).unwrap();
        let fv = read_feature(buf.as_slice()).unwrap();
        assert!((fv.spi_model().alpha() - profile.feature.spi_model().alpha()).abs() < 1e-20);
    }

    #[test]
    fn feature_only_file_fails_as_profile() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_feature(&profile.feature, &mut buf).unwrap();
        assert!(read_profile(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_and_duplicate_keys() {
        let text = "name x\nbogus 1\n";
        assert!(matches!(read_feature(text.as_bytes()), Err(ModelError::UnusableProfile(_))));
        let text = "name x\nname y\n";
        assert!(read_feature(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_malformed_values() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let broken = text.replace("api ", "api x");
        assert!(read_profile(broken.as_bytes()).is_err());
        let broken = text.replace("p_inf", "# p_inf");
        assert!(read_profile(broken.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text =
            format!("# leading comment\n\n{}\n# trailing\n", String::from_utf8(buf).unwrap());
        assert!(read_profile(text.as_bytes()).is_ok());
    }

    #[test]
    fn out_of_domain_values_rejected() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Negative beta is unphysical.
        let broken = regex_like_replace(&text, "beta ", "beta -");
        assert!(read_profile(broken.as_bytes()).is_err());
    }

    fn regex_like_replace(text: &str, prefix: &str, with: &str) -> String {
        text.replacen(prefix, with, 1)
    }

    #[test]
    fn rejects_non_finite_and_fractional_fields() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // "NaN"/"inf" parse as f64 but must not survive into the model.
        let api_line = text.lines().find(|l| l.starts_with("api ")).unwrap().to_string();
        for bad in ["api NaN", "api inf", "api -inf"] {
            let broken = text.replace(&api_line, bad);
            let err = read_profile(broken.as_bytes()).unwrap_err();
            assert!(matches!(err, ModelError::UnusableProfile(_)), "{bad}: {err}");
        }

        // Associativity must be a positive integer.
        for bad in ["assoc 16.7", "assoc -2", "assoc 0", "assoc 1e3", "assoc 9999999"] {
            let broken = text.replace("assoc 16", bad);
            assert!(read_profile(broken.as_bytes()).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_non_finite_rate_fields() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let broken = text.replace("l1rpi 0.42", "l1rpi NaN");
        assert!(read_profile(broken.as_bytes()).is_err());
        let broken = text.replace("fppi 0", "fppi -1");
        assert!(read_profile(broken.as_bytes()).is_err(), "negative rate");
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        write_profile(&profile, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Drop trailing lines: every prefix is missing at least one key.
        for keep in 1..lines.len() {
            let cut = lines[..keep].join("\n");
            assert!(read_profile(cut.as_bytes()).is_err(), "{keep} lines must not parse");
        }
        // Tear the hist line mid-token: the histogram loses mass and the
        // normalization check must reject it.
        let hist_line = lines.iter().find(|l| l.starts_with("hist ")).unwrap();
        let torn = text.replace(hist_line, &hist_line[..hist_line.len() / 2]);
        assert!(read_profile(torn.as_bytes()).is_err(), "torn hist must not parse");
    }

    #[test]
    fn power_model_roundtrip() {
        use crate::power::{CorePowerModel, PowerModel};
        let model = PowerModel::from_parts(11.5, vec![1e-6, 8e-6, -1.3e-5, 1.4e-6, 8e-7]).unwrap();
        let mut buf = Vec::new();
        write_power_model(&model, &mut buf).unwrap();
        let back = read_power_model(buf.as_slice()).unwrap();
        assert!((back.idle_core_watts() - 11.5).abs() < 1e-12);
        assert_eq!(back.coefficients().len(), 5);
        assert!((back.coefficients()[2] + 1.3e-5).abs() < 1e-18);
    }

    #[test]
    fn power_model_validation() {
        use crate::power::PowerModel;
        assert!(PowerModel::from_parts(1.0, vec![1.0; 4]).is_err());
        assert!(PowerModel::from_parts(f64::NAN, vec![1.0; 5]).is_err());
        assert!(read_power_model("idle_core_w 5".as_bytes()).is_err());
        assert!(read_power_model("coefficients 1 2 3 4 5".as_bytes()).is_err());
        assert!(read_power_model("idle_core_w x\ncoefficients 1 2 3 4 5".as_bytes()).is_err());
    }
}
