//! The steady-state cache-sharing equilibrium (paper §3.3, Eq. 1 + Eq. 7).
//!
//! Given `k` co-scheduled processes sharing an `A`-way LRU cache, find the
//! effective cache sizes `S_1..S_k`. The paper's derivation: there is a
//! window `T` such that exactly the data accessed during the last `T`
//! seconds is resident, so every process satisfies
//! `S_i = G_i(APS_i(S_i) * T)` with a *common* `T`, plus the capacity
//! constraint `sum_i S_i = A`.
//!
//! Three solver entry points are provided:
//!
//! - [`solve`] — a guaranteed-convergent nested bisection: the inner solve
//!   finds `S_i(T)` per process (monotone in `T`), the outer solve adjusts
//!   `T` until the capacity constraint holds. This is the default.
//! - [`solve_newton`] — Newton–Raphson on the `(S_1..S_k, T)` system, the
//!   method the paper names. Equivalent at the solution; used by the
//!   ablation benchmarks and cross-checked against [`solve`] in tests.
//! - [`solve_robust`] — a staged fallback chain for untrusted or
//!   adversarial inputs: damped Newton, then perturbed Newton restarts,
//!   then a bounded fixed-point/bisection solve, and finally a
//!   proportional-to-API heuristic split that cannot fail. Every stage
//!   transition is recorded in [`SolveDiagnostics`].
//!
//! If the combined demand cannot fill the cache (every process saturates
//! below its share), the capacity constraint is infeasible; the solvers
//! then return the saturated sizes with [`Equilibrium::cache_filled`] set
//! to `false` — physically, part of the cache simply stays empty.

use crate::feature::FeatureVector;
use crate::ModelError;
use mathkit::newton::{newton_raphson_workspace_cancellable, NewtonOptions, NewtonWorkspace};
use mathkit::parallel::{par_map, resolve_workers};
use mathkit::roots::{
    bisect_cancellable, bisect_seeded_cancellable, fixed_point, BisectOptions, FixedPointOptions,
};
use mathkit::sync::CancelToken;
use std::cell::Cell;
use std::fmt;
use std::time::Instant;

/// Which stage of the solver chain produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Exact closed-form answer for a degenerate input: no active
    /// process, a single active process (which takes `min(saturation, A)`
    /// ways outright), or a unit-associativity cache (where the inner
    /// occupancy solve reduces to a quadratic).
    ClosedForm,
    /// Guaranteed nested bisection ([`solve`]).
    NestedBisection,
    /// Damped Newton–Raphson on the full system.
    DampedNewton,
    /// Newton–Raphson restarted from a perturbed seed.
    ReseededNewton,
    /// Bounded damped fixed-point iteration on the inner occupancy solves.
    FixedPoint,
    /// Heuristic split proportional to each process's API. Always
    /// succeeds but ignores the equilibrium condition; results carrying
    /// this method are flagged [`SolveDiagnostics::degraded`].
    ProportionalShare,
}

impl fmt::Display for SolveMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveMethod::ClosedForm => "closed-form",
            SolveMethod::NestedBisection => "nested-bisection",
            SolveMethod::DampedNewton => "damped-newton",
            SolveMethod::ReseededNewton => "reseeded-newton",
            SolveMethod::FixedPoint => "fixed-point",
            SolveMethod::ProportionalShare => "proportional-share",
        };
        f.write_str(s)
    }
}

/// One abandoned stage of the fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackEvent {
    /// The stage that failed.
    pub stage: SolveMethod,
    /// Why it was abandoned (solver error or budget exhaustion).
    pub reason: String,
}

/// A structured report of how an [`Equilibrium`] was obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// The stage that produced the accepted result.
    pub method: SolveMethod,
    /// Iterations (or function evaluations, for bisection-based stages)
    /// spent by the accepted stage.
    pub iterations: usize,
    /// Residual norm of the accepted result: the capacity-constraint
    /// violation for bisection, the infinity norm of the full system for
    /// Newton.
    pub residual: f64,
    /// Stages tried and abandoned before the accepted one, in order.
    pub fallbacks: Vec<FallbackEvent>,
    /// `true` when the result came from the heuristic last resort and
    /// does not satisfy the equilibrium condition.
    pub degraded: bool,
}

impl SolveDiagnostics {
    fn direct(method: SolveMethod, iterations: usize, residual: f64) -> Self {
        SolveDiagnostics { method, iterations, residual, fallbacks: Vec::new(), degraded: false }
    }

    /// One-line human-readable summary (used by the CLI).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "solved via {} ({} iterations, residual {:.2e})",
            self.method, self.iterations, self.residual
        );
        if !self.fallbacks.is_empty() {
            let stages: Vec<String> = self.fallbacks.iter().map(|f| f.stage.to_string()).collect();
            s.push_str(&format!("; fell back from {}", stages.join(", ")));
        }
        if self.degraded {
            s.push_str("; DEGRADED (heuristic split, equilibrium condition not met)");
        }
        s
    }
}

/// Budgets for [`solve_robust`]'s fallback chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Residual tolerance for the Newton stages.
    pub tol: f64,
    /// Iteration cap per Newton attempt.
    pub max_newton_iter: usize,
    /// Perturbed restarts after the first Newton attempt fails.
    pub newton_retries: usize,
    /// Iteration cap for each inner fixed-point solve.
    pub max_fixed_point_iter: usize,
    /// Wall-clock budget for the whole chain, in seconds. When exceeded,
    /// remaining stages are skipped and the heuristic answers.
    pub time_budget_s: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-7,
            max_newton_iter: 200,
            newton_retries: 2,
            max_fixed_point_iter: 400,
            time_budget_s: 5.0,
        }
    }
}

/// The solved steady state for one co-scheduled set.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Effective cache size per process (ways).
    pub sizes: Vec<f64>,
    /// Predicted misses per access per process at those sizes.
    pub mpas: Vec<f64>,
    /// Predicted seconds per instruction per process.
    pub spis: Vec<f64>,
    /// Predicted L2 accesses per second per process.
    pub apss: Vec<f64>,
    /// The shared window parameter `T` (in scaled units; only ratios are
    /// meaningful).
    pub window: f64,
    /// Whether the capacity constraint `sum S_i = A` could be met. `false`
    /// means total demand saturates below the cache size.
    pub cache_filled: bool,
    /// How this equilibrium was obtained (method, iterations, residual,
    /// and any fallbacks taken along the way).
    pub diagnostics: SolveDiagnostics,
}

impl Equilibrium {
    /// Derives per-process MPA/SPI/APS from each feature's own curves at
    /// the given sizes. Crate-visible so the degraded estimation tier can
    /// re-rate a neighbor's cache split against the requesting co-run's
    /// own features.
    pub(crate) fn from_sizes(
        features: &[&FeatureVector],
        sizes: Vec<f64>,
        window: f64,
        filled: bool,
        diagnostics: SolveDiagnostics,
    ) -> Self {
        let mpas: Vec<f64> = features.iter().zip(&sizes).map(|(f, &s)| f.mpa(s)).collect();
        let spis: Vec<f64> =
            features.iter().zip(&mpas).map(|(f, &m)| f.spi_model().spi(m)).collect();
        let apss: Vec<f64> = features.iter().zip(&spis).map(|(f, &s)| f.api() / s).collect();
        Equilibrium { sizes, mpas, spis, apss, window, cache_filled: filled, diagnostics }
    }
}

/// Inner solve: the occupancy `S` of one process given the window `T`.
///
/// `S` is the smallest fixed point of `S = G(APS(S) * T)`, found by
/// bisection on `phi(S) = S - G(APS(S) * T)` over `[0, A]` (`phi(0) <= 0`,
/// `phi(A) >= 0` because `G <= A`).
fn size_for_window(f: &FeatureVector, a: f64, t: f64) -> f64 {
    let phi = |s: f64| s - f.occupancy().g(f.aps_at(s) * t);
    let phi_a = phi(a);
    if phi_a <= 0.0 {
        return a; // demand saturates the whole cache within this window
    }
    // phi(0) = -G(APS(0) * T) <= 0; find the crossing. The endpoint values
    // are seeded so the already-computed phi(a) is not evaluated again.
    let phi_0 = phi(0.0);
    bisect_seeded_cancellable(
        phi,
        0.0,
        a,
        phi_0,
        phi_a,
        BisectOptions { x_tol: 1e-9, f_tol: 1e-12, max_iter: 300 },
        &CancelToken::never(),
    )
    .unwrap_or(a)
}

/// Solves the equilibrium for `features` sharing an `assoc`-way cache by
/// nested bisection (see module docs).
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] if `features` is empty.
/// - [`ModelError::EquilibriumFailed`] if features were built for a
///   different associativity than `assoc`.
///
/// # Examples
///
/// ```
/// use mpmc_model::equilibrium::solve;
/// use mpmc_model::feature::FeatureVector;
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let m = MachineConfig::four_core_server();
/// let mcf = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &m)?;
/// let gzip = FeatureVector::from_workload(&SpecWorkload::Gzip.params(), &m)?;
/// let eq = solve(&[&mcf, &gzip], 16)?;
/// assert!((eq.sizes[0] + eq.sizes[1] - 16.0).abs() < 1e-6);
/// assert!(eq.sizes[0] > eq.sizes[1]); // mcf is the cache hog
/// # Ok(())
/// # }
/// ```
pub fn solve(features: &[&FeatureVector], assoc: usize) -> Result<Equilibrium, ModelError> {
    solve_cancellable(features, assoc, &CancelToken::never())
}

/// [`solve`] with cooperative cancellation points in the outer window
/// solve (bracket expansion and bisection iterations).
///
/// With a never-firing token the result is bit-identical to [`solve`];
/// once `cancel` fires the solve stops with
/// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` within one
/// inner-solve evaluation.
///
/// # Errors
///
/// Everything [`solve`] returns, plus the cancellation error above.
pub fn solve_cancellable(
    features: &[&FeatureVector],
    assoc: usize,
    cancel: &CancelToken,
) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    solve_with(features, assoc, Strategy::Bisection, cancel)
}

/// Window value reported when the capacity constraint is infeasible: the
/// effectively infinite window the saturated sizes were evaluated at.
const WINDOW_CAP: f64 = 1e9;

/// A solver core's answer over the *canonically ordered active* features;
/// the front-end scatters it back to the caller's process order.
struct CoreSolution {
    sizes: Vec<f64>,
    window: f64,
    filled: bool,
    diagnostics: SolveDiagnostics,
}

enum Strategy<'o> {
    Bisection,
    Newton,
    Robust(&'o SolveOptions),
}

/// Shared front-end for all three solver entry points:
///
/// 1. Partition out idle (`API == 0`) processes — they occupy nothing and
///    must not reach an iterative core (their `APS` is identically zero,
///    which Newton's normalized residual cannot drive to zero).
/// 2. Dispatch degenerate inputs (no active process, one active process,
///    unit associativity) to exact closed forms.
/// 3. Re-order the remaining active processes canonically by content
///    fingerprint, so float summation order inside the cores — and hence
///    every bit of the result — is independent of the caller's process
///    order, then scatter the core's answer back to input order.
fn solve_with(
    features: &[&FeatureVector],
    assoc: usize,
    strategy: Strategy,
    cancel: &CancelToken,
) -> Result<Equilibrium, ModelError> {
    solve_with_scratch(features, assoc, strategy, cancel, &mut NewtonScratch::default())
}

/// [`solve_with`] with caller-owned Newton scratch buffers, so batched
/// solving pays the scratch allocations once per chunk instead of once per
/// set. The scratch carries no numeric state between solves.
fn solve_with_scratch(
    features: &[&FeatureVector],
    assoc: usize,
    strategy: Strategy,
    cancel: &CancelToken,
    scratch: &mut NewtonScratch,
) -> Result<Equilibrium, ModelError> {
    let a = assoc as f64;
    let k = features.len();
    let active: Vec<usize> = (0..k).filter(|&i| features[i].api() > 0.0).collect();

    if active.is_empty() {
        // Nobody touches the cache: it stays empty and no window exists.
        let diag = SolveDiagnostics::direct(SolveMethod::ClosedForm, 0, 0.0);
        return Ok(Equilibrium::from_sizes(features, vec![0.0; k], 0.0, false, diag));
    }
    if active.len() == 1 {
        return solve_single_active(features, active[0], a);
    }

    let mut order = active;
    order.sort_by_key(|&i| (features[i].content_fingerprint(), i));
    let canon: Vec<&FeatureVector> = order.iter().map(|&i| features[i]).collect();

    let core = if assoc == 1 {
        unit_assoc_core(&canon, cancel)?
    } else {
        match strategy {
            Strategy::Bisection => bisection_core(&canon, a, cancel)?,
            Strategy::Newton => newton_core(&canon, a, cancel, scratch)?,
            Strategy::Robust(opts) => robust_core(&canon, a, opts, cancel)?,
        }
    };

    let mut sizes = vec![0.0; k];
    for (ci, &i) in order.iter().enumerate() {
        sizes[i] = core.sizes[ci];
    }
    Ok(Equilibrium::from_sizes(features, sizes, core.window, core.filled, core.diagnostics))
}

/// Closed form for exactly one active process (possibly among idles): it
/// faces no contention, so it simply gets `min(saturation, A)` ways — no
/// Newton iteration, no bisection.
fn solve_single_active(
    features: &[&FeatureVector],
    idx: usize,
    a: f64,
) -> Result<Equilibrium, ModelError> {
    let f = features[idx];
    let sat = f.occupancy().saturation().min(a);
    let mut sizes = vec![0.0; features.len()];
    let diag = SolveDiagnostics::direct(SolveMethod::ClosedForm, 0, 0.0);
    if sat >= a - 1e-4 {
        // Hungry process: takes the whole cache; the implied window is
        // read straight off the tabulated occupancy curve.
        sizes[idx] = a;
        let window = f.occupancy().g_inverse(a) / f.aps_at(a);
        return Ok(Equilibrium::from_sizes(features, sizes, window, true, diag));
    }
    // Demand saturates below capacity: part of the cache stays empty
    // (same epsilon policy as the iterative cores' infeasible branch).
    sizes[idx] = sat;
    Ok(Equilibrium::from_sizes(features, sizes, WINDOW_CAP, sat >= a - 1e-2, diag))
}

/// Unit-associativity core (`A == 1`, two or more active processes). The
/// occupancy curve is exactly `G(n) = min(n, 1)` and MPA is linear on
/// `[0, 1]`, so the inner solve `S = G(APS(S)·T)` reduces to the smallest
/// root of the quadratic `S·SPI(S) = API·T` — computed exactly. Only the
/// scalar capacity bracket on `T` remains iterative.
fn unit_assoc_core(
    features: &[&FeatureVector],
    cancel: &CancelToken,
) -> Result<CoreSolution, ModelError> {
    let a = 1.0;
    let evals = Cell::new(0usize);
    let size_at = |f: &FeatureVector, t: f64| -> f64 {
        // SPI(S) = alpha·(1 − (1 − m1)·S) + beta on S ∈ [0, 1], where m1
        // is the miss probability at the full single way.
        let m1 = f.histogram().mpa_int(1);
        let curv = f.spi_model().alpha() * (1.0 - m1);
        let b = f.spi_model().alpha() + f.spi_model().beta();
        let rhs = f.api() * t;
        let s = if curv <= 0.0 {
            rhs / b
        } else {
            let disc = b * b - 4.0 * curv * rhs;
            if disc <= 0.0 {
                return 1.0; // no interior fixed point: the way saturates
            }
            (b - disc.sqrt()) / (2.0 * curv)
        };
        s.clamp(0.0, 1.0)
    };
    let total = |t: f64| -> f64 {
        evals.set(evals.get() + 1);
        features.iter().map(|f| size_at(f, t)).sum()
    };

    let fill_eps = 1e-4;
    let mut t_lo = 1e-12;
    let mut t_hi = 1e-9;
    while total(t_hi) < a - fill_eps {
        cancel.check()?;
        t_lo = t_hi;
        t_hi *= 4.0;
        if t_hi > WINDOW_CAP {
            // Unreachable for two or more active processes (each S_i → 1
            // as T grows), kept for symmetry with the generic core.
            let sizes: Vec<f64> = features.iter().map(|f| size_at(f, WINDOW_CAP)).collect();
            let sum: f64 = sizes.iter().sum();
            let diag =
                SolveDiagnostics::direct(SolveMethod::ClosedForm, evals.get(), (sum - a).abs());
            return Ok(CoreSolution {
                sizes,
                window: WINDOW_CAP,
                filled: sum >= a - 1e-2,
                diagnostics: diag,
            });
        }
    }
    let t = if total(t_hi) <= a + fill_eps {
        t_hi
    } else {
        bisect_cancellable(
            |t| total(t) - a,
            t_lo,
            t_hi,
            BisectOptions { x_tol: 0.0, f_tol: 1e-9, max_iter: 500 },
            cancel,
        )
        .map_err(|e| outer_bisection_error("unit-assoc outer bisection", e))?
    };
    let mut sizes: Vec<f64> = features.iter().map(|f| size_at(f, t)).collect();
    let sum: f64 = sizes.iter().sum();
    let residual = (sum - a).abs();
    if sum > 0.0 {
        let scale = a / sum;
        if (scale - 1.0).abs() < 1e-3 {
            for s in &mut sizes {
                *s *= scale;
            }
        }
    }
    let diag = SolveDiagnostics::direct(SolveMethod::ClosedForm, evals.get(), residual);
    Ok(CoreSolution { sizes, window: t, filled: true, diagnostics: diag })
}

/// Keeps a cancellation firing distinguishable from genuine bracket
/// trouble: `Cancelled` stays a typed [`ModelError::Math`] (the serving
/// layer maps it to `deadline_exceeded`), everything else becomes the
/// usual [`ModelError::EquilibriumFailed`].
fn outer_bisection_error(context: &str, e: mathkit::MathError) -> ModelError {
    match e {
        mathkit::MathError::Cancelled => ModelError::Math(e),
        e => ModelError::EquilibriumFailed(format!("{context}: {e}")),
    }
}

/// The nested-bisection core over canonically ordered active features.
fn bisection_core(
    features: &[&FeatureVector],
    a: f64,
    cancel: &CancelToken,
) -> Result<CoreSolution, ModelError> {
    // Total occupancy as a function of the window T (monotone
    // non-decreasing in T). The counter makes outer-solve effort visible
    // in the diagnostics.
    let evals = Cell::new(0usize);
    let total = |t: f64| -> f64 {
        evals.set(evals.get() + 1);
        features.iter().map(|f| size_for_window(f, a, t)).sum()
    };

    // Bracket T: expand upward until the cache is filled (to tolerance)
    // or the inner sizes saturate. `G` approaches the associativity
    // asymptotically, so "filled" must be judged with an epsilon: a lone
    // hungry process reaches `a - 1e-9` ways but never exactly `a`.
    let fill_eps = 1e-4;
    let mut t_lo = 1e-12;
    let mut t_hi = 1e-9;
    while total(t_hi) < a - fill_eps {
        cancel.check()?;
        t_lo = t_hi;
        t_hi *= 4.0;
        if t_hi > WINDOW_CAP {
            // Demand can never fill the cache: return saturated sizes.
            let sizes: Vec<f64> =
                features.iter().map(|f| size_for_window(f, a, WINDOW_CAP)).collect();
            let sum: f64 = sizes.iter().sum();
            let diag = SolveDiagnostics::direct(
                SolveMethod::NestedBisection,
                evals.get(),
                (sum - a).abs(),
            );
            return Ok(CoreSolution {
                sizes,
                window: WINDOW_CAP,
                filled: sum >= a - 1e-2,
                diagnostics: diag,
            });
        }
    }

    // If the expansion landed essentially on the constraint (asymptotic
    // approach from below), accept it; otherwise bisect the crossing.
    let t = if total(t_hi) <= a + fill_eps {
        t_hi
    } else {
        bisect_cancellable(
            |t| total(t) - a,
            t_lo,
            t_hi,
            BisectOptions { x_tol: 0.0, f_tol: 1e-9, max_iter: 500 },
            cancel,
        )
        .map_err(|e| outer_bisection_error("outer bisection", e))?
    };

    let mut sizes: Vec<f64> = features.iter().map(|f| size_for_window(f, a, t)).collect();
    // Distribute any residual capacity error proportionally so the
    // constraint holds exactly (cosmetic: the residual is < 1e-6 ways).
    let sum: f64 = sizes.iter().sum();
    let residual = (sum - a).abs();
    if sum > 0.0 {
        let scale = a / sum;
        if (scale - 1.0).abs() < 1e-3 {
            for s in &mut sizes {
                *s *= scale;
            }
        }
    }
    let diag = SolveDiagnostics::direct(SolveMethod::NestedBisection, evals.get(), residual);
    Ok(CoreSolution { sizes, window: t, filled: true, diagnostics: diag })
}

/// Solves the equilibrium with damped Newton–Raphson on the
/// `(S_1..S_k, T)` system — the paper's §3.3 method.
///
/// The residuals are the normalized window conditions
/// `r_i = 1 - APS_i(S_i) * T / G_i^{-1}(S_i)` plus the capacity constraint
/// `(sum S_i - A) / A`; this is Eq. 7 rearranged to avoid the huge dynamic
/// range of raw `G^{-1}` values.
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] / [`ModelError::EquilibriumFailed`] as for
///   [`solve`], plus Newton non-convergence (rare; seed with [`solve`]'s
///   output if it matters).
pub fn solve_newton(features: &[&FeatureVector], assoc: usize) -> Result<Equilibrium, ModelError> {
    solve_newton_cancellable(features, assoc, &CancelToken::never())
}

/// [`solve_newton`] with cooperative cancellation points (seed solve and
/// Newton iterations). Bit-identical to [`solve_newton`] under a
/// never-firing token.
///
/// # Errors
///
/// Everything [`solve_newton`] returns, plus
/// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
/// `cancel` fires.
pub fn solve_newton_cancellable(
    features: &[&FeatureVector],
    assoc: usize,
    cancel: &CancelToken,
) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    solve_with(features, assoc, Strategy::Newton, cancel)
}

/// [`solve_newton_cancellable`] seeded from a previously solved neighbor
/// equilibrium instead of the cold demand-proportional guess.
///
/// `warm_sizes` / `warm_window` are a candidate starting point in the
/// *caller's* process order (the front-end permutes them canonically along
/// with the features). This entry is strict: if the warm-seeded Newton does
/// not converge it returns an error rather than silently re-solving cold,
/// so callers (the eqcache warm-start path) can count fallbacks and run
/// the cold solver of their choice. Degenerate inputs (≤1 active process,
/// unit associativity) ignore the seed and take the usual closed forms.
///
/// # Errors
///
/// Everything [`solve_newton`] returns, plus non-convergence from the
/// warm seed and a seed-shape mismatch.
pub fn solve_newton_warm_cancellable(
    features: &[&FeatureVector],
    assoc: usize,
    warm_sizes: &[f64],
    warm_window: f64,
    cancel: &CancelToken,
) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    if warm_sizes.len() != features.len() {
        return Err(ModelError::EquilibriumFailed(format!(
            "warm-start seed has {} sizes for {} processes",
            warm_sizes.len(),
            features.len()
        )));
    }
    let a = assoc as f64;
    let k = features.len();
    let active: Vec<usize> = (0..k).filter(|&i| features[i].api() > 0.0).collect();
    if active.len() <= 1 || assoc == 1 {
        // Closed forms: the seed adds nothing and the result is already
        // bit-identical to the cold path.
        return solve_newton_cancellable(features, assoc, cancel);
    }
    let mut order = active;
    order.sort_by_key(|&i| (features[i].content_fingerprint(), i));
    let canon: Vec<&FeatureVector> = order.iter().map(|&i| features[i]).collect();
    let seed: Vec<f64> = order.iter().map(|&i| warm_sizes[i]).collect();
    let sat_sum: f64 = canon.iter().map(|f| f.occupancy().saturation().min(a)).sum();
    if sat_sum < a - 1e-2 {
        // Infeasible capacity constraint: no root for a warm seed to reach.
        return Err(ModelError::EquilibriumFailed(
            "warm-start: saturated demand below capacity".into(),
        ));
    }
    let mut scratch = NewtonScratch::default();
    let core = fast_newton_core(&canon, a, Some((&seed, warm_window)), cancel, &mut scratch)
        .map_err(|e| outer_bisection_error("warm-start newton", e))?;
    let mut sizes = vec![0.0; k];
    for (ci, &i) in order.iter().enumerate() {
        sizes[i] = core.sizes[ci];
    }
    Ok(Equilibrium::from_sizes(features, sizes, core.window, core.filled, core.diagnostics))
}

/// One co-scheduled set in a batched solve: borrowed feature vectors in
/// the caller's slot order. Results come back in the same per-set order.
#[derive(Debug, Clone)]
pub struct CorunSet<'a> {
    /// The co-runners sharing one cache.
    pub features: Vec<&'a FeatureVector>,
}

/// Which solver a batched solve runs per set (mirror of the public
/// per-solve entry points, minus the lifetime coupling of `Strategy`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BatchStrategy {
    Bisection,
    Newton,
    Robust(SolveOptions),
}

/// Solves many co-run sets with the Newton solver, amortizing scratch
/// allocations across sets and fanning chunks of the batch out over
/// `mathkit::parallel` workers.
///
/// Each set's result is **bit-identical** to a standalone
/// [`solve_newton`] call on the same features: sets are solved
/// independently (chunking only changes which thread runs a set, never
/// the arithmetic), and duplicate sets (same feature content, same order)
/// are solved once and cloned.
///
/// # Errors
///
/// The first per-set error in set order, if any ([`solve_newton`]'s
/// errors apply per set).
pub fn solve_batch(sets: &[CorunSet<'_>], assoc: usize) -> Result<Vec<Equilibrium>, ModelError> {
    solve_batch_cancellable(sets, assoc, 0, &CancelToken::never())
}

/// [`solve_batch`] with a worker count (`0` = auto) and cooperative
/// cancellation.
///
/// # Errors
///
/// Everything [`solve_batch`] returns, plus
/// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` once
/// `cancel` fires.
pub fn solve_batch_cancellable(
    sets: &[CorunSet<'_>],
    assoc: usize,
    workers: usize,
    cancel: &CancelToken,
) -> Result<Vec<Equilibrium>, ModelError> {
    let mut out = Vec::with_capacity(sets.len());
    for res in solve_batch_results(sets, assoc, BatchStrategy::Newton, workers, cancel) {
        out.push(res?);
    }
    Ok(out)
}

/// Batch driver shared by the public entry and `PerformanceModel`: solves
/// each set with `strategy`, returning one `Result` per set (so callers
/// like the cache prestage can keep going past individual failures).
///
/// Work is deduplicated on the ordered tuple of content fingerprints
/// (identical sets solve once; the solver is deterministic in exactly
/// those inputs, so a clone is bit-identical to a re-solve) and unique
/// sets are chunked contiguously over `min(workers, n)` parallel workers,
/// each chunk reusing one scratch allocation.
pub(crate) fn solve_batch_results(
    sets: &[CorunSet<'_>],
    assoc: usize,
    strategy: BatchStrategy,
    workers: usize,
    cancel: &CancelToken,
) -> Vec<Result<Equilibrium, ModelError>> {
    use std::collections::BTreeMap;

    // Dedup identical ordered fingerprint tuples.
    let mut first_of: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    let mut rep_of: Vec<usize> = Vec::with_capacity(sets.len());
    let mut uniques: Vec<usize> = Vec::new();
    for (i, set) in sets.iter().enumerate() {
        let key: Vec<u64> = set.features.iter().map(|f| f.content_fingerprint()).collect();
        let rep = *first_of.entry(key).or_insert(i);
        if rep == i {
            uniques.push(i);
        }
        rep_of.push(rep);
    }

    // Contiguous chunks over the unique sets; each chunk runs sequentially
    // with one scratch, chunks run in parallel.
    let n = uniques.len();
    let workers = resolve_workers(workers).min(n).max(1);
    let chunk_len = n.div_ceil(workers.max(1)).max(1);
    let ranges: Vec<(usize, usize)> =
        (0..workers).map(|c| (c * chunk_len, ((c + 1) * chunk_len).min(n))).collect();
    let chunk_results: Vec<Vec<(usize, Result<Equilibrium, ModelError>)>> =
        par_map(ranges, workers, |_, (lo, hi)| {
            let mut scratch = NewtonScratch::default();
            let mut out = Vec::with_capacity(hi.saturating_sub(lo));
            for &set_idx in &uniques[lo.min(n)..hi] {
                out.push((
                    set_idx,
                    solve_batch_one(&sets[set_idx], assoc, strategy, cancel, &mut scratch),
                ));
            }
            out
        });

    let mut solved: BTreeMap<usize, Result<Equilibrium, ModelError>> = BTreeMap::new();
    for chunk in chunk_results {
        for (set_idx, res) in chunk {
            solved.insert(set_idx, res);
        }
    }

    // Scatter back to set order; duplicates clone their representative's
    // answer (or re-solve on the rare error, which is deterministic and
    // therefore reproduces the representative's error exactly).
    let mut scratch = NewtonScratch::default();
    let mut out: Vec<Result<Equilibrium, ModelError>> = Vec::with_capacity(sets.len());
    for (i, set) in sets.iter().enumerate() {
        let rep = rep_of[i];
        let res = match solved.get(&rep) {
            Some(Ok(eq)) => Ok(eq.clone()),
            _ => solve_batch_one(set, assoc, strategy, cancel, &mut scratch),
        };
        out.push(res);
    }
    out
}

/// One set of a batch: the same validation + solve chain as the matching
/// standalone entry point, with caller-owned scratch.
fn solve_batch_one(
    set: &CorunSet<'_>,
    assoc: usize,
    strategy: BatchStrategy,
    cancel: &CancelToken,
    scratch: &mut NewtonScratch,
) -> Result<Equilibrium, ModelError> {
    let features = &set.features;
    validate(features, assoc)?;
    match strategy {
        BatchStrategy::Bisection => {
            solve_with_scratch(features, assoc, Strategy::Bisection, cancel, scratch)
        }
        BatchStrategy::Newton => {
            solve_with_scratch(features, assoc, Strategy::Newton, cancel, scratch)
        }
        BatchStrategy::Robust(opts) => {
            for f in features.iter() {
                crate::validate::feature_vector(f)?;
            }
            solve_with_scratch(features, assoc, Strategy::Robust(&opts), cancel, scratch)
        }
    }
}

/// The damped-Newton core over canonically ordered active features.
///
/// Dispatch: a cheap O(k) saturation precheck sends infeasible inputs to
/// [`bisection_core`] (which produces the canonical saturated answer, same
/// as the legacy path that seeded Newton from a full bisection solve);
/// feasible inputs go to the analytic-Jacobian fast path, and any fast-path
/// failure falls back to the legacy bisection-seeded finite-difference
/// Newton so the result is always well-defined.
fn newton_core(
    features: &[&FeatureVector],
    a: f64,
    cancel: &CancelToken,
    scratch: &mut NewtonScratch,
) -> Result<CoreSolution, ModelError> {
    // If total saturated demand cannot fill the cache there is no root for
    // Newton to find; the bisection core's saturated branch is the answer
    // (bit-identical to what the legacy seed-then-return path produced).
    let sat_sum: f64 = features.iter().map(|f| f.occupancy().saturation().min(a)).sum();
    if sat_sum < a - 1e-2 {
        return bisection_core(features, a, cancel);
    }
    match fast_newton_core(features, a, None, cancel, scratch) {
        Ok(core) => Ok(core),
        Err(mathkit::MathError::Cancelled) => Err(ModelError::Math(mathkit::MathError::Cancelled)),
        // Near-infeasible or pathological curvature: the legacy path is
        // slower but seeds from a guaranteed bisection solve.
        Err(_) => newton_core_legacy(features, a, cancel),
    }
}

/// The pre-optimization Newton core: seed from a full nested-bisection
/// solve, then polish with finite-difference Newton. Kept as the fallback
/// for inputs the analytic fast path rejects.
fn newton_core_legacy(
    features: &[&FeatureVector],
    a: f64,
    cancel: &CancelToken,
) -> Result<CoreSolution, ModelError> {
    let k = features.len();

    // Initial guess: proportional to demand at a common mid-range window.
    let bisection_seed = bisection_core(features, a, cancel)?;
    if !bisection_seed.filled {
        // Infeasible constraint: Newton has no root to find; return the
        // saturated solution directly (same as the paper would observe —
        // the cache simply is not full).
        return Ok(bisection_seed);
    }
    let mut x0: Vec<f64> = bisection_seed.sizes.iter().map(|&s| s * 0.9 + 0.1).collect();
    x0.push(bisection_seed.window * 1.1);

    let opts = NewtonOptions { tol: 1e-7, max_iter: 200, fd_step: 1e-6, max_backtrack: 40 };
    let sol = newton_system(features, a, &x0, opts, cancel)
        .map_err(|e| outer_bisection_error("newton", e))?;

    let sizes = sol.x[..k].to_vec();
    let window = sol.x[k];
    let diag = SolveDiagnostics::direct(SolveMethod::DampedNewton, sol.iterations, sol.residual);
    Ok(CoreSolution { sizes, window, filled: true, diagnostics: diag })
}

/// Reusable buffers for [`fast_newton_core`]: one allocation set per batch
/// chunk instead of per solve. Buffers are fully overwritten before use, so
/// a shared scratch is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub(crate) struct NewtonScratch {
    sizes: Vec<f64>,
    res: Vec<f64>,
    diag: Vec<f64>,
    wcol: Vec<f64>,
    step: Vec<f64>,
    cand: Vec<f64>,
    cand_res: Vec<f64>,
    cand_diag: Vec<f64>,
    cand_wcol: Vec<f64>,
}

/// Residual tolerance of the fast Newton path — same as the legacy
/// finite-difference path so both converge to the same fixed points.
const FAST_TOL: f64 = 1e-7;
const FAST_MAX_ITER: usize = 200;
const FAST_MAX_BACKTRACK: usize = 40;
/// A finite stand-in for "infinitely wrong": steers the line search away
/// without non-finite contagion (same constant as [`newton_system`]).
const FAST_PENALTY: f64 = 1e6;

/// Evaluates the normalized residual system *and* its analytic arrow-shaped
/// Jacobian structure in one pass over the flattened curve tables:
///
/// - `r[i] = 1 - APS_i(S_i)·T / G_i⁻¹(S_i)` for each process,
///   `r[k] = (ΣS_i - A)/A` for the capacity row;
/// - `d[i] = ∂r_i/∂S_i = -T·(APS_i'·G⁻¹ - APS_i·(G⁻¹)') / (G⁻¹)²`;
/// - `w[i] = ∂r_i/∂T  = -APS_i / G⁻¹`.
///
/// Off-diagonal size couplings are exactly zero (process `i`'s window
/// condition only sees its own size), which is what makes the Newton step
/// solvable in O(k) instead of O(k³). Returns the residual infinity norm.
fn fast_eval(
    features: &[&FeatureVector],
    a: f64,
    sizes: &[f64],
    t: f64,
    r: &mut [f64],
    d: &mut [f64],
    w: &mut [f64],
) -> f64 {
    let k = features.len();
    let mut norm = 0.0f64;
    let mut sum = 0.0f64;
    for i in 0..k {
        let s = sizes[i];
        sum += s;
        let (aps, daps) = features[i].aps_with_slope(s);
        let (g0, gs) = features[i].occupancy().g_inverse_with_slope(s);
        let ginv = g0.max(1e-12);
        let ri = 1.0 - aps * t / ginv;
        let ri = if ri.is_finite() { ri } else { FAST_PENALTY };
        r[i] = ri;
        d[i] = -t * (daps * ginv - aps * gs) / (ginv * ginv);
        w[i] = -aps / ginv;
        norm = norm.max(ri.abs());
    }
    let rc = (sum - a) / a;
    let rc = if rc.is_finite() { rc } else { FAST_PENALTY };
    r[k] = rc;
    norm.max(rc.abs())
}

/// Damped Newton on the `(S_1..S_k, T)` system with the analytic arrow
/// Jacobian from [`fast_eval`]. Seeded either warm (a neighbor solution)
/// or cold (demand-proportional sizes, geometric-mean window — the same
/// shape as `solve_robust`'s first attempt). Errors are typed so the
/// caller can fall back; `Cancelled` always propagates.
fn fast_newton_core(
    features: &[&FeatureVector],
    a: f64,
    warm: Option<(&[f64], f64)>,
    cancel: &CancelToken,
    scratch: &mut NewtonScratch,
) -> Result<CoreSolution, mathkit::MathError> {
    let k = features.len();
    let NewtonScratch { sizes, res, diag, wcol, step, cand, cand_res, cand_diag, cand_wcol } =
        scratch;
    sizes.clear();
    let mut t = match warm {
        Some((warm_sizes, warm_window)) => {
            if warm_sizes.iter().any(|s| !s.is_finite())
                || !warm_window.is_finite()
                || warm_window <= 0.0
            {
                return Err(mathkit::MathError::NonFinite("warm-start seed".into()));
            }
            sizes.extend(warm_sizes.iter().map(|s| s.clamp(0.02, a)));
            warm_window.clamp(1e-15, 1e12)
        }
        None => {
            // Demand-proportional sizes at a geometric-mean window: the
            // same cold seed shape as solve_robust's first attempt.
            let api_total: f64 = features.iter().map(|f| f.api()).sum();
            if api_total.is_nan() || api_total <= 0.0 {
                return Err(mathkit::MathError::NonFinite("zero total API".into()));
            }
            sizes.extend(features.iter().map(|f| (a * f.api() / api_total).clamp(0.05, a)));
            let mut log_t = 0.0;
            for (i, f) in features.iter().enumerate() {
                let ginv = f.occupancy().g_inverse_with_slope(sizes[i]).0.max(1e-12);
                let aps = f.aps_with_slope(sizes[i]).0.max(1e-12);
                log_t += (ginv / aps).ln();
            }
            let t0 = (log_t / k as f64).exp();
            if !t0.is_finite() {
                return Err(mathkit::MathError::NonFinite("cold window seed".into()));
            }
            t0.clamp(1e-15, 1e12)
        }
    };
    res.clear();
    res.resize(k + 1, 0.0);
    diag.clear();
    diag.resize(k, 0.0);
    wcol.clear();
    wcol.resize(k, 0.0);
    step.clear();
    step.resize(k, 0.0);
    cand.clear();
    cand.resize(k, 0.0);
    cand_res.clear();
    cand_res.resize(k + 1, 0.0);
    cand_diag.clear();
    cand_diag.resize(k, 0.0);
    cand_wcol.clear();
    cand_wcol.resize(k, 0.0);

    let mut norm = fast_eval(features, a, sizes, t, res, diag, wcol);
    for iter in 0..FAST_MAX_ITER {
        cancel.check()?;
        if norm <= FAST_TOL {
            return Ok(CoreSolution {
                sizes: sizes.clone(),
                window: t,
                filled: true,
                diagnostics: SolveDiagnostics::direct(SolveMethod::DampedNewton, iter, norm),
            });
        }

        // Arrow solve for the Newton step: eliminate each ΔS_i from its own
        // row (ΔS_i = (-r_i - w_i·ΔT)/d_i), substitute into the capacity
        // row Σ ΔS_i = -A·r_c, and solve the remaining scalar for ΔT.
        let mut sum_rinv = 0.0f64;
        let mut sum_winv = 0.0f64;
        for i in 0..k {
            let di = diag[i];
            if !di.is_finite() || di.abs() < 1e-300 {
                return Err(mathkit::MathError::Singular);
            }
            sum_rinv += -res[i] / di;
            sum_winv += wcol[i] / di;
        }
        if !sum_winv.is_finite() || sum_winv.abs() < 1e-300 {
            return Err(mathkit::MathError::Singular);
        }
        let dt = (sum_rinv + a * res[k]) / sum_winv;
        if !dt.is_finite() {
            return Err(mathkit::MathError::NonFinite(format!("newton step at iteration {iter}")));
        }
        for i in 0..k {
            step[i] = (-res[i] - wcol[i] * dt) / diag[i];
        }

        // Backtracking line search on the residual norm (same clamps as
        // the legacy newton_system: sizes in [0.02, A], window >= 1e-15).
        let mut tau = 1.0f64;
        let mut accepted = false;
        for _ in 0..=FAST_MAX_BACKTRACK {
            for i in 0..k {
                cand[i] = (sizes[i] + tau * step[i]).clamp(0.02, a);
            }
            let tc = (t + tau * dt).max(1e-15);
            let rn = fast_eval(features, a, cand, tc, cand_res, cand_diag, cand_wcol);
            // fast_eval maps non-finite residual components to a finite
            // penalty, so accepting on rn < norm cannot smuggle a NaN in.
            if rn < norm {
                std::mem::swap(sizes, cand);
                std::mem::swap(res, cand_res);
                std::mem::swap(diag, cand_diag);
                std::mem::swap(wcol, cand_wcol);
                t = tc;
                norm = rn;
                accepted = true;
                break;
            }
            tau *= 0.5;
        }
        if !accepted {
            // Stuck: no descent even with tiny steps. Accept the best point
            // if it is reasonably converged (same policy as mathkit's
            // finite-difference Newton), otherwise report non-convergence.
            if norm <= FAST_TOL * 100.0 {
                return Ok(CoreSolution {
                    sizes: sizes.clone(),
                    window: t,
                    filled: true,
                    diagnostics: SolveDiagnostics::direct(
                        SolveMethod::DampedNewton,
                        iter + 1,
                        norm,
                    ),
                });
            }
            return Err(mathkit::MathError::NoConvergence { iterations: iter + 1, residual: norm });
        }
    }

    if norm <= FAST_TOL {
        Ok(CoreSolution {
            sizes: sizes.clone(),
            window: t,
            filled: true,
            diagnostics: SolveDiagnostics::direct(SolveMethod::DampedNewton, FAST_MAX_ITER, norm),
        })
    } else {
        Err(mathkit::MathError::NoConvergence { iterations: FAST_MAX_ITER, residual: norm })
    }
}

/// Runs damped Newton on the `(S_1..S_k, T)` system from `x0` — shared by
/// [`solve_newton`] and the first stages of [`solve_robust`].
///
/// The residual is guarded against NaN/Inf poisoning: any non-finite
/// intermediate (a corrupted MPA sample, a zero SPI, a wild `G⁻¹`) is
/// mapped to a large finite penalty so the line search backs away from it
/// instead of propagating the NaN through the Jacobian.
fn newton_system(
    features: &[&FeatureVector],
    a: f64,
    x0: &[f64],
    opts: NewtonOptions,
    cancel: &CancelToken,
) -> Result<mathkit::newton::NewtonSolution, mathkit::MathError> {
    newton_system_workspace(features, a, x0, opts, cancel, &mut NewtonWorkspace::default())
}

/// [`newton_system`] with caller-owned Jacobian scratch (reused across
/// `solve_robust`'s retry attempts).
fn newton_system_workspace(
    features: &[&FeatureVector],
    a: f64,
    x0: &[f64],
    opts: NewtonOptions,
    cancel: &CancelToken,
    ws: &mut NewtonWorkspace,
) -> Result<mathkit::newton::NewtonSolution, mathkit::MathError> {
    let k = features.len();
    let lo = 0.02;
    let clamp = move |v: &[f64]| -> Vec<f64> {
        let mut out = Vec::with_capacity(v.len());
        for (i, &x) in v.iter().enumerate() {
            if i < k {
                out.push(x.clamp(lo, a));
            } else {
                out.push(x.max(1e-15));
            }
        }
        out
    };

    // A finite stand-in for "infinitely wrong": steers the line search
    // away without the non-finite contagion that would sink the Jacobian.
    const PENALTY: f64 = 1e6;
    let feats: Vec<&FeatureVector> = features.to_vec();
    let residual = move |v: &[f64]| -> Vec<f64> {
        let t = v[k];
        let mut r = Vec::with_capacity(k + 1);
        for (i, f) in feats.iter().enumerate() {
            let s = v[i];
            let ginv = f.occupancy().g_inverse(s).max(1e-12);
            let ri = 1.0 - f.aps_at(s) * t / ginv;
            r.push(if ri.is_finite() { ri } else { PENALTY });
        }
        let sum: f64 = v[..k].iter().sum();
        let rc = (sum - a) / a;
        r.push(if rc.is_finite() { rc } else { PENALTY });
        r
    };

    newton_raphson_workspace_cancellable(residual, x0, clamp, opts, cancel, ws)
}

/// Solves the equilibrium through a staged fallback chain that cannot
/// panic and only fails on invalid *inputs*, never on solver trouble:
///
/// 1. **Damped Newton** from a demand-proportional seed.
/// 2. **Perturbed Newton restarts** (`newton_retries` of them) when the
///    first attempt diverges or converges to an infeasible point.
/// 3. **Bounded fixed-point iteration** on the inner occupancy solves
///    with a bisection outer loop (guaranteed for monotone curves).
/// 4. **Proportional-to-API heuristic split** — a last resort that
///    always produces finite sizes summing to `A`, flagged
///    [`SolveDiagnostics::degraded`].
///
/// Inputs are validated with [`crate::validate::feature_vector`] first,
/// and every abandoned stage is recorded in the returned
/// [`Equilibrium::diagnostics`]. A wall-clock budget
/// ([`SolveOptions::time_budget_s`]) bounds the whole chain; when it
/// runs out, remaining stages are skipped.
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] / [`ModelError::EquilibriumFailed`] for
///   structurally invalid inputs (as for [`solve`]).
/// - [`ModelError::UnusableProfile`] / [`ModelError::NonFinite`] /
///   [`ModelError::InvalidDistribution`] when a feature vector fails
///   validation.
pub fn solve_robust(
    features: &[&FeatureVector],
    assoc: usize,
    opts: &SolveOptions,
) -> Result<Equilibrium, ModelError> {
    solve_robust_cancellable(features, assoc, opts, &CancelToken::never())
}

/// [`solve_robust`] with cooperative cancellation points in every stage
/// of the fallback chain (Newton iterations, fixed-point outer loop,
/// bracket expansions).
///
/// A fired token stops the chain immediately with
/// [`ModelError::Math`]`(`[`mathkit::MathError::Cancelled`]`)` — it does
/// *not* fall through to the proportional heuristic, because a caller
/// that imposed a deadline wants the worker back, not a degraded answer
/// it no longer has time to use (the serving layer decides separately
/// whether to answer degraded). Bit-identical to [`solve_robust`] under
/// a never-firing token.
///
/// # Errors
///
/// Everything [`solve_robust`] returns, plus the cancellation error.
pub fn solve_robust_cancellable(
    features: &[&FeatureVector],
    assoc: usize,
    opts: &SolveOptions,
    cancel: &CancelToken,
) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    for f in features {
        crate::validate::feature_vector(f)?;
    }
    solve_with(features, assoc, Strategy::Robust(opts), cancel)
}

/// The proportional-to-API closed-form split — [`solve_robust`]'s stage-4
/// last resort, exposed directly so the serving layer's circuit breaker
/// can answer degraded requests without running (and failing) the full
/// chain first.
///
/// Always succeeds on valid inputs, never iterates, and is explicitly
/// flagged [`SolveDiagnostics::degraded`] (method
/// [`SolveMethod::ProportionalShare`], window 0): the split ignores the
/// equilibrium condition entirely. Idle (`API == 0`) processes get zero
/// ways, actives split `A` proportionally to API; the shares are summed
/// in canonical fingerprint order so the result is bit-independent of
/// the caller's process order, like the full solvers.
///
/// # Errors
///
/// [`ModelError::EmptyInput`] / [`ModelError::EquilibriumFailed`] for
/// structurally invalid inputs, as for [`solve`].
pub fn solve_proportional(
    features: &[&FeatureVector],
    assoc: usize,
) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    let a = assoc as f64;
    let k = features.len();
    let active: Vec<usize> = (0..k).filter(|&i| features[i].api() > 0.0).collect();
    if active.is_empty() {
        let diag = SolveDiagnostics::direct(SolveMethod::ClosedForm, 0, 0.0);
        return Ok(Equilibrium::from_sizes(features, vec![0.0; k], 0.0, false, diag));
    }
    let mut order = active;
    order.sort_by_key(|&i| (features[i].content_fingerprint(), i));
    let api_total: f64 = order.iter().map(|&i| features[i].api()).sum();
    let mut sizes = vec![0.0; k];
    for &i in &order {
        sizes[i] = a * features[i].api() / api_total;
    }
    let diag = SolveDiagnostics {
        method: SolveMethod::ProportionalShare,
        iterations: 0,
        residual: 0.0,
        fallbacks: Vec::new(),
        degraded: true,
    };
    Ok(Equilibrium::from_sizes(features, sizes, 0.0, true, diag))
}

/// The staged fallback chain over canonically ordered active features.
fn robust_core(
    features: &[&FeatureVector],
    a: f64,
    opts: &SolveOptions,
    cancel: &CancelToken,
) -> Result<CoreSolution, ModelError> {
    let k = features.len();
    #[allow(clippy::disallowed_methods)]
    // lint:allow(determinism) -- diagnostics-only: wall time feeds SolveDiagnostics.elapsed, never the solution itself
    let start = Instant::now();
    let mut fallbacks: Vec<FallbackEvent> = Vec::new();
    cancel.check()?;

    // Infeasible capacity constraint: if demand saturates below `A` even
    // at an effectively infinite window, no equilibrium root exists.
    // Answer with the saturated sizes directly, as `solve` does.
    let sat_sizes: Vec<f64> = features.iter().map(|f| size_for_window(f, a, WINDOW_CAP)).collect();
    let sat_sum: f64 = sat_sizes.iter().sum();
    if sat_sum < a - 1e-2 {
        let diag = SolveDiagnostics::direct(SolveMethod::NestedBisection, k, 0.0);
        return Ok(CoreSolution {
            sizes: sat_sizes,
            window: WINDOW_CAP,
            filled: false,
            diagnostics: diag,
        });
    }

    // Stages 1 + 2: damped Newton from a demand-proportional seed, then
    // deterministic perturbed restarts. The perturbations shift both the
    // size split and the window guess so a restart explores a genuinely
    // different basin instead of retracing the failed path.
    let api_total: f64 = features.iter().map(|f| f.api()).sum();
    let newton_opts = NewtonOptions {
        tol: opts.tol,
        max_iter: opts.max_newton_iter,
        fd_step: 1e-6,
        max_backtrack: 40,
    };
    let window_factors = [1.0, 0.25, 4.0, 0.05, 20.0];
    let mut nws = NewtonWorkspace::default();
    for attempt in 0..=opts.newton_retries {
        let stage =
            if attempt == 0 { SolveMethod::DampedNewton } else { SolveMethod::ReseededNewton };
        cancel.check()?;
        if start.elapsed().as_secs_f64() > opts.time_budget_s {
            fallbacks.push(FallbackEvent { stage, reason: "time budget exhausted".into() });
            break;
        }
        let mut x0 = Vec::with_capacity(k + 1);
        for (i, f) in features.iter().enumerate() {
            let base = a * f.api() / api_total;
            let sign = if (i + attempt) % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = 1.0 + 0.3 * attempt as f64 * sign;
            x0.push((base * jitter).clamp(0.05, a));
        }
        // Window seed: geometric mean of each process's implied window
        // G⁻¹(S_i) / APS(S_i) at the seed sizes.
        let mut log_t = 0.0;
        for (f, &s) in features.iter().zip(&x0) {
            let ginv = f.occupancy().g_inverse(s).max(1e-12);
            let aps = f.aps_at(s).max(1e-12);
            log_t += (ginv / aps).ln();
        }
        let t0 = (log_t / k as f64).exp() * window_factors[attempt % window_factors.len()];
        x0.push(t0.clamp(1e-15, 1e12));

        match newton_system_workspace(features, a, &x0, newton_opts, cancel, &mut nws) {
            Err(mathkit::MathError::Cancelled) => {
                return Err(ModelError::Math(mathkit::MathError::Cancelled))
            }
            Ok(sol) => {
                let sizes = sol.x[..k].to_vec();
                let window = sol.x[k];
                let sum: f64 = sizes.iter().sum();
                let feasible = sizes.iter().all(|s| s.is_finite() && *s >= 0.0)
                    && window.is_finite()
                    && window > 0.0
                    && (sum - a).abs() <= 0.01 * a;
                if feasible {
                    let diag = SolveDiagnostics {
                        method: stage,
                        iterations: sol.iterations,
                        residual: sol.residual,
                        fallbacks,
                        degraded: false,
                    };
                    return Ok(CoreSolution { sizes, window, filled: true, diagnostics: diag });
                }
                fallbacks.push(FallbackEvent {
                    stage,
                    reason: format!(
                        "converged to infeasible point (sizes sum {sum:.4} vs capacity {a})"
                    ),
                });
            }
            Err(e) => fallbacks.push(FallbackEvent { stage, reason: e.to_string() }),
        }
    }

    // Stage 3: bounded fixed-point iteration (bisection outer loop).
    if start.elapsed().as_secs_f64() <= opts.time_budget_s {
        match solve_fixed_point_stage(features, a, opts, cancel) {
            Err(ModelError::Math(mathkit::MathError::Cancelled)) => {
                return Err(ModelError::Math(mathkit::MathError::Cancelled))
            }
            Ok((sizes, t, iterations, residual)) => {
                let diag = SolveDiagnostics {
                    method: SolveMethod::FixedPoint,
                    iterations,
                    residual,
                    fallbacks,
                    degraded: false,
                };
                return Ok(CoreSolution { sizes, window: t, filled: true, diagnostics: diag });
            }
            Err(e) => fallbacks
                .push(FallbackEvent { stage: SolveMethod::FixedPoint, reason: e.to_string() }),
        }
    } else {
        fallbacks.push(FallbackEvent {
            stage: SolveMethod::FixedPoint,
            reason: "time budget exhausted".into(),
        });
    }

    // Stage 4: proportional-to-API heuristic. The front-end guarantees
    // every API here is positive, so the split is well defined, finite,
    // and sums to `A` exactly. The window is not meaningful here and
    // reported as 0.
    let sizes: Vec<f64> = features.iter().map(|f| a * f.api() / api_total).collect();
    let diag = SolveDiagnostics {
        method: SolveMethod::ProportionalShare,
        iterations: 0,
        residual: 0.0,
        fallbacks,
        degraded: true,
    };
    Ok(CoreSolution { sizes, window: 0.0, filled: true, diagnostics: diag })
}

/// The chain's stage 3: inner occupancy solves by bounded damped
/// fixed-point iteration (falling back to bisection per-evaluation if the
/// iteration stalls), outer capacity solve by bracketed bisection.
/// Returns `(sizes, window, iterations, residual)`.
fn solve_fixed_point_stage(
    features: &[&FeatureVector],
    a: f64,
    opts: &SolveOptions,
    cancel: &CancelToken,
) -> Result<(Vec<f64>, f64, usize, f64), ModelError> {
    let fp_opts =
        FixedPointOptions { tol: 1e-9, max_iter: opts.max_fixed_point_iter, damping: 0.5 };
    let iters = Cell::new(0usize);
    // `S = G(APS(S)·T)` is a monotone map; iterating up from 0 with
    // damping converges to the smallest fixed point. If the iteration
    // budget runs out (slowly saturating curves), the guaranteed
    // bisection inner solve answers for that evaluation instead.
    let size_at = |f: &FeatureVector, t: f64| -> f64 {
        match fixed_point(|s| f.occupancy().g(f.aps_at(s) * t), 0.0, 0.0, a, fp_opts) {
            Ok(sol) => {
                iters.set(iters.get() + sol.iterations + 1);
                sol.x
            }
            Err(_) => {
                iters.set(iters.get() + opts.max_fixed_point_iter);
                size_for_window(f, a, t)
            }
        }
    };
    let total = |t: f64| -> f64 { features.iter().map(|f| size_at(f, t)).sum() };

    let fill_eps = 1e-4;
    let mut t_lo = 1e-12;
    let mut t_hi = 1e-9;
    let cap = 1e9;
    while total(t_hi) < a - fill_eps {
        cancel.check()?;
        t_lo = t_hi;
        t_hi *= 4.0;
        if t_hi > cap {
            return Err(ModelError::EquilibriumFailed(
                "fixed-point stage: demand saturates below capacity".into(),
            ));
        }
    }
    let t = if total(t_hi) <= a + fill_eps {
        t_hi
    } else {
        bisect_cancellable(
            |t| total(t) - a,
            t_lo,
            t_hi,
            BisectOptions { x_tol: 0.0, f_tol: 1e-9, max_iter: 500 },
            cancel,
        )
        .map_err(|e| outer_bisection_error("fixed-point outer bisection", e))?
    };

    let mut sizes: Vec<f64> = features.iter().map(|f| size_at(f, t)).collect();
    let sum: f64 = sizes.iter().sum();
    let residual = (sum - a).abs();
    if !residual.is_finite() {
        return Err(ModelError::NonFinite("fixed-point stage produced non-finite sizes".into()));
    }
    if sum > 0.0 {
        let scale = a / sum;
        if (scale - 1.0).abs() < 1e-3 {
            for s in &mut sizes {
                *s *= scale;
            }
        }
    }
    Ok((sizes, t, iters.get(), residual))
}

fn validate(features: &[&FeatureVector], assoc: usize) -> Result<(), ModelError> {
    if features.is_empty() {
        return Err(ModelError::EmptyInput("equilibrium needs at least one process"));
    }
    if assoc == 0 {
        return Err(ModelError::EquilibriumFailed("associativity must be positive".into()));
    }
    for f in features {
        if f.assoc() != assoc {
            return Err(ModelError::EquilibriumFailed(format!(
                "feature vector '{}' was built for {} ways, cache has {assoc}",
                f.name(),
                f.assoc()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::machine::MachineConfig;
    use workloads::spec::SpecWorkload;

    fn fv(w: SpecWorkload) -> FeatureVector {
        FeatureVector::from_workload(&w.params(), &MachineConfig::four_core_server()).unwrap()
    }

    #[test]
    fn pair_fills_cache_exactly() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.cache_filled);
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-6);
        assert!(eq.sizes.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn hog_beats_friendly_workload() {
        let hog = fv(SpecWorkload::Mcf);
        let friendly = fv(SpecWorkload::Gzip);
        let eq = solve(&[&hog, &friendly], 16).unwrap();
        assert!(eq.sizes[0] > 3.0 * eq.sizes[1], "mcf {} vs gzip {}", eq.sizes[0], eq.sizes[1]);
    }

    #[test]
    fn symmetric_pair_splits_evenly() {
        let a = fv(SpecWorkload::Twolf);
        let b = fv(SpecWorkload::Twolf);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!((eq.sizes[0] - eq.sizes[1]).abs() < 1e-4, "{:?}", eq.sizes);
        assert!((eq.sizes[0] - 8.0).abs() < 1e-3);
    }

    #[test]
    fn contention_degrades_both() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        let alone_a = solve(&[&a], 16).unwrap();
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.spis[0] > alone_a.spis[0], "shared must be slower");
        assert!(eq.mpas[0] > alone_a.mpas[0]);
    }

    #[test]
    fn single_process_takes_whole_cache_if_hungry() {
        let a = fv(SpecWorkload::Mcf);
        let eq = solve(&[&a], 16).unwrap();
        assert!(eq.sizes[0] > 15.9, "{}", eq.sizes[0]);
        assert!(eq.cache_filled);
    }

    #[test]
    fn spi_consistent_with_mpa() {
        let a = fv(SpecWorkload::Vpr);
        let b = fv(SpecWorkload::Ammp);
        let eq = solve(&[&a, &b], 16).unwrap();
        for (i, f) in [&a, &b].iter().enumerate() {
            assert!((eq.mpas[i] - f.mpa(eq.sizes[i])).abs() < 1e-9);
            assert!((eq.spis[i] - f.spi_model().spi(eq.mpas[i])).abs() < 1e-15);
            assert!((eq.apss[i] - f.api() / eq.spis[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn four_way_sharing() {
        let feats = [
            fv(SpecWorkload::Mcf),
            fv(SpecWorkload::Gzip),
            fv(SpecWorkload::Art),
            fv(SpecWorkload::Twolf),
        ];
        let refs: Vec<&FeatureVector> = feats.iter().collect();
        let eq = solve(&refs, 16).unwrap();
        assert!(eq.cache_filled);
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-6);
        // The memory hogs should outrank the friendly ones.
        assert!(eq.sizes[0] > eq.sizes[1], "{:?}", eq.sizes);
        assert!(eq.sizes[2] > eq.sizes[1], "{:?}", eq.sizes);
    }

    #[test]
    fn newton_agrees_with_bisection() {
        let pairs = [
            (SpecWorkload::Mcf, SpecWorkload::Gzip),
            (SpecWorkload::Art, SpecWorkload::Twolf),
            (SpecWorkload::Equake, SpecWorkload::Ammp),
            (SpecWorkload::Vpr, SpecWorkload::Bzip2),
        ];
        for (wa, wb) in pairs {
            let a = fv(wa);
            let b = fv(wb);
            let bis = solve(&[&a, &b], 16).unwrap();
            let newt = solve_newton(&[&a, &b], 16).unwrap();
            for i in 0..2 {
                assert!(
                    (bis.sizes[i] - newt.sizes[i]).abs() < 0.05,
                    "{wa}/{wb} proc {i}: bisect {} vs newton {}",
                    bis.sizes[i],
                    newt.sizes[i]
                );
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(solve(&[], 16), Err(ModelError::EmptyInput(_))));
    }

    #[test]
    fn assoc_mismatch_rejected() {
        let a = fv(SpecWorkload::Gzip); // built for 16 ways
        assert!(matches!(solve(&[&a], 12), Err(ModelError::EquilibriumFailed(_))));
    }

    #[test]
    fn window_is_positive() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.window > 0.0);
    }

    #[test]
    fn solve_reports_bisection_diagnostics() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::NestedBisection);
        assert!(eq.diagnostics.iterations > 0);
        assert!(eq.diagnostics.fallbacks.is_empty());
        assert!(!eq.diagnostics.degraded);
        assert!(eq.diagnostics.summary().contains("nested-bisection"));
    }

    #[test]
    fn robust_agrees_with_bisection() {
        let pairs = [
            (SpecWorkload::Mcf, SpecWorkload::Gzip),
            (SpecWorkload::Art, SpecWorkload::Twolf),
            (SpecWorkload::Vpr, SpecWorkload::Bzip2),
        ];
        for (wa, wb) in pairs {
            let a = fv(wa);
            let b = fv(wb);
            let bis = solve(&[&a, &b], 16).unwrap();
            let rob = solve_robust(&[&a, &b], 16, &SolveOptions::default()).unwrap();
            assert!(!rob.diagnostics.degraded, "{wa}/{wb}: {:?}", rob.diagnostics);
            for i in 0..2 {
                assert!(
                    (bis.sizes[i] - rob.sizes[i]).abs() < 0.05,
                    "{wa}/{wb} proc {i}: bisect {} vs robust {}",
                    bis.sizes[i],
                    rob.sizes[i]
                );
            }
        }
    }

    #[test]
    fn robust_falls_back_when_newton_budget_is_tiny() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        // tol = 0 makes Newton convergence impossible: the chain must fall
        // through to the fixed-point stage and still nail the constraint.
        let opts =
            SolveOptions { tol: 0.0, max_newton_iter: 2, newton_retries: 1, ..Default::default() };
        let eq = solve_robust(&[&a, &b], 16, &opts).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::FixedPoint, "{:?}", eq.diagnostics);
        assert_eq!(eq.diagnostics.fallbacks.len(), 2, "{:?}", eq.diagnostics.fallbacks);
        assert!(!eq.diagnostics.degraded);
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-6);
        assert!(eq.spis.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn robust_exhausted_budget_degrades_to_heuristic() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let opts = SolveOptions { time_budget_s: 0.0, ..Default::default() };
        let eq = solve_robust(&[&a, &b], 16, &opts).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::ProportionalShare);
        assert!(eq.diagnostics.degraded);
        assert!(!eq.diagnostics.fallbacks.is_empty());
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-9);
        assert!(eq.sizes.iter().all(|s| s.is_finite() && *s > 0.0));
        assert!(eq.spis.iter().all(|s| s.is_finite() && *s > 0.0));
        assert!(eq.diagnostics.summary().contains("DEGRADED"));
    }

    fn idle_fv(assoc: usize) -> FeatureVector {
        use crate::histogram::ReuseHistogram;
        use crate::spi::SpiModel;
        FeatureVector::new(
            "idle",
            ReuseHistogram::new(vec![], 1.0).unwrap(),
            0.0,
            SpiModel::new(0.0, 1e-9).unwrap(),
            assoc,
        )
        .unwrap()
    }

    #[test]
    fn single_hungry_process_is_closed_form() {
        // k = 1 must not iterate: exact A ways, ClosedForm method, zero
        // iterations.
        let a = fv(SpecWorkload::Mcf);
        for eq in [
            solve(&[&a], 16).unwrap(),
            solve_newton(&[&a], 16).unwrap(),
            solve_robust(&[&a], 16, &SolveOptions::default()).unwrap(),
        ] {
            assert_eq!(eq.diagnostics.method, SolveMethod::ClosedForm);
            assert_eq!(eq.diagnostics.iterations, 0);
            assert_eq!(eq.sizes[0], 16.0, "exact, not asymptotic");
            assert!(eq.cache_filled);
            assert!(eq.window > 0.0 && eq.window.is_finite());
        }
    }

    #[test]
    fn single_saturating_process_is_closed_form() {
        use crate::histogram::ReuseHistogram;
        use crate::spi::SpiModel;
        let h = ReuseHistogram::new(vec![0.7, 0.3], 0.0).unwrap();
        let f = FeatureVector::new("tiny", h, 0.01, SpiModel::new(2e-8, 1e-8).unwrap(), 8).unwrap();
        let eq = solve(&[&f], 8).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::ClosedForm);
        assert!(!eq.cache_filled);
        assert!(eq.sizes[0] < 3.0 && eq.sizes[0] > 1.5, "{}", eq.sizes[0]);
        assert!((eq.sizes[0] - f.occupancy().saturation()).abs() < 1e-12);
    }

    #[test]
    fn unit_associativity_closed_form() {
        let a = fv(SpecWorkload::Mcf).with_assoc(1).unwrap();
        let b = fv(SpecWorkload::Gzip).with_assoc(1).unwrap();
        let eq = solve(&[&a, &b], 1).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::ClosedForm);
        assert!(eq.cache_filled);
        assert!((eq.sizes.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{:?}", eq.sizes);
        assert!(eq.sizes.iter().all(|&s| s > 0.0 && s < 1.0), "{:?}", eq.sizes);
        // The hungrier process holds more of the single way.
        assert!(eq.sizes[0] > eq.sizes[1], "{:?}", eq.sizes);
        // Exact inner solve: each size satisfies S·SPI(S) = API·T (up to
        // the outer bracket's fill tolerance and cosmetic rescale).
        for (i, f) in [&a, &b].iter().enumerate() {
            let implied = eq.sizes[i] * f.spi_at(eq.sizes[i]);
            let expect = f.api() * eq.window;
            assert!((implied - expect).abs() < 1e-3 * expect, "proc {i}: {implied} vs {expect}");
        }
        // All strategies route A = 1 through the same closed form.
        let newt = solve_newton(&[&a, &b], 1).unwrap();
        let rob = solve_robust(&[&a, &b], 1, &SolveOptions::default()).unwrap();
        assert_eq!(eq.sizes, newt.sizes);
        assert_eq!(eq.sizes, rob.sizes);
    }

    #[test]
    fn zero_api_process_occupies_nothing() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let idle = idle_fv(16);
        let with_idle = solve(&[&a, &idle, &b], 16).unwrap();
        assert_eq!(with_idle.sizes[1], 0.0, "idle process holds no ways");
        assert!((with_idle.apss[1] - 0.0).abs() < 1e-18);
        // Metamorphic: adding an idle process must not change the others'
        // occupancy — bit for bit, because idles are partitioned out
        // before the core solve.
        let without = solve(&[&a, &b], 16).unwrap();
        assert_eq!(without.sizes[0].to_bits(), with_idle.sizes[0].to_bits());
        assert_eq!(without.sizes[1].to_bits(), with_idle.sizes[2].to_bits());
        assert_eq!(without.window.to_bits(), with_idle.window.to_bits());
    }

    #[test]
    fn all_idle_processes_closed_form() {
        let i1 = idle_fv(16);
        let i2 = idle_fv(16);
        for eq in [
            solve(&[&i1, &i2], 16).unwrap(),
            solve_robust(&[&i1, &i2], 16, &SolveOptions::default()).unwrap(),
        ] {
            assert_eq!(eq.diagnostics.method, SolveMethod::ClosedForm);
            assert_eq!(eq.sizes, vec![0.0, 0.0]);
            assert!(!eq.cache_filled);
            assert!(!eq.diagnostics.degraded);
        }
    }

    #[test]
    fn solver_results_are_order_independent_bit_for_bit() {
        let feats = [
            fv(SpecWorkload::Mcf),
            fv(SpecWorkload::Gzip),
            fv(SpecWorkload::Art),
            fv(SpecWorkload::Twolf),
        ];
        let base: Vec<&FeatureVector> = feats.iter().collect();
        let perms: Vec<Vec<usize>> =
            vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 3, 0, 2], vec![2, 0, 3, 1]];
        let opts = SolveOptions::default();
        let ref_bis = solve(&base, 16).unwrap();
        let ref_rob = solve_robust(&base, 16, &opts).unwrap();
        for perm in &perms {
            let permuted: Vec<&FeatureVector> = perm.iter().map(|&i| base[i]).collect();
            let bis = solve(&permuted, 16).unwrap();
            let rob = solve_robust(&permuted, 16, &opts).unwrap();
            for (slot, &orig) in perm.iter().enumerate() {
                assert_eq!(
                    bis.sizes[slot].to_bits(),
                    ref_bis.sizes[orig].to_bits(),
                    "bisection perm {perm:?} slot {slot}"
                );
                assert_eq!(
                    bis.spis[slot].to_bits(),
                    ref_bis.spis[orig].to_bits(),
                    "bisection SPI perm {perm:?} slot {slot}"
                );
                assert_eq!(
                    rob.sizes[slot].to_bits(),
                    ref_rob.sizes[orig].to_bits(),
                    "robust perm {perm:?} slot {slot}"
                );
            }
            assert_eq!(bis.window.to_bits(), ref_bis.window.to_bits());
        }
    }

    #[test]
    fn proportional_split_is_exact_degraded_and_order_independent() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let idle = idle_fv(16);
        let eq = solve_proportional(&[&a, &idle, &b], 16).unwrap();
        assert_eq!(eq.diagnostics.method, SolveMethod::ProportionalShare);
        assert!(eq.diagnostics.degraded);
        assert_eq!(eq.sizes[1], 0.0, "idle process holds no ways");
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-9);
        assert!(eq.spis.iter().all(|s| s.is_finite() && *s > 0.0));
        // Shares follow API ratios exactly.
        assert!((eq.sizes[0] / eq.sizes[2] - a.api() / b.api()).abs() < 1e-12);
        // Bit-independent of caller order, like the full solvers.
        let flipped = solve_proportional(&[&b, &idle, &a], 16).unwrap();
        assert_eq!(eq.sizes[0].to_bits(), flipped.sizes[2].to_bits());
        assert_eq!(eq.sizes[2].to_bits(), flipped.sizes[0].to_bits());
        // Matches robust's stage-4 answer when the chain is forced there.
        let opts = SolveOptions { time_budget_s: 0.0, ..Default::default() };
        let forced = solve_robust(&[&a, &idle, &b], 16, &opts).unwrap();
        for i in 0..3 {
            assert_eq!(eq.sizes[i].to_bits(), forced.sizes[i].to_bits(), "proc {i}");
        }
    }

    #[test]
    fn fired_token_cancels_every_solver_with_typed_error() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let fired = CancelToken::flag(Arc::new(AtomicBool::new(true)));
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        for r in [
            solve_cancellable(&[&a, &b], 16, &fired),
            solve_newton_cancellable(&[&a, &b], 16, &fired),
            solve_robust_cancellable(&[&a, &b], 16, &SolveOptions::default(), &fired),
        ] {
            assert!(matches!(r, Err(ModelError::Math(mathkit::MathError::Cancelled))), "{r:?}");
        }
    }

    #[test]
    fn never_token_is_bit_exact_with_plain_solvers() {
        let never = CancelToken::never();
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        let plain = solve(&[&a, &b], 16).unwrap();
        let cancl = solve_cancellable(&[&a, &b], 16, &never).unwrap();
        for i in 0..2 {
            assert_eq!(plain.sizes[i].to_bits(), cancl.sizes[i].to_bits());
            assert_eq!(plain.spis[i].to_bits(), cancl.spis[i].to_bits());
        }
        assert_eq!(plain.window.to_bits(), cancl.window.to_bits());
        let rob = solve_robust(&[&a, &b], 16, &SolveOptions::default()).unwrap();
        let robc =
            solve_robust_cancellable(&[&a, &b], 16, &SolveOptions::default(), &never).unwrap();
        for i in 0..2 {
            assert_eq!(rob.sizes[i].to_bits(), robc.sizes[i].to_bits());
        }
    }

    #[test]
    fn robust_handles_saturating_demand() {
        use crate::histogram::ReuseHistogram;
        use crate::spi::SpiModel;
        // All reuse within 2 ways and no streaming tail: the process can
        // never hold more than ~2 of the 8 ways.
        let h = ReuseHistogram::new(vec![0.7, 0.3], 0.0).unwrap();
        let f = FeatureVector::new("tiny", h, 0.01, SpiModel::new(2e-8, 1e-8).unwrap(), 8).unwrap();
        let eq = solve_robust(&[&f], 8, &SolveOptions::default()).unwrap();
        assert!(!eq.cache_filled);
        assert!(eq.sizes[0] < 3.0, "{}", eq.sizes[0]);
        assert!(!eq.diagnostics.degraded);
    }
}
