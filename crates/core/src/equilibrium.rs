//! The steady-state cache-sharing equilibrium (paper §3.3, Eq. 1 + Eq. 7).
//!
//! Given `k` co-scheduled processes sharing an `A`-way LRU cache, find the
//! effective cache sizes `S_1..S_k`. The paper's derivation: there is a
//! window `T` such that exactly the data accessed during the last `T`
//! seconds is resident, so every process satisfies
//! `S_i = G_i(APS_i(S_i) * T)` with a *common* `T`, plus the capacity
//! constraint `sum_i S_i = A`.
//!
//! Two solvers are provided:
//!
//! - [`solve`] — a guaranteed-convergent nested bisection: the inner solve
//!   finds `S_i(T)` per process (monotone in `T`), the outer solve adjusts
//!   `T` until the capacity constraint holds. This is the default.
//! - [`solve_newton`] — Newton–Raphson on the `(S_1..S_k, T)` system, the
//!   method the paper names. Equivalent at the solution; used by the
//!   ablation benchmarks and cross-checked against [`solve`] in tests.
//!
//! If the combined demand cannot fill the cache (every process saturates
//! below its share), the capacity constraint is infeasible; both solvers
//! then return the saturated sizes with [`Equilibrium::cache_filled`] set
//! to `false` — physically, part of the cache simply stays empty.

use crate::feature::FeatureVector;
use crate::ModelError;
use mathkit::newton::{newton_raphson, NewtonOptions};
use mathkit::roots::{bisect, BisectOptions};

/// The solved steady state for one co-scheduled set.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Effective cache size per process (ways).
    pub sizes: Vec<f64>,
    /// Predicted misses per access per process at those sizes.
    pub mpas: Vec<f64>,
    /// Predicted seconds per instruction per process.
    pub spis: Vec<f64>,
    /// Predicted L2 accesses per second per process.
    pub apss: Vec<f64>,
    /// The shared window parameter `T` (in scaled units; only ratios are
    /// meaningful).
    pub window: f64,
    /// Whether the capacity constraint `sum S_i = A` could be met. `false`
    /// means total demand saturates below the cache size.
    pub cache_filled: bool,
}

impl Equilibrium {
    fn from_sizes(features: &[&FeatureVector], sizes: Vec<f64>, window: f64, filled: bool) -> Self {
        let mpas: Vec<f64> = features.iter().zip(&sizes).map(|(f, &s)| f.mpa(s)).collect();
        let spis: Vec<f64> =
            features.iter().zip(&mpas).map(|(f, &m)| f.spi_model().spi(m)).collect();
        let apss: Vec<f64> = features.iter().zip(&spis).map(|(f, &s)| f.api() / s).collect();
        Equilibrium { sizes, mpas, spis, apss, window, cache_filled: filled }
    }
}

/// Inner solve: the occupancy `S` of one process given the window `T`.
///
/// `S` is the smallest fixed point of `S = G(APS(S) * T)`, found by
/// bisection on `phi(S) = S - G(APS(S) * T)` over `[0, A]` (`phi(0) <= 0`,
/// `phi(A) >= 0` because `G <= A`).
fn size_for_window(f: &FeatureVector, a: f64, t: f64) -> f64 {
    let phi = |s: f64| s - f.occupancy().g(f.aps_at(s) * t);
    if phi(a) <= 0.0 {
        return a; // demand saturates the whole cache within this window
    }
    // phi(0) = -G(APS(0) * T) <= 0; find the crossing.
    bisect(phi, 0.0, a, BisectOptions { x_tol: 1e-9, f_tol: 1e-12, max_iter: 300 })
        .unwrap_or(a)
}

/// Solves the equilibrium for `features` sharing an `assoc`-way cache by
/// nested bisection (see module docs).
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] if `features` is empty.
/// - [`ModelError::EquilibriumFailed`] if features were built for a
///   different associativity than `assoc`.
///
/// # Examples
///
/// ```
/// use mpmc_model::equilibrium::solve;
/// use mpmc_model::feature::FeatureVector;
/// use cmpsim::machine::MachineConfig;
/// use workloads::spec::SpecWorkload;
///
/// # fn main() -> Result<(), mpmc_model::ModelError> {
/// let m = MachineConfig::four_core_server();
/// let mcf = FeatureVector::from_workload(&SpecWorkload::Mcf.params(), &m)?;
/// let gzip = FeatureVector::from_workload(&SpecWorkload::Gzip.params(), &m)?;
/// let eq = solve(&[&mcf, &gzip], 16)?;
/// assert!((eq.sizes[0] + eq.sizes[1] - 16.0).abs() < 1e-6);
/// assert!(eq.sizes[0] > eq.sizes[1]); // mcf is the cache hog
/// # Ok(())
/// # }
/// ```
pub fn solve(features: &[&FeatureVector], assoc: usize) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    let a = assoc as f64;
    let k = features.len();

    // Total occupancy as a function of the window T (monotone
    // non-decreasing in T).
    let total = |t: f64| -> f64 { features.iter().map(|f| size_for_window(f, a, t)).sum() };

    // Bracket T: expand upward until the cache is filled (to tolerance)
    // or the inner sizes saturate. `G` approaches the associativity
    // asymptotically, so "filled" must be judged with an epsilon: a lone
    // hungry process reaches `a - 1e-9` ways but never exactly `a`.
    let fill_eps = 1e-4;
    let mut t_lo = 1e-12;
    let mut t_hi = 1e-9;
    let cap = 1e9;
    while total(t_hi) < a - fill_eps {
        t_lo = t_hi;
        t_hi *= 4.0;
        if t_hi > cap {
            // Demand can never fill the cache: return saturated sizes.
            let sizes: Vec<f64> = features.iter().map(|f| size_for_window(f, a, cap)).collect();
            let sum: f64 = sizes.iter().sum();
            return Ok(Equilibrium::from_sizes(features, sizes, cap, sum >= a - 1e-2));
        }
    }
    let _ = k;

    // If the expansion landed essentially on the constraint (asymptotic
    // approach from below), accept it; otherwise bisect the crossing.
    let t = if total(t_hi) <= a + fill_eps {
        t_hi
    } else {
        bisect(
            |t| total(t) - a,
            t_lo,
            t_hi,
            BisectOptions { x_tol: 0.0, f_tol: 1e-9, max_iter: 500 },
        )
        .map_err(|e| ModelError::EquilibriumFailed(format!("outer bisection: {e}")))?
    };

    let mut sizes: Vec<f64> = features.iter().map(|f| size_for_window(f, a, t)).collect();
    // Distribute any residual capacity error proportionally so the
    // constraint holds exactly (cosmetic: the residual is < 1e-6 ways).
    let sum: f64 = sizes.iter().sum();
    if sum > 0.0 {
        let scale = a / sum;
        if (scale - 1.0).abs() < 1e-3 {
            for s in &mut sizes {
                *s *= scale;
            }
        }
    }
    Ok(Equilibrium::from_sizes(features, sizes, t, true))
}

/// Solves the equilibrium with damped Newton–Raphson on the
/// `(S_1..S_k, T)` system — the paper's §3.3 method.
///
/// The residuals are the normalized window conditions
/// `r_i = 1 - APS_i(S_i) * T / G_i^{-1}(S_i)` plus the capacity constraint
/// `(sum S_i - A) / A`; this is Eq. 7 rearranged to avoid the huge dynamic
/// range of raw `G^{-1}` values.
///
/// # Errors
///
/// - [`ModelError::EmptyInput`] / [`ModelError::EquilibriumFailed`] as for
///   [`solve`], plus Newton non-convergence (rare; seed with [`solve`]'s
///   output if it matters).
pub fn solve_newton(features: &[&FeatureVector], assoc: usize) -> Result<Equilibrium, ModelError> {
    validate(features, assoc)?;
    let a = assoc as f64;
    let k = features.len();

    // Initial guess: proportional to demand at a common mid-range window.
    let bisection_seed = solve(features, assoc)?;
    if !bisection_seed.cache_filled {
        // Infeasible constraint: Newton has no root to find; return the
        // saturated solution directly (same as the paper would observe —
        // the cache simply is not full).
        return Ok(bisection_seed);
    }
    let mut x0: Vec<f64> = bisection_seed.sizes.iter().map(|&s| s * 0.9 + 0.1).collect();
    x0.push(bisection_seed.window * 1.1);

    let lo = 0.02;
    let clamp = move |v: &[f64]| -> Vec<f64> {
        let mut out = Vec::with_capacity(v.len());
        for (i, &x) in v.iter().enumerate() {
            if i < k {
                out.push(x.clamp(lo, a));
            } else {
                out.push(x.max(1e-15));
            }
        }
        out
    };

    let feats: Vec<&FeatureVector> = features.to_vec();
    let residual = move |v: &[f64]| -> Vec<f64> {
        let t = v[k];
        let mut r = Vec::with_capacity(k + 1);
        for (i, f) in feats.iter().enumerate() {
            let s = v[i];
            let ginv = f.occupancy().g_inverse(s).max(1e-12);
            r.push(1.0 - f.aps_at(s) * t / ginv);
        }
        let sum: f64 = v[..k].iter().sum();
        r.push((sum - a) / a);
        r
    };

    let sol = newton_raphson(
        residual,
        &x0,
        clamp,
        NewtonOptions { tol: 1e-7, max_iter: 200, fd_step: 1e-6, max_backtrack: 40 },
    )
    .map_err(|e| ModelError::EquilibriumFailed(format!("newton: {e}")))?;

    let sizes = sol.x[..k].to_vec();
    let window = sol.x[k];
    Ok(Equilibrium::from_sizes(features, sizes, window, true))
}

fn validate(features: &[&FeatureVector], assoc: usize) -> Result<(), ModelError> {
    if features.is_empty() {
        return Err(ModelError::EmptyInput("equilibrium needs at least one process"));
    }
    if assoc == 0 {
        return Err(ModelError::EquilibriumFailed("associativity must be positive".into()));
    }
    for f in features {
        if f.assoc() != assoc {
            return Err(ModelError::EquilibriumFailed(format!(
                "feature vector '{}' was built for {} ways, cache has {assoc}",
                f.name(),
                f.assoc()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::machine::MachineConfig;
    use workloads::spec::SpecWorkload;

    fn fv(w: SpecWorkload) -> FeatureVector {
        FeatureVector::from_workload(&w.params(), &MachineConfig::four_core_server()).unwrap()
    }

    #[test]
    fn pair_fills_cache_exactly() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.cache_filled);
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-6);
        assert!(eq.sizes.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn hog_beats_friendly_workload() {
        let hog = fv(SpecWorkload::Mcf);
        let friendly = fv(SpecWorkload::Gzip);
        let eq = solve(&[&hog, &friendly], 16).unwrap();
        assert!(
            eq.sizes[0] > 3.0 * eq.sizes[1],
            "mcf {} vs gzip {}",
            eq.sizes[0],
            eq.sizes[1]
        );
    }

    #[test]
    fn symmetric_pair_splits_evenly() {
        let a = fv(SpecWorkload::Twolf);
        let b = fv(SpecWorkload::Twolf);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!((eq.sizes[0] - eq.sizes[1]).abs() < 1e-4, "{:?}", eq.sizes);
        assert!((eq.sizes[0] - 8.0).abs() < 1e-3);
    }

    #[test]
    fn contention_degrades_both() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Art);
        let alone_a = solve(&[&a], 16).unwrap();
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.spis[0] > alone_a.spis[0], "shared must be slower");
        assert!(eq.mpas[0] > alone_a.mpas[0]);
    }

    #[test]
    fn single_process_takes_whole_cache_if_hungry() {
        let a = fv(SpecWorkload::Mcf);
        let eq = solve(&[&a], 16).unwrap();
        assert!(eq.sizes[0] > 15.9, "{}", eq.sizes[0]);
        assert!(eq.cache_filled);
    }

    #[test]
    fn spi_consistent_with_mpa() {
        let a = fv(SpecWorkload::Vpr);
        let b = fv(SpecWorkload::Ammp);
        let eq = solve(&[&a, &b], 16).unwrap();
        for (i, f) in [&a, &b].iter().enumerate() {
            assert!((eq.mpas[i] - f.mpa(eq.sizes[i])).abs() < 1e-9);
            assert!((eq.spis[i] - f.spi_model().spi(eq.mpas[i])).abs() < 1e-15);
            assert!((eq.apss[i] - f.api() / eq.spis[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn four_way_sharing() {
        let feats = [
            fv(SpecWorkload::Mcf),
            fv(SpecWorkload::Gzip),
            fv(SpecWorkload::Art),
            fv(SpecWorkload::Twolf),
        ];
        let refs: Vec<&FeatureVector> = feats.iter().collect();
        let eq = solve(&refs, 16).unwrap();
        assert!(eq.cache_filled);
        assert!((eq.sizes.iter().sum::<f64>() - 16.0).abs() < 1e-6);
        // The memory hogs should outrank the friendly ones.
        assert!(eq.sizes[0] > eq.sizes[1], "{:?}", eq.sizes);
        assert!(eq.sizes[2] > eq.sizes[1], "{:?}", eq.sizes);
    }

    #[test]
    fn newton_agrees_with_bisection() {
        let pairs = [
            (SpecWorkload::Mcf, SpecWorkload::Gzip),
            (SpecWorkload::Art, SpecWorkload::Twolf),
            (SpecWorkload::Equake, SpecWorkload::Ammp),
            (SpecWorkload::Vpr, SpecWorkload::Bzip2),
        ];
        for (wa, wb) in pairs {
            let a = fv(wa);
            let b = fv(wb);
            let bis = solve(&[&a, &b], 16).unwrap();
            let newt = solve_newton(&[&a, &b], 16).unwrap();
            for i in 0..2 {
                assert!(
                    (bis.sizes[i] - newt.sizes[i]).abs() < 0.05,
                    "{wa}/{wb} proc {i}: bisect {} vs newton {}",
                    bis.sizes[i],
                    newt.sizes[i]
                );
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(solve(&[], 16), Err(ModelError::EmptyInput(_))));
    }

    #[test]
    fn assoc_mismatch_rejected() {
        let a = fv(SpecWorkload::Gzip); // built for 16 ways
        assert!(matches!(solve(&[&a], 12), Err(ModelError::EquilibriumFailed(_))));
    }

    #[test]
    fn window_is_positive() {
        let a = fv(SpecWorkload::Mcf);
        let b = fv(SpecWorkload::Gzip);
        let eq = solve(&[&a, &b], 16).unwrap();
        assert!(eq.window > 0.0);
    }
}
