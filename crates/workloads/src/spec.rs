//! The ten SPEC-CPU2000-like workload profiles.
//!
//! The paper's testsuite is eight SPEC CPU2000 benchmarks (Table 1: gzip,
//! vpr, mcf, bzip2, twolf, art, equake, ammp) plus two more for the
//! duo-machine study (§6.2 uses ten). SPEC binaries are not available
//! here, so each benchmark is replaced by a synthetic process whose
//! reuse-distance profile and instruction mix qualitatively match its
//! namesake's published character:
//!
//! | name   | character                                             |
//! |--------|-------------------------------------------------------|
//! | gzip   | cache-friendly integer compressor, tiny working set   |
//! | vpr    | placement/routing, moderate working set               |
//! | mcf    | pointer-chasing network simplex, huge working set     |
//! | bzip2  | blocked compressor, bimodal reuse                     |
//! | twolf  | cell placement, mid-size working set                  |
//! | art    | neural-net FP, wide flat reuse, memory hungry         |
//! | equake | FP wave propagation, streaming array sweeps           |
//! | ammp   | molecular dynamics FP, moderate tail                  |
//! | gcc    | compiler, mixed locality (duo study extra)            |
//! | parser | dictionary parser, pointer-ish mid tail (duo extra)   |
//!
//! The substitution is behaviour-preserving for the models under test: the
//! performance model consumes only the reuse histogram + `(API, alpha,
//! beta)`, and the power model only event rates — exactly the parameters
//! these profiles control.

use crate::generator::{AccessPattern, InstructionMix, StackDistGenerator};

/// One named synthetic workload.
// Derived PartialOrd on integer fields expands to the banned partial_cmp.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecWorkload {
    /// Cache-friendly integer compressor.
    Gzip,
    /// FPGA placement and routing.
    Vpr,
    /// Memory-bound network simplex.
    Mcf,
    /// Blocked Burrows–Wheeler compressor.
    Bzip2,
    /// Standard-cell placement.
    Twolf,
    /// Memory-hungry neural-network FP code.
    Art,
    /// Streaming FP earthquake simulation.
    Equake,
    /// Molecular-dynamics FP code.
    Ammp,
    /// Optimizing compiler (duo-study extra).
    Gcc,
    /// Link-grammar parser (duo-study extra).
    Parser,
}

impl SpecWorkload {
    /// The eight benchmarks of the paper's main testsuite (Table 1 order).
    pub fn table1_suite() -> [SpecWorkload; 8] {
        use SpecWorkload::*;
        [Gzip, Vpr, Mcf, Bzip2, Twolf, Art, Equake, Ammp]
    }

    /// The ten benchmarks of the duo-machine study (§6.2).
    pub fn duo_suite() -> [SpecWorkload; 10] {
        use SpecWorkload::*;
        [Gzip, Vpr, Mcf, Bzip2, Twolf, Art, Equake, Ammp, Gcc, Parser]
    }

    /// The benchmark's display name (lowercase, as in the paper).
    pub fn name(&self) -> &'static str {
        match self {
            SpecWorkload::Gzip => "gzip",
            SpecWorkload::Vpr => "vpr",
            SpecWorkload::Mcf => "mcf",
            SpecWorkload::Bzip2 => "bzip2",
            SpecWorkload::Twolf => "twolf",
            SpecWorkload::Art => "art",
            SpecWorkload::Equake => "equake",
            SpecWorkload::Ammp => "ammp",
            SpecWorkload::Gcc => "gcc",
            SpecWorkload::Parser => "parser",
        }
    }

    /// The workload's generator parameters.
    pub fn params(&self) -> WorkloadParams {
        match self {
            SpecWorkload::Gzip => WorkloadParams {
                name: "gzip",
                pattern: AccessPattern::from_weights(&decay(4, 0.45), 0.8)
                    .with_streaming(0.0015, 8),
                mix: InstructionMix { api: 0.004, l1rpi: 0.34, brpi: 0.21, fppi: 0.0 },
            },
            SpecWorkload::Vpr => WorkloadParams {
                name: "vpr",
                pattern: AccessPattern::from_weights(&decay(10, 0.75), 3.0),
                mix: InstructionMix { api: 0.009, l1rpi: 0.36, brpi: 0.18, fppi: 0.03 },
            },
            SpecWorkload::Mcf => WorkloadParams {
                name: "mcf",
                pattern: AccessPattern::from_weights(&decay(24, 0.93), 22.0),
                mix: InstructionMix { api: 0.035, l1rpi: 0.42, brpi: 0.24, fppi: 0.0 },
            },
            SpecWorkload::Bzip2 => WorkloadParams {
                name: "bzip2",
                pattern: AccessPattern::from_weights(&bimodal(3, 10, 14), 2.0)
                    .with_streaming(0.002, 12),
                mix: InstructionMix { api: 0.006, l1rpi: 0.33, brpi: 0.17, fppi: 0.0 },
            },
            SpecWorkload::Twolf => WorkloadParams {
                name: "twolf",
                pattern: AccessPattern::from_weights(&plateau(5, 12), 4.0),
                mix: InstructionMix { api: 0.013, l1rpi: 0.37, brpi: 0.19, fppi: 0.02 },
            },
            SpecWorkload::Art => WorkloadParams {
                name: "art",
                pattern: AccessPattern::from_weights(&decay(20, 0.96), 14.0),
                mix: InstructionMix { api: 0.030, l1rpi: 0.41, brpi: 0.10, fppi: 0.26 },
            },
            SpecWorkload::Equake => WorkloadParams {
                name: "equake",
                pattern: AccessPattern::from_weights(&decay(6, 0.55), 6.0)
                    .with_streaming(0.008, 24),
                mix: InstructionMix { api: 0.016, l1rpi: 0.39, brpi: 0.09, fppi: 0.31 },
            },
            SpecWorkload::Ammp => WorkloadParams {
                name: "ammp",
                pattern: AccessPattern::from_weights(&decay(14, 0.85), 5.0),
                mix: InstructionMix { api: 0.011, l1rpi: 0.38, brpi: 0.11, fppi: 0.28 },
            },
            SpecWorkload::Gcc => WorkloadParams {
                name: "gcc",
                pattern: AccessPattern::from_weights(&bimodal(4, 8, 12), 3.5)
                    .with_streaming(0.002, 10),
                mix: InstructionMix { api: 0.010, l1rpi: 0.35, brpi: 0.22, fppi: 0.0 },
            },
            SpecWorkload::Parser => WorkloadParams {
                name: "parser",
                pattern: AccessPattern::from_weights(&decay(12, 0.82), 6.0),
                mix: InstructionMix { api: 0.015, l1rpi: 0.36, brpi: 0.23, fppi: 0.0 },
            },
        }
    }
}

impl std::fmt::Display for SpecWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload's complete generator parameterization.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Display name.
    pub name: &'static str,
    /// Reuse behaviour.
    pub pattern: AccessPattern,
    /// Per-instruction event rates.
    pub mix: InstructionMix,
}

impl WorkloadParams {
    /// Instantiates a generator for a machine with `num_sets` L2 sets,
    /// using `region` to keep this process's address space disjoint from
    /// all others in the same simulation.
    pub fn generator(&self, num_sets: usize, region: u64) -> StackDistGenerator {
        StackDistGenerator::new(self.name, self.pattern.clone(), self.mix, num_sets, region)
    }
}

/// Geometrically decaying weights over positions `1..=n` with ratio `r`.
fn decay(n: usize, r: f64) -> Vec<f64> {
    let mut w = Vec::with_capacity(n);
    let mut cur = 100.0;
    for _ in 0..n {
        w.push(cur);
        cur *= r;
    }
    w
}

/// Strong head of depth `head` plus a secondary bump over
/// `[bump_lo, bump_hi]` (1-indexed positions).
fn bimodal(head: usize, bump_lo: usize, bump_hi: usize) -> Vec<f64> {
    let mut w = vec![0.0; bump_hi];
    for (i, slot) in w.iter_mut().enumerate().take(head) {
        *slot = 80.0 * 0.5f64.powi(i as i32);
    }
    for slot in w.iter_mut().take(bump_hi).skip(bump_lo - 1) {
        *slot += 10.0;
    }
    w
}

/// Uniform plateau over positions `[1, hi]` with a stronger head of depth
/// `head`.
fn plateau(head: usize, hi: usize) -> Vec<f64> {
    let mut w = vec![8.0; hi];
    for slot in w.iter_mut().take(head) {
        *slot += 20.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::process::AccessGenerator;

    #[test]
    fn suites_have_expected_members() {
        assert_eq!(SpecWorkload::table1_suite().len(), 8);
        assert_eq!(SpecWorkload::duo_suite().len(), 10);
        assert_eq!(SpecWorkload::table1_suite()[0], SpecWorkload::Gzip);
        assert_eq!(SpecWorkload::duo_suite()[9], SpecWorkload::Parser);
    }

    #[test]
    fn all_patterns_are_normalized() {
        for w in SpecWorkload::duo_suite() {
            let p = w.params();
            let total: f64 = p.pattern.dist.iter().sum::<f64>() + p.pattern.p_new;
            assert!((total - 1.0).abs() < 1e-9, "{w}: {total}");
        }
    }

    #[test]
    fn memory_bound_workloads_have_bigger_tails() {
        // At 8 ways of a 16-way cache, mcf/art should miss far more than
        // gzip — the contrast Table 1 exercises.
        let mpa = |w: SpecWorkload| w.params().pattern.true_mpa(8);
        assert!(mpa(SpecWorkload::Mcf) > 0.15, "{}", mpa(SpecWorkload::Mcf));
        assert!(mpa(SpecWorkload::Art) > 0.12, "{}", mpa(SpecWorkload::Art));
        assert!(mpa(SpecWorkload::Gzip) < 0.05, "{}", mpa(SpecWorkload::Gzip));
    }

    #[test]
    fn apis_span_an_order_of_magnitude() {
        let apis: Vec<f64> = SpecWorkload::duo_suite().iter().map(|w| w.params().mix.api).collect();
        let max = apis.iter().cloned().fold(0.0, f64::max);
        let min = apis.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 5.0, "span {max}/{min}");
    }

    #[test]
    fn fp_benchmarks_have_fp_ops() {
        for w in [SpecWorkload::Art, SpecWorkload::Equake, SpecWorkload::Ammp] {
            assert!(w.params().mix.fppi > 0.2, "{w}");
        }
        for w in [SpecWorkload::Gzip, SpecWorkload::Mcf, SpecWorkload::Parser] {
            assert!(w.params().mix.fppi < 0.01, "{w}");
        }
    }

    #[test]
    fn equake_streams_far_more_than_anyone() {
        let frac = |w: SpecWorkload| w.params().pattern.streaming_fraction();
        let equake = frac(SpecWorkload::Equake);
        assert!(equake > 0.1, "{equake}");
        for w in SpecWorkload::duo_suite() {
            if w != SpecWorkload::Equake {
                assert!(frac(w) < 0.5 * equake, "{w}: {}", frac(w));
            }
        }
    }

    #[test]
    fn names_match_display() {
        for w in SpecWorkload::duo_suite() {
            assert_eq!(w.to_string(), w.name());
            assert_eq!(w.params().name, w.name());
        }
    }

    #[test]
    fn generator_construction_works_for_all() {
        for (i, w) in SpecWorkload::duo_suite().iter().enumerate() {
            let g = w.params().generator(512, i as u64);
            assert_eq!(g.label(), w.name());
        }
    }

    #[test]
    fn helper_shapes() {
        let d = decay(3, 0.5);
        assert_eq!(d.len(), 3);
        assert!(d[0] > d[1] && d[1] > d[2]);
        let b = bimodal(2, 5, 8);
        assert_eq!(b.len(), 8);
        assert!(b[0] > b[1]);
        assert!(b[4] > b[3]); // bump starts at position 5
        let p = plateau(2, 6);
        assert_eq!(p.len(), 6);
        assert!(p[0] > p[5]);
        assert_eq!(p[2], p[5]);
    }
}
