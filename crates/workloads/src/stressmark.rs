//! The profiling stressmark (§3.4).
//!
//! The paper's automated profiler co-runs the process of interest with "a
//! carefully designed benchmark with configurable cache contention
//! characteristics". The stressmark here occupies a *tunable* number of
//! ways `s` in every set of the shared cache: it cycles through exactly
//! `s` lines per set at a very high access rate, so under LRU it keeps
//! those `s` ways resident and forces the co-runner into the remaining
//! `A - s` ways.
//!
//! Cycling over `s` lines means every stressmark access is to its own
//! stack position `s` (the least-recently-used of its lines), which is the
//! most aggressive occupancy-defending pattern possible for a fixed
//! footprint: any co-runner insertion that evicts a stressmark line is
//! corrected within one sweep.

use cmpsim::process::{AccessGenerator, Step};
use cmpsim::types::LineAddr;
use rand::RngCore;

/// A stressmark holding `target_ways` ways in every set of an
/// `num_sets`-set shared cache.
///
/// # Examples
///
/// ```
/// use workloads::stressmark::Stressmark;
/// use cmpsim::process::AccessGenerator;
///
/// let mut s = Stressmark::new(4, 64, 900);
/// assert_eq!(s.target_ways(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Stressmark {
    target_ways: usize,
    num_sets: usize,
    region: u64,
    set_cursor: usize,
    way_cursor: Vec<usize>,
    name: String,
}

impl Stressmark {
    /// Creates a stressmark with footprint `target_ways` ways per set.
    ///
    /// `region` keeps the stressmark's address space disjoint from the
    /// profiled process (pick any value not used by another process in the
    /// same run).
    ///
    /// # Panics
    ///
    /// Panics if `target_ways == 0` or `num_sets == 0`.
    pub fn new(target_ways: usize, num_sets: usize, region: u64) -> Self {
        assert!(target_ways > 0, "stressmark needs a positive footprint");
        assert!(num_sets > 0, "stressmark needs a positive set count");
        Stressmark {
            target_ways,
            num_sets,
            region,
            set_cursor: 0,
            way_cursor: vec![0; num_sets],
            name: format!("stressmark({target_ways}w)"),
        }
    }

    /// The number of ways per set this stressmark defends.
    pub fn target_ways(&self) -> usize {
        self.target_ways
    }

    fn line(&self, set: usize, way: usize) -> LineAddr {
        LineAddr(set as u64 + self.num_sets as u64 * ((self.region << 40) | way as u64))
    }
}

impl AccessGenerator for Stressmark {
    fn next_step(&mut self, _rng: &mut dyn RngCore) -> Step {
        let set = self.set_cursor;
        self.set_cursor = (self.set_cursor + 17) % self.num_sets;
        let way = self.way_cursor[set];
        self.way_cursor[set] = (way + 1) % self.target_ways;
        // Pointer-chase-like: one L2 access every 4 instructions keeps the
        // stressmark's access rate far above any realistic co-runner, so
        // it wins the LRU race for its footprint.
        Step {
            instructions: 4,
            l1_refs: 4,
            branches: 1,
            fp_ops: 0,
            stall_cycles: 0,
            access: Some(self.line(set, way)),
        }
    }

    fn label(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::cache::SetAssocCache;
    use cmpsim::types::ProcessId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn touches_exactly_target_ways_per_set() {
        let num_sets = 8;
        let mut s = Stressmark::new(3, num_sets, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut per_set: Vec<std::collections::HashSet<u64>> =
            vec![std::collections::HashSet::new(); num_sets];
        for _ in 0..(num_sets * 30) {
            let a = s.next_step(&mut rng).access.unwrap();
            per_set[(a.0 % num_sets as u64) as usize].insert(a.0);
        }
        for (i, set) in per_set.iter().enumerate() {
            assert_eq!(set.len(), 3, "set {i}");
        }
    }

    #[test]
    fn steady_state_hits_when_alone() {
        let num_sets = 8;
        let mut cache = SetAssocCache::new(num_sets, 4);
        let mut s = Stressmark::new(3, num_sets, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Warm: one full sweep.
        for _ in 0..(num_sets * 3) {
            cache.access(s.next_step(&mut rng).access.unwrap(), ProcessId(0));
        }
        // Steady state: every access hits.
        for _ in 0..(num_sets * 6) {
            let a = s.next_step(&mut rng).access.unwrap();
            assert!(cache.access(a, ProcessId(0)).is_hit());
        }
        assert_eq!(cache.avg_ways_of(ProcessId(0)), 3.0);
    }

    #[test]
    fn defends_footprint_against_interleaved_thrasher() {
        // Stressmark at 3 ways/set interleaved 1:1 with a thrasher that
        // streams new lines: the stressmark should keep nearly all of its
        // 3 ways because it re-touches them constantly.
        let num_sets = 8;
        let mut cache = SetAssocCache::new(num_sets, 4);
        let mut s = Stressmark::new(3, num_sets, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut fresh = 1u64;
        for i in 0..4000 {
            cache.access(s.next_step(&mut rng).access.unwrap(), ProcessId(0));
            if i % 2 == 0 {
                // Thrasher: always-new lines, round-robin sets.
                cache.access(
                    LineAddr((fresh % num_sets as u64) + num_sets as u64 * (1 << 41 | fresh)),
                    ProcessId(1),
                );
                fresh += 1;
            }
        }
        let ways = cache.avg_ways_of(ProcessId(0));
        assert!(ways > 2.5, "stressmark holds {ways} ways");
    }

    #[test]
    fn high_access_rate() {
        let mut s = Stressmark::new(2, 4, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let step = s.next_step(&mut rng);
        assert!(step.instructions <= 8, "stressmark must access the L2 very frequently");
        assert!(step.access.is_some());
    }

    #[test]
    #[should_panic(expected = "positive footprint")]
    fn zero_ways_panics() {
        Stressmark::new(0, 4, 0);
    }
}
