//! Multi-phase workloads: deliberately violating the paper's
//! single-phase assumption (§3.1, assumption 2).
//!
//! The paper assumes each process has a single dominant phase and notes
//! that "in the case of multiple non-repeating phases with distinct
//! memory access patterns, non-repeating phases should be modeled
//! separately". This module builds processes that alternate between
//! phases with distinct reuse behaviour, so the `phase_study` experiment
//! can quantify (a) how much accuracy the single-phase profile loses and
//! (b) how much per-phase modeling recovers.

use crate::generator::{AccessPattern, InstructionMix, StackDistGenerator};
use crate::spec::WorkloadParams;
use cmpsim::process::{AccessGenerator, Step};
use rand::RngCore;

/// One phase of a phased workload.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Reuse behaviour during this phase.
    pub pattern: AccessPattern,
    /// Instruction mix during this phase.
    pub mix: InstructionMix,
    /// Phase length in instructions.
    pub instructions: u64,
}

impl Phase {
    /// Builds a phase from workload parameters and a length.
    pub fn from_params(params: &WorkloadParams, instructions: u64) -> Self {
        Phase { pattern: params.pattern.clone(), mix: params.mix, instructions }
    }

    /// A single-phase [`WorkloadParams`] view of this phase, for per-phase
    /// profiling (the paper's remedy for multi-phase processes).
    pub fn as_workload(&self, name: &'static str) -> WorkloadParams {
        WorkloadParams { name, pattern: self.pattern.clone(), mix: self.mix }
    }
}

/// A generator cycling through phases with distinct access behaviour.
///
/// Each phase owns a distinct address region, so a phase change replaces
/// the working set completely — the hardest case for a single-phase
/// profile.
pub struct PhasedGenerator {
    name: String,
    phases: Vec<Phase>,
    generators: Vec<StackDistGenerator>,
    current: usize,
    spent: u64,
    cycles_completed: u64,
}

impl PhasedGenerator {
    /// Creates a phased generator targeting a cache with `num_sets` sets.
    /// Phase `i` uses address region `region_base + i`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has a zero instruction
    /// budget.
    pub fn new(
        name: impl Into<String>,
        phases: Vec<Phase>,
        num_sets: usize,
        region_base: u64,
    ) -> Self {
        assert!(!phases.is_empty(), "phased workload needs at least one phase");
        assert!(
            phases.iter().all(|p| p.instructions > 0),
            "every phase needs a positive instruction budget"
        );
        let name = name.into();
        let generators = phases
            .iter()
            .enumerate()
            .map(|(i, p)| {
                StackDistGenerator::new(
                    format!("{name}.phase{i}"),
                    p.pattern.clone(),
                    p.mix,
                    num_sets,
                    region_base + i as u64,
                )
            })
            .collect();
        PhasedGenerator { name, phases, generators, current: 0, spent: 0, cycles_completed: 0 }
    }

    /// Index of the phase currently executing.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// How many full sweeps over all phases have completed.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// The phases of this workload.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The fraction of instructions spent in each phase over one cycle —
    /// the weights for per-phase model composition.
    pub fn phase_weights(&self) -> Vec<f64> {
        let total: u64 = self.phases.iter().map(|p| p.instructions).sum();
        self.phases.iter().map(|p| p.instructions as f64 / total as f64).collect()
    }
}

impl AccessGenerator for PhasedGenerator {
    fn next_step(&mut self, rng: &mut dyn RngCore) -> Step {
        if self.spent >= self.phases[self.current].instructions {
            self.spent = 0;
            self.current += 1;
            if self.current == self.phases.len() {
                self.current = 0;
                self.cycles_completed += 1;
            }
        }
        let step = self.generators[self.current].next_step(rng);
        self.spent += step.instructions;
        step
    }

    fn label(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for PhasedGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedGenerator")
            .field("name", &self.name)
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecWorkload;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_phase(num_sets: usize) -> PhasedGenerator {
        PhasedGenerator::new(
            "gzip-mcf",
            vec![
                Phase::from_params(&SpecWorkload::Gzip.params(), 50_000),
                Phase::from_params(&SpecWorkload::Mcf.params(), 50_000),
            ],
            num_sets,
            1,
        )
    }

    #[test]
    fn phases_alternate() {
        let mut g = two_phase(16);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(g.current_phase(), 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5_000 {
            g.next_step(&mut rng);
            seen.insert(g.current_phase());
        }
        assert_eq!(seen.len(), 2, "both phases must run");
        assert!(g.cycles_completed() >= 1, "schedule must wrap");
    }

    #[test]
    fn phase_mix_changes_api() {
        // gzip phase has ~250-instruction gaps; mcf ~29. Measure each.
        let mut g = two_phase(16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut instr = [0u64; 2];
        let mut refs = [0u64; 2];
        for _ in 0..20_000 {
            let phase = {
                let s = g.next_step(&mut rng);
                let ph = g.current_phase();
                instr[ph] += s.instructions;
                refs[ph] += u64::from(s.access.is_some());
                ph
            };
            let _ = phase;
        }
        let api0 = refs[0] as f64 / instr[0] as f64;
        let api1 = refs[1] as f64 / instr[1] as f64;
        assert!(api1 > 4.0 * api0, "mcf phase API {api1} vs gzip phase {api0}");
    }

    #[test]
    fn phases_use_disjoint_regions() {
        let mut g = two_phase(16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut by_phase: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 2];
        for _ in 0..20_000 {
            let s = g.next_step(&mut rng);
            if let Some(a) = s.access {
                by_phase[g.current_phase()].insert(a.0);
            }
        }
        assert!(by_phase[0].is_disjoint(&by_phase[1]));
    }

    #[test]
    fn weights_are_normalized() {
        let g = PhasedGenerator::new(
            "w",
            vec![
                Phase::from_params(&SpecWorkload::Gzip.params(), 30_000),
                Phase::from_params(&SpecWorkload::Art.params(), 10_000),
            ],
            16,
            0,
        );
        let w = g.phase_weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn as_workload_roundtrip() {
        let p = Phase::from_params(&SpecWorkload::Vpr.params(), 1_000);
        let w = p.as_workload("vpr-phase");
        assert_eq!(w.mix, SpecWorkload::Vpr.params().mix);
        assert_eq!(w.pattern, SpecWorkload::Vpr.params().pattern);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panics() {
        PhasedGenerator::new("x", vec![], 16, 0);
    }
}
