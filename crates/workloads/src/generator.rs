//! Stack-distance-driven synthetic reference generation.
//!
//! A workload is characterized by exactly the quantities the paper's
//! performance model consumes: a **reuse-distance histogram** (here a
//! distribution over per-set LRU stack positions) and an **instruction
//! mix** (event rates per instruction). The generator emits an access
//! stream whose per-set stack-distance distribution matches the requested
//! one, which gives every experiment a known ground truth to validate the
//! stressmark-based profiler against — something the paper could not do on
//! real hardware.
//!
//! # Distance convention
//!
//! We index the histogram by **stack position** `p >= 1`: an access at
//! position `p` touches the process's `p`-th most-recently-used line in
//! that set (`p = 1` is a repeat of the MRU line). Under LRU, a process
//! whose effective cache size is `S` ways hits exactly when `p <= S`, so
//! the paper's Eq. 2 reads `MPA(S) = sum_{p > S} hist(p) + p_new`, where
//! `p_new` is the probability of touching a brand-new line (infinite
//! distance).

use cmpsim::process::{AccessGenerator, Step};
use cmpsim::types::LineAddr;
use rand::Rng;
use rand::RngCore;

/// The reuse (stack-position) behaviour of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPattern {
    /// `dist[i]` is the probability of an access at stack position `i + 1`.
    /// Must sum (with `p_new`) to 1.
    pub dist: Vec<f64>,
    /// Probability of an access to a never-before-seen line.
    pub p_new: f64,
    /// Probability that an access starts a sequential streaming run
    /// (fresh consecutive lines, as in array sweeps).
    pub seq_run_prob: f64,
    /// Length of each streaming run in lines.
    pub seq_run_len: u32,
}

impl AccessPattern {
    /// Builds a pattern from raw weights over positions `1..=weights.len()`
    /// plus a new-line weight; weights are normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn from_weights(weights: &[f64], new_weight: f64) -> Self {
        assert!(
            weights.iter().chain(std::iter::once(&new_weight)).all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum::<f64>() + new_weight;
        assert!(total > 0.0, "at least one weight must be positive");
        AccessPattern {
            dist: weights.iter().map(|w| w / total).collect(),
            p_new: new_weight / total,
            seq_run_prob: 0.0,
            seq_run_len: 0,
        }
    }

    /// Adds streaming runs to the pattern (builder style).
    pub fn with_streaming(mut self, prob: f64, run_len: u32) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.seq_run_prob = prob;
        self.seq_run_len = run_len;
        self
    }

    /// Fraction of all emitted accesses that belong to streaming runs.
    pub fn streaming_fraction(&self) -> f64 {
        // lint:allow(nan_safe) -- exact sentinel: probability 0.0 disables streaming runs; validation rejects NaN parameters upstream
        if self.seq_run_prob == 0.0 || self.seq_run_len == 0 {
            return 0.0;
        }
        let extra = self.seq_run_prob * self.seq_run_len as f64;
        extra / (1.0 + extra)
    }

    /// Ground-truth miss probability at an effective cache size of `s`
    /// ways: the tail mass beyond position `s`, plus new-line and
    /// streaming accesses (both behave as infinite-distance).
    pub fn true_mpa(&self, s: usize) -> f64 {
        let f_run = self.streaming_fraction();
        let tail: f64 = self.dist.iter().skip(s).sum::<f64>() + self.p_new;
        f_run + (1.0 - f_run) * tail
    }

    /// Largest stack position with non-zero probability (the pattern's
    /// working-set depth in ways).
    pub fn depth(&self) -> usize {
        self.dist.iter().rposition(|&p| p > 0.0).map_or(0, |i| i + 1)
    }
}

/// Per-instruction event rates of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// L2 accesses per instruction (paper: API). Must be in `(0, 1]` for
    /// workloads that access the L2.
    pub api: f64,
    /// L1 data references per instruction (paper-facing: L1RPI).
    pub l1rpi: f64,
    /// Branches per instruction (BRPI).
    pub brpi: f64,
    /// FP operations per instruction (FPPI).
    pub fppi: f64,
}

impl InstructionMix {
    /// A CPU-bound integer mix with the given API.
    pub fn integer(api: f64) -> Self {
        InstructionMix { api, l1rpi: 0.35, brpi: 0.20, fppi: 0.0 }
    }

    /// A floating-point mix with the given API.
    pub fn floating_point(api: f64) -> Self {
        InstructionMix { api, l1rpi: 0.40, brpi: 0.12, fppi: 0.30 }
    }
}

/// A generator that reproduces a target [`AccessPattern`] and
/// [`InstructionMix`].
///
/// Each process must receive a distinct `region` so address spaces never
/// overlap (the paper assumes no data sharing between processes).
pub struct StackDistGenerator {
    name: String,
    pattern: AccessPattern,
    mix: InstructionMix,
    num_sets: usize,
    region: u64,
    /// Per-set private LRU stacks of this process's own lines, ordered
    /// MRU-first and capped at `stack_cap`.
    stacks: Vec<Vec<LineAddr>>,
    /// `num_sets - 1` when the set count is a power of two (mask instead
    /// of modulo on the per-access set mapping).
    set_mask: Option<u64>,
    /// Monotone allocator for fresh lines.
    next_unique: u64,
    /// Remaining lines in the current streaming run.
    run_left: u32,
    last_addr: LineAddr,
    /// Round-robin set cursor (decorrelates set choice from the RNG).
    set_cursor: usize,
    /// Cumulative distribution over positions for fast sampling.
    cdf: Vec<f64>,
    stack_cap: usize,
}

impl StackDistGenerator {
    /// Creates a generator targeting a cache with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0`, the pattern is empty, or `api` is not in
    /// `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        pattern: AccessPattern,
        mix: InstructionMix,
        num_sets: usize,
        region: u64,
    ) -> Self {
        assert!(num_sets > 0, "generator needs a positive set count");
        assert!(mix.api > 0.0 && mix.api <= 1.0, "api must be in (0, 1], got {}", mix.api);
        assert!(!pattern.dist.is_empty() || pattern.p_new > 0.0, "pattern must be non-empty");
        let mut cdf = Vec::with_capacity(pattern.dist.len());
        let mut acc = 0.0;
        for &p in &pattern.dist {
            acc += p;
            cdf.push(acc);
        }
        let stack_cap = (pattern.dist.len() + 8).max(16);
        StackDistGenerator {
            name: name.into(),
            pattern,
            mix,
            num_sets,
            region,
            stacks: vec![Vec::new(); num_sets],
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            next_unique: 0,
            run_left: 0,
            last_addr: LineAddr(0),
            set_cursor: 0,
            cdf,
            stack_cap,
        }
    }

    fn fresh_line(&mut self, set: usize) -> LineAddr {
        let unique = (self.region << 40) | self.next_unique;
        self.next_unique += 1;
        LineAddr(set as u64 + self.num_sets as u64 * unique)
    }

    fn touch(&mut self, addr: LineAddr) {
        let set = match self.set_mask {
            Some(mask) => (addr.0 & mask) as usize,
            None => (addr.0 % self.num_sets as u64) as usize,
        };
        let stack = &mut self.stacks[set];
        // Promote to MRU with one rotation (shift the slots above the old
        // position right by one) instead of a remove + push_front pair.
        match stack.iter().position(|&a| a == addr) {
            Some(pos) => {
                stack.copy_within(0..pos, 1);
                stack[0] = addr;
            }
            None => {
                if stack.len() < self.stack_cap {
                    stack.push(addr);
                }
                let last = stack.len() - 1;
                stack.copy_within(0..last, 1);
                stack[0] = addr;
            }
        }
    }

    fn next_access(&mut self, rng: &mut dyn RngCore) -> LineAddr {
        // Continue an active streaming run.
        if self.run_left > 0 {
            self.run_left -= 1;
            let addr = self.last_addr.next();
            self.last_addr = addr;
            self.touch(addr);
            return addr;
        }
        // Maybe start a new run with a fresh region of lines.
        if self.pattern.seq_run_prob > 0.0
            && rng.gen_range(0.0..1.0) < self.pattern.seq_run_prob
            && self.pattern.seq_run_len > 0
        {
            self.run_left = self.pattern.seq_run_len - 1;
            let set = self.advance_cursor();
            let addr = self.fresh_line(set);
            self.last_addr = addr;
            self.touch(addr);
            return addr;
        }
        // Ordinary stack-position draw. The CDF is non-decreasing, so a
        // binary search finds the same index the old linear scan did.
        let set = self.advance_cursor();
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c <= u);
        let addr = if idx < self.cdf.len() {
            // Position idx + 1 in this set's private stack.
            match self.stacks[set].get(idx).copied() {
                Some(a) => a,
                None => self.fresh_line(set), // stack not yet deep enough
            }
        } else {
            self.fresh_line(set) // the p_new tail
        };
        self.last_addr = addr;
        self.touch(addr);
        addr
    }

    fn advance_cursor(&mut self) -> usize {
        // Walk sets with a large odd stride so consecutive accesses spread
        // across the index space while still covering every set uniformly.
        let set = self.set_cursor;
        let next = self.set_cursor + 17;
        // cursor < num_sets, so one subtraction wraps unless the set
        // count is tiny; fall back to modulo for those.
        self.set_cursor = if next < self.num_sets {
            next
        } else if next - self.num_sets < self.num_sets {
            next - self.num_sets
        } else {
            next % self.num_sets
        };
        set
    }

    /// The pattern this generator reproduces.
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }

    /// The instruction mix this generator reproduces.
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }
}

impl AccessGenerator for StackDistGenerator {
    fn next_step(&mut self, rng: &mut dyn RngCore) -> Step {
        // Geometric-ish gap with mean 1/api (exponential draw, min 1).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = ((-u.ln()) / self.mix.api).round().max(1.0) as u64;
        let addr = self.next_access(rng);
        Step {
            instructions: gap,
            l1_refs: stochastic_count(gap, self.mix.l1rpi, rng),
            branches: stochastic_count(gap, self.mix.brpi, rng),
            fp_ops: stochastic_count(gap, self.mix.fppi, rng),
            stall_cycles: 0,
            access: Some(addr),
        }
    }

    fn label(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for StackDistGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackDistGenerator")
            .field("name", &self.name)
            .field("depth", &self.pattern.depth())
            .field("api", &self.mix.api)
            .field("region", &self.region)
            .finish()
    }
}

/// Unbiased integer count for `n` trials at per-trial rate `rate`
/// (expected value `n * rate`, supports `rate > 1` for multi-event
/// instructions).
pub fn stochastic_count(n: u64, rate: f64, rng: &mut dyn RngCore) -> u64 {
    if rate <= 0.0 || n == 0 {
        return 0;
    }
    let expected = n as f64 * rate;
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(rng.gen_range(0.0..1.0) < frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1234)
    }

    fn simple_pattern() -> AccessPattern {
        AccessPattern::from_weights(&[4.0, 3.0, 2.0, 1.0], 1.0)
    }

    #[test]
    fn weights_normalize() {
        let p = simple_pattern();
        let total: f64 = p.dist.iter().sum::<f64>() + p.p_new;
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p.dist[0] - 4.0 / 11.0).abs() < 1e-12);
        assert!((p.p_new - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn true_mpa_is_tail_mass() {
        let p = simple_pattern();
        assert!((p.true_mpa(0) - 1.0).abs() < 1e-12);
        assert!((p.true_mpa(4) - p.p_new).abs() < 1e-12);
        assert!((p.true_mpa(2) - (p.dist[2] + p.dist[3] + p.p_new)).abs() < 1e-12);
        // Monotone non-increasing in s.
        for s in 0..6 {
            assert!(p.true_mpa(s) >= p.true_mpa(s + 1) - 1e-12);
        }
    }

    #[test]
    fn depth_reports_last_nonzero() {
        assert_eq!(simple_pattern().depth(), 4);
        let p = AccessPattern::from_weights(&[1.0, 0.0, 0.0], 0.5);
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn streaming_fraction_math() {
        let p = simple_pattern().with_streaming(0.1, 10);
        // extra = 1.0 per base access -> half of all accesses stream.
        assert!((p.streaming_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(simple_pattern().streaming_fraction(), 0.0);
    }

    #[test]
    fn generator_emits_requested_distance_distribution() {
        // Drive the generator and recompute its empirical stack-position
        // distribution with an independent oracle (per-set stacks).
        let pattern = simple_pattern();
        let mix = InstructionMix::integer(0.05);
        let num_sets = 64;
        let mut g = StackDistGenerator::new("t", pattern.clone(), mix, num_sets, 0);
        let mut rng = rng();
        let mut oracle: Vec<Vec<LineAddr>> = vec![Vec::new(); num_sets];
        let mut pos_counts = [0u64; 8];
        let mut new_count = 0u64;
        let n = 60_000;
        for _ in 0..n {
            let step = g.next_step(&mut rng);
            let addr = step.access.unwrap();
            let set = (addr.0 % num_sets as u64) as usize;
            let st = &mut oracle[set];
            match st.iter().position(|&a| a == addr) {
                Some(p) => {
                    if p < pos_counts.len() {
                        pos_counts[p] += 1;
                    }
                    st.remove(p);
                }
                None => new_count += 1,
            }
            st.insert(0, addr);
            st.truncate(16);
        }
        let total = n as f64;
        for (i, &expect) in pattern.dist.iter().enumerate() {
            let got = pos_counts[i] as f64 / total;
            assert!(
                (got - expect).abs() < 0.02,
                "position {}: got {got:.3}, expected {expect:.3}",
                i + 1
            );
        }
        let got_new = new_count as f64 / total;
        // Early accesses are compulsory-new until stacks warm, so allow a
        // small positive bias.
        assert!((got_new - pattern.p_new).abs() < 0.03, "new: {got_new:.3} vs {}", pattern.p_new);
    }

    #[test]
    fn gap_matches_api() {
        let mix = InstructionMix::integer(0.02);
        let mut g = StackDistGenerator::new("t", simple_pattern(), mix, 16, 0);
        let mut rng = rng();
        let n = 20_000;
        let total_instr: u64 = (0..n).map(|_| g.next_step(&mut rng).instructions).sum();
        let api = n as f64 / total_instr as f64;
        assert!((api - 0.02).abs() < 0.002, "api {api}");
    }

    #[test]
    fn mix_rates_match() {
        let mix = InstructionMix { api: 0.05, l1rpi: 0.4, brpi: 0.15, fppi: 0.25 };
        let mut g = StackDistGenerator::new("t", simple_pattern(), mix, 16, 0);
        let mut rng = rng();
        let mut instr = 0u64;
        let mut l1 = 0u64;
        let mut br = 0u64;
        let mut fp = 0u64;
        for _ in 0..20_000 {
            let s = g.next_step(&mut rng);
            instr += s.instructions;
            l1 += s.l1_refs;
            br += s.branches;
            fp += s.fp_ops;
        }
        assert!((l1 as f64 / instr as f64 - 0.4).abs() < 0.02);
        assert!((br as f64 / instr as f64 - 0.15).abs() < 0.02);
        assert!((fp as f64 / instr as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    fn regions_do_not_collide() {
        let mut a =
            StackDistGenerator::new("a", simple_pattern(), InstructionMix::integer(0.1), 16, 1);
        let mut b =
            StackDistGenerator::new("b", simple_pattern(), InstructionMix::integer(0.1), 16, 2);
        let mut rng = rng();
        let addrs_a: std::collections::HashSet<u64> =
            (0..500).map(|_| a.next_step(&mut rng).access.unwrap().0).collect();
        let addrs_b: std::collections::HashSet<u64> =
            (0..500).map(|_| b.next_step(&mut rng).access.unwrap().0).collect();
        assert!(addrs_a.is_disjoint(&addrs_b));
    }

    #[test]
    fn streaming_emits_consecutive_lines() {
        let pattern = AccessPattern::from_weights(&[1.0], 0.0).with_streaming(1.0, 4);
        let mut g = StackDistGenerator::new("s", pattern, InstructionMix::integer(0.1), 16, 0);
        let mut rng = rng();
        let addrs: Vec<u64> = (0..4).map(|_| g.next_step(&mut rng).access.unwrap().0).collect();
        assert_eq!(addrs[1], addrs[0] + 1);
        assert_eq!(addrs[2], addrs[0] + 2);
        assert_eq!(addrs[3], addrs[0] + 3);
    }

    #[test]
    fn stochastic_count_unbiased() {
        let mut rng = rng();
        let trials = 10_000;
        let sum: u64 = (0..trials).map(|_| stochastic_count(10, 0.35, &mut rng)).sum();
        let avg = sum as f64 / trials as f64;
        assert!((avg - 3.5).abs() < 0.05, "{avg}");
        assert_eq!(stochastic_count(0, 0.5, &mut rng), 0);
        assert_eq!(stochastic_count(10, 0.0, &mut rng), 0);
        // rate > 1 supported.
        let sum: u64 = (0..trials).map(|_| stochastic_count(10, 1.2, &mut rng)).sum();
        assert!((sum as f64 / trials as f64 - 12.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "api must be in")]
    fn invalid_api_panics() {
        StackDistGenerator::new(
            "t",
            simple_pattern(),
            InstructionMix { api: 0.0, l1rpi: 0.0, brpi: 0.0, fppi: 0.0 },
            16,
            0,
        );
    }
}
