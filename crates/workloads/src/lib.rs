//! Synthetic workloads for the `mpmc` workspace.
//!
//! SPEC CPU2000 binaries are not available in this environment, so this
//! crate provides behaviour-preserving synthetic stand-ins (see the
//! substitution table in `DESIGN.md`):
//!
//! - [`generator`]: the stack-distance-driven reference generator that all
//!   workloads are built on, parameterized by a reuse-distance
//!   distribution and an instruction mix — exactly the quantities the
//!   paper's models consume.
//! - [`spec`]: ten named workloads mirroring the paper's benchmarks
//!   (gzip, vpr, mcf, bzip2, twolf, art, equake, ammp, gcc, parser).
//! - [`stressmark`]: the tunable-footprint profiling stressmark of §3.4.
//! - [`microbench`]: the six-phase, eight-level power-training
//!   microbenchmark of §4.1.
//! - [`phased`]: multi-phase workloads for the assumption-violation
//!   study (the paper's §3.1 assumption 2).
//!
//! # Examples
//!
//! ```
//! use workloads::spec::SpecWorkload;
//!
//! let mcf = SpecWorkload::Mcf.params();
//! // mcf is memory-bound: even with half a 16-way cache it still misses.
//! assert!(mcf.pattern.true_mpa(8) > 0.1);
//! let gen = mcf.generator(512, 0);
//! # let _ = gen;
//! ```

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]

pub mod generator;
pub mod microbench;
pub mod phased;
pub mod spec;
pub mod stressmark;
