//! The power-model training microbenchmark (§4.1).
//!
//! The paper constructs its power model from 8 SPEC benchmarks plus a
//! custom microbenchmark with six phases: one idle phase, then one phase
//! per monitored architectural block (L1, L2, L2-miss path, branch unit,
//! FP unit). Within each phase the access frequency starts at its maximum
//! and steps down through 8 levels, giving the regression independent
//! excitation of each event rate across a wide dynamic range.
//!
//! Durations are scaled with the rest of the simulator (the paper's 80 s
//! phases / 10 s levels become `phase_s` / `phase_s / 8`): what matters to
//! MVLR is the spread of (rate, power) observations, not wall time.

use cmpsim::process::{AccessGenerator, Step};
use cmpsim::types::LineAddr;
use rand::Rng;
use rand::RngCore;

use crate::generator::stochastic_count;

/// Which architectural block a phase exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Near-idle spin.
    Idle,
    /// L1-resident loads (no L2 traffic).
    L1,
    /// L2-resident loads (L2 hits, few misses).
    L2Hit,
    /// Streaming loads that always miss the L2.
    L2Miss,
    /// Branch-dense integer code.
    Branch,
    /// FP-dense code.
    Fp,
}

impl PhaseKind {
    /// The canonical six-phase order of the paper's microbenchmark.
    pub fn schedule() -> [PhaseKind; 6] {
        [
            PhaseKind::Idle,
            PhaseKind::L1,
            PhaseKind::L2Hit,
            PhaseKind::L2Miss,
            PhaseKind::Branch,
            PhaseKind::Fp,
        ]
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    kind: PhaseKind,
    /// Intensity in (0, 1]; scales the exercised block's event rate.
    intensity: f64,
    /// Instructions this segment lasts.
    budget: u64,
}

/// The six-phase, eight-level training microbenchmark.
///
/// The generator loops over its schedule forever, so it can be run for any
/// duration; one full sweep takes `6 * levels * level_instructions`
/// instructions.
pub struct Microbench {
    segments: Vec<Segment>,
    seg_idx: usize,
    spent: u64,
    num_sets: usize,
    region: u64,
    l2_cursor: u64,
    fresh: u64,
    name: String,
    /// Lines per set the L2Hit phase cycles over (small enough to stay
    /// resident).
    l2hit_footprint: u64,
}

impl Microbench {
    /// Default number of intensity levels per phase (paper: 8).
    pub const LEVELS: usize = 8;

    /// Creates a microbenchmark for a machine with `num_sets` L2 sets.
    ///
    /// `level_instructions` is the instruction budget of each intensity
    /// level; `region` separates its address space from co-runners.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0` or `level_instructions == 0`.
    pub fn new(num_sets: usize, level_instructions: u64, region: u64) -> Self {
        assert!(num_sets > 0, "microbenchmark needs a positive set count");
        assert!(level_instructions > 0, "level budget must be positive");
        let mut segments = Vec::new();
        for kind in PhaseKind::schedule() {
            for level in 0..Self::LEVELS {
                // Highest intensity first, stepping down (paper: "the
                // access frequency is the highest at the start of a phase
                // and reduced to a lower level every 10 s").
                let intensity = (Self::LEVELS - level) as f64 / Self::LEVELS as f64;
                // The idle phase retires almost no instructions, so its
                // budget (which is denominated in nominal block
                // instructions) is cut to keep its wall time comparable.
                let budget = match kind {
                    PhaseKind::Idle => (level_instructions / 8).max(40),
                    _ => level_instructions,
                };
                segments.push(Segment { kind, intensity, budget });
            }
        }
        Microbench {
            segments,
            seg_idx: 0,
            spent: 0,
            num_sets,
            region,
            l2_cursor: 0,
            fresh: 0,
            name: "microbench".into(),
            l2hit_footprint: 2,
        }
    }

    fn fresh_line(&mut self) -> LineAddr {
        let unique = (self.region << 40) | self.fresh;
        self.fresh += 1;
        LineAddr((self.fresh % self.num_sets as u64) + self.num_sets as u64 * unique)
    }

    fn l2hit_line(&mut self) -> LineAddr {
        // Cycle over a tiny resident footprint: footprint lines in each set.
        let total = self.num_sets as u64 * self.l2hit_footprint;
        let k = self.l2_cursor % total;
        self.l2_cursor += 1;
        let set = k % self.num_sets as u64;
        let way = k / self.num_sets as u64;
        LineAddr(set + self.num_sets as u64 * ((self.region << 40) | way))
    }

    /// Total instructions in one full sweep of the schedule.
    pub fn sweep_instructions(&self) -> u64 {
        self.segments.iter().map(|s| s.budget).sum()
    }
}

impl AccessGenerator for Microbench {
    fn next_step(&mut self, rng: &mut dyn RngCore) -> Step {
        let seg = self.segments[self.seg_idx];
        // Advance the schedule (looping) once the segment's budget is spent.
        if self.spent >= seg.budget {
            self.spent = 0;
            self.seg_idx = (self.seg_idx + 1) % self.segments.len();
        }
        let seg = self.segments[self.seg_idx];
        let block: u64 = 40;
        self.spent += block;
        let i = seg.intensity;
        match seg.kind {
            PhaseKind::Idle => Step {
                // A sleeping process: almost no instructions retire (the
                // paper records true core idle power in this phase), so
                // the block is nearly all stall cycles.
                instructions: block / 20,
                l1_refs: 0,
                branches: 0,
                fp_ops: 0,
                stall_cycles: block * 10,
                access: None,
            },
            PhaseKind::L1 => Step {
                instructions: block,
                l1_refs: stochastic_count(block, 1.1 * i, rng),
                branches: stochastic_count(block, 0.05, rng),
                fp_ops: 0,
                stall_cycles: 0,
                access: None,
            },
            PhaseKind::L2Hit => {
                // One candidate L2 access per block, issued with
                // probability `i`: API sweeps 0 .. 1/block across levels.
                let access =
                    if rng.gen_range(0.0..1.0) < i { Some(self.l2hit_line()) } else { None };
                Step {
                    instructions: block,
                    l1_refs: stochastic_count(block, 0.4, rng),
                    branches: stochastic_count(block, 0.05, rng),
                    fp_ops: 0,
                    stall_cycles: 0,
                    access,
                }
            }
            PhaseKind::L2Miss => {
                let access =
                    if rng.gen_range(0.0..1.0) < i { Some(self.fresh_line()) } else { None };
                Step {
                    instructions: block,
                    l1_refs: stochastic_count(block, 0.4, rng),
                    branches: stochastic_count(block, 0.05, rng),
                    fp_ops: 0,
                    stall_cycles: 0,
                    access,
                }
            }
            PhaseKind::Branch => Step {
                instructions: block,
                l1_refs: stochastic_count(block, 0.15, rng),
                branches: stochastic_count(block, 0.45 * i, rng),
                fp_ops: 0,
                stall_cycles: 0,
                access: None,
            },
            PhaseKind::Fp => Step {
                instructions: block,
                l1_refs: stochastic_count(block, 0.2, rng),
                branches: stochastic_count(block, 0.04, rng),
                fp_ops: stochastic_count(block, 0.8 * i, rng),
                stall_cycles: 0,
                access: None,
            },
        }
    }

    fn label(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Microbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microbench")
            .field("segments", &self.segments.len())
            .field("seg_idx", &self.seg_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn schedule_has_48_segments() {
        let m = Microbench::new(64, 1000, 0);
        assert_eq!(m.segments.len(), 6 * 8);
        // Idle segments carry a reduced budget (1000/8 each).
        assert_eq!(m.sweep_instructions(), 40 * 1000 + 8 * 125);
    }

    #[test]
    fn intensity_descends_within_phase() {
        let m = Microbench::new(64, 1000, 0);
        for phase in 0..6 {
            for level in 1..8 {
                let a = m.segments[phase * 8 + level - 1].intensity;
                let b = m.segments[phase * 8 + level].intensity;
                assert!(a > b, "phase {phase} level {level}");
            }
        }
    }

    #[test]
    fn phases_excite_their_block() {
        // Run each phase long enough to aggregate rates and check the
        // intended event dominates.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut m = Microbench::new(64, 4000, 0);
        let mut per_phase = vec![[0u64; 5]; 6]; // l1, l2ref, branch, fp, instr
        for _ in 0..(6 * 8 * 100) {
            // The step belongs to the segment *after* any internal
            // advance, so read the index after the call.
            let s = m.next_step(&mut rng);
            let phase = m.seg_idx / 8;
            per_phase[phase][0] += s.l1_refs;
            per_phase[phase][1] += u64::from(s.access.is_some());
            per_phase[phase][2] += s.branches;
            per_phase[phase][3] += s.fp_ops;
            per_phase[phase][4] += s.instructions;
        }
        let rate = |p: usize, e: usize| per_phase[p][e] as f64 / per_phase[p][4] as f64;
        // Idle phase: everything tiny.
        assert!(rate(0, 0) < 0.05 && rate(0, 3) == 0.0);
        // L1 phase: l1 rate much higher than idle's.
        assert!(rate(1, 0) > 0.4, "{}", rate(1, 0));
        // L2Hit and L2Miss phases: L2 accesses present.
        assert!(rate(2, 1) > 0.005, "{}", rate(2, 1));
        assert!(rate(3, 1) > 0.005, "{}", rate(3, 1));
        // Branch phase dominates branches; FP phase dominates FP.
        assert!(rate(4, 2) > 2.0 * rate(0, 2));
        assert!(rate(5, 3) > 0.2, "{}", rate(5, 3));
    }

    #[test]
    fn l2miss_phase_uses_fresh_lines() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = Microbench::new(16, 4000, 0);
        // Fast-forward to the L2Miss phase (index 3).
        m.seg_idx = 3 * 8;
        m.spent = 0;
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        while count < 50 {
            let s = m.next_step(&mut rng);
            if m.seg_idx / 8 != 3 {
                break;
            }
            if let Some(a) = s.access {
                assert!(seen.insert(a.0), "L2Miss phase revisited a line");
                count += 1;
            }
        }
        assert!(count > 10, "phase produced {count} accesses");
    }

    #[test]
    fn schedule_loops() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut m = Microbench::new(16, 40, 0);
        // Each segment is one 40-instruction block; push beyond a sweep.
        for _ in 0..(48 * 3) {
            m.next_step(&mut rng);
        }
        assert!(m.seg_idx < 48);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        Microbench::new(16, 0, 0);
    }
}
