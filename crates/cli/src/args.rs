//! A small hand-rolled argument parser: positionals, `--key value`
//! options, and boolean `--flag`s. No external dependencies.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: BTreeSet<String>,
}

impl ParsedArgs {
    /// Parses `argv` (without the program/command name). `known_flags`
    /// lists the boolean switches; every other `--name` consumes the next
    /// token as its value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a `--name` with a missing
    /// value or a repeated option.
    pub fn parse<I, S>(argv: I, known_flags: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ParsedArgs::default();
        let mut it = argv.into_iter().map(Into::into).peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("stray '--'".into());
                }
                if known_flags.contains(&name) {
                    out.flags.insert(name.to_string());
                    continue;
                }
                // Support --name=value and --name value.
                let (key, value) = match name.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let v =
                            it.next().ok_or_else(|| format!("option --{name} needs a value"))?;
                        (name.to_string(), v)
                    }
                };
                if out.options.insert(key.clone(), value).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// The positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The value of option `--name`, if present.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse::<T>().map_err(|_| format!("option --{name}: cannot parse '{raw}'"))
            }
        }
    }

    /// Whether boolean `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_parsing() {
        let a = ParsedArgs::parse(
            ["mcf", "--machine", "duo", "--fast", "gzip", "--out=prof.txt"],
            &["fast"],
        )
        .unwrap();
        assert_eq!(a.positionals(), &["mcf".to_string(), "gzip".to_string()]);
        assert_eq!(a.opt("machine"), Some("duo"));
        assert_eq!(a.opt("out"), Some("prof.txt"));
        assert!(a.flag("fast"));
        assert!(!a.flag("full"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(ParsedArgs::parse(["--machine"], &[]).is_err());
    }

    #[test]
    fn duplicate_option_is_an_error() {
        assert!(ParsedArgs::parse(["--m", "a", "--m", "b"], &[]).is_err());
    }

    #[test]
    fn stray_double_dash_is_an_error() {
        assert!(ParsedArgs::parse(["--"], &[]).is_err());
    }

    #[test]
    fn opt_parse_defaults_and_errors() {
        let a = ParsedArgs::parse(["--steps", "100"], &[]).unwrap();
        assert_eq!(a.opt_parse("steps", 5u64).unwrap(), 100);
        assert_eq!(a.opt_parse("other", 5u64).unwrap(), 5);
        let a = ParsedArgs::parse(["--steps", "ten"], &[]).unwrap();
        assert!(a.opt_parse("steps", 5u64).is_err());
    }
}
