//! Library backing the `mpmc` command-line tool.
//!
//! The CLI packages the framework's workflow for interactive use:
//! profile workloads once ([`commands::profile`]), persist the profiles,
//! then predict contention ([`commands::predict`]) and estimate the power
//! of tentative assignments ([`commands::estimate`]) without further
//! runs; [`commands::simulate`](commands::simulate_cmd) validates any
//! estimate against the simulator. Commands are plain functions returning
//! their output text, so everything is unit-testable.

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]
// Command code must report failures through `CliError` (with its exit-code
// taxonomy), never panic; tests may still unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod args;
pub mod commands;
pub mod resolve;
