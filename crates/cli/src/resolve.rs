//! Resolving CLI specifiers: machines, workloads, profiles, and
//! assignment strings.

use cmpsim::machine::MachineConfig;
use mpmc_model::feature::FeatureVector;
use mpmc_model::persist;
use mpmc_model::profile::{ProcessProfile, ProfileOptions, Profiler};
use workloads::spec::SpecWorkload;

/// Errors surfaced to the CLI user (already formatted for display).
pub type CliError = String;

/// Resolves a machine preset by name, optionally shrinking the cache to
/// `sets_override` sets (for quick experiments and tests).
///
/// # Errors
///
/// Returns a message listing valid names for an unknown machine.
pub fn machine(name: &str, sets_override: Option<usize>) -> Result<MachineConfig, CliError> {
    let mut m = match name {
        "server" | "four-core-server" => MachineConfig::four_core_server(),
        "workstation" | "two-core-workstation" => MachineConfig::two_core_workstation(),
        "duo" | "duo-laptop" => MachineConfig::duo_laptop(),
        other => {
            return Err(format!(
                "unknown machine '{other}'; choose server, workstation, or duo"
            ))
        }
    };
    if let Some(sets) = sets_override {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!("--sets must be a positive power of two, got {sets}"));
        }
        m.l2_sets = sets;
    }
    Ok(m)
}

/// Resolves a built-in workload by name.
///
/// # Errors
///
/// Returns a message listing valid names for an unknown workload.
pub fn workload(name: &str) -> Result<SpecWorkload, CliError> {
    SpecWorkload::duo_suite()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = SpecWorkload::duo_suite().iter().map(|w| w.name()).collect();
            format!("unknown workload '{name}'; choose one of {}", names.join(", "))
        })
}

/// Profiling options for CLI runs (`--fast` trades accuracy for speed).
pub fn profile_options(fast: bool) -> ProfileOptions {
    if fast {
        ProfileOptions { duration_s: 0.3, warmup_s: 0.1, seed: 0xC11, ..Default::default() }
    } else {
        ProfileOptions { duration_s: 1.0, warmup_s: 0.35, seed: 0xC11, ..Default::default() }
    }
}

/// Resolves a feature-vector spec: an existing file (persisted profile)
/// or a built-in workload name (ground-truth feature vector — instant).
///
/// # Errors
///
/// Returns a message for unknown specs or unreadable/mismatched files.
pub fn feature(
    spec: &str,
    machine: &MachineConfig,
) -> Result<FeatureVector, CliError> {
    if std::path::Path::new(spec).exists() {
        let file = std::fs::File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
        let fv = persist::read_feature(file).map_err(|e| format!("{spec}: {e}"))?;
        if fv.assoc() != machine.l2_assoc() {
            return fv
                .with_assoc(machine.l2_assoc())
                .map_err(|e| format!("{spec}: retarget failed: {e}"));
        }
        return Ok(fv);
    }
    let w = workload(spec)?;
    FeatureVector::from_workload(&w.params(), machine).map_err(|e| format!("{spec}: {e}"))
}

/// Resolves a full process-profile spec: an existing file or a built-in
/// workload name (profiled on the fly — takes a few seconds per process).
///
/// # Errors
///
/// As for [`feature`], plus profiling errors.
pub fn profile(
    spec: &str,
    machine: &MachineConfig,
    fast: bool,
) -> Result<ProcessProfile, CliError> {
    if std::path::Path::new(spec).exists() {
        let file = std::fs::File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
        return persist::read_profile(file).map_err(|e| format!("{spec}: {e}"));
    }
    let w = workload(spec)?;
    Profiler::new(machine.clone())
        .with_options(profile_options(fast))
        .profile_full(&w.params())
        .map_err(|e| format!("{spec}: {e}"))
}

/// Parses an assignment string: per-core process lists separated by `;`,
/// processes within a core separated by `,`. Empty segments are idle
/// cores; trailing idle cores may be omitted.
///
/// Example for a 4-core machine: `"mcf,art;gzip"` puts mcf and art on
/// core 0 (time-shared), gzip on core 1, and leaves cores 2-3 idle.
///
/// # Errors
///
/// Returns a message when more cores are named than the machine has.
pub fn assignment_string(
    spec: &str,
    num_cores: usize,
) -> Result<Vec<Vec<String>>, CliError> {
    let mut per_core: Vec<Vec<String>> = spec
        .split(';')
        .map(|core| {
            core.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .collect();
    if per_core.len() > num_cores {
        return Err(format!(
            "assignment names {} cores but the machine has {num_cores}",
            per_core.len()
        ));
    }
    per_core.resize(num_cores, Vec::new());
    Ok(per_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_resolve() {
        assert_eq!(machine("server", None).unwrap().num_cores(), 4);
        assert_eq!(machine("duo", None).unwrap().l2_assoc(), 12);
        assert_eq!(machine("workstation", Some(64)).unwrap().l2_sets, 64);
        assert!(machine("toaster", None).is_err());
        assert!(machine("server", Some(3)).is_err());
    }

    #[test]
    fn workloads_resolve() {
        assert_eq!(workload("mcf").unwrap(), SpecWorkload::Mcf);
        assert!(workload("firefox").is_err());
    }

    #[test]
    fn builtin_feature_is_instant() {
        let m = machine("server", None).unwrap();
        let fv = feature("gzip", &m).unwrap();
        assert_eq!(fv.name(), "gzip");
        assert!(feature("nonexistent-file-or-workload", &m).is_err());
    }

    #[test]
    fn feature_file_roundtrip_with_retarget() {
        let server = machine("server", None).unwrap();
        let duo = machine("duo", None).unwrap();
        let fv = feature("twolf", &server).unwrap();
        let path = std::env::temp_dir().join("mpmc_cli_test_profile.txt");
        let file = std::fs::File::create(&path).unwrap();
        mpmc_model::persist::write_feature(&fv, file).unwrap();
        // Loading against the duo machine retargets 16 -> 12 ways.
        let loaded = feature(path.to_str().unwrap(), &duo).unwrap();
        assert_eq!(loaded.assoc(), 12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn assignment_strings() {
        let a = assignment_string("mcf,art;gzip", 4).unwrap();
        assert_eq!(a[0], vec!["mcf", "art"]);
        assert_eq!(a[1], vec!["gzip"]);
        assert!(a[2].is_empty() && a[3].is_empty());
        let a = assignment_string(";;mcf", 4).unwrap();
        assert!(a[0].is_empty());
        assert_eq!(a[2], vec!["mcf"]);
        assert!(assignment_string("a;b;c", 2).is_err());
        // Whitespace tolerated.
        let a = assignment_string(" mcf , art ; gzip ", 2).unwrap();
        assert_eq!(a[0], vec!["mcf", "art"]);
    }
}
