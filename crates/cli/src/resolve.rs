//! Resolving CLI specifiers: machines, workloads, profiles, and
//! assignment strings.

use crate::args::ParsedArgs;
use cmpsim::machine::MachineConfig;
use mpmc_model::feature::FeatureVector;
use mpmc_model::persist;
use mpmc_model::profile::{ProcessProfile, ProfileOptions, Profiler};
use mpmc_model::ModelError;
use std::fmt;
use workloads::spec::SpecWorkload;

// The exit-code taxonomy lives in the service crate (the wire protocol's
// `error.code` field mirrors it); the CLI re-exports it so both always
// agree. Zero is success; see the README's "Exit codes" table.
pub use mpmc_service::exit_code;

/// An error surfaced to the CLI user: a display-ready message plus the
/// process exit code it maps to (see [`exit_code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Display-ready message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// An error with an explicit exit code.
    pub fn new(code: i32, message: impl Into<String>) -> Self {
        CliError { message: message.into(), code }
    }

    /// A usage error ([`exit_code::USAGE`]).
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(exit_code::USAGE, message)
    }

    /// An invalid-input-data error ([`exit_code::INVALID_DATA`]).
    pub fn data(message: impl Into<String>) -> Self {
        Self::new(exit_code::INVALID_DATA, message)
    }

    /// A solver/simulation failure ([`exit_code::SOLVER`]).
    pub fn solver(message: impl Into<String>) -> Self {
        Self::new(exit_code::SOLVER, message)
    }

    /// An I/O failure ([`exit_code::IO`]).
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(exit_code::IO, message)
    }

    /// A strict-mode rejection ([`exit_code::STRICT`]).
    pub fn strict(message: impl Into<String>) -> Self {
        Self::new(exit_code::STRICT, message)
    }

    /// A validation divergence ([`exit_code::DIVERGENCE`]): the
    /// model-vs-simulator pipeline completed but the numbers disagree.
    pub fn divergence(message: impl Into<String>) -> Self {
        Self::new(exit_code::DIVERGENCE, message)
    }

    /// Unwaived deny-level lint findings ([`exit_code::LINT`]).
    pub fn lint(message: impl Into<String>) -> Self {
        Self::new(exit_code::LINT, message)
    }

    /// Prefixes the message with `context` (typically the offending
    /// file or spec), keeping the exit code.
    #[must_use]
    pub fn context(mut self, context: &str) -> Self {
        self.message = format!("{context}: {}", self.message);
        self
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Bare strings are argument/usage errors (the parser's error type).
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::usage(message)
    }
}

/// Classifies a model error into the CLI exit-code taxonomy: bad input
/// data is distinguished from solver trouble and strict-mode rejection.
/// The classification itself lives next to the taxonomy in the service
/// crate so wire responses and exit codes can never drift apart.
impl From<ModelError> for CliError {
    fn from(e: ModelError) -> Self {
        CliError::new(mpmc_service::classify_model_error(&e), e.to_string())
    }
}

/// Resolves the `--workers` option. Absent means auto (`0`, which lets
/// [`mathkit::parallel::resolve_workers`] consult `MPMC_WORKERS` and the
/// machine's parallelism at call time); when given, the flag beats the
/// environment variable and must be a positive integer — zero or
/// garbage is a usage error, never a silent fallback to auto.
///
/// # Errors
///
/// [`exit_code::USAGE`] for a zero, negative, or unparsable value.
pub fn workers(args: &ParsedArgs) -> Result<usize, CliError> {
    match args.opt("workers") {
        None => Ok(0),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => {
                Err(CliError::usage("option --workers must be at least 1 (omit the flag for auto)"))
            }
            Ok(n) => Ok(n),
            Err(_) => Err(CliError::usage(format!("option --workers: cannot parse '{raw}'"))),
        },
    }
}

/// Resolves a machine preset by name, optionally shrinking the cache to
/// `sets_override` sets (for quick experiments and tests).
///
/// # Errors
///
/// Returns a message listing valid names for an unknown machine.
pub fn machine(name: &str, sets_override: Option<usize>) -> Result<MachineConfig, CliError> {
    let mut m = match name {
        "server" | "four-core-server" => MachineConfig::four_core_server(),
        "workstation" | "two-core-workstation" => MachineConfig::two_core_workstation(),
        "duo" | "duo-laptop" => MachineConfig::duo_laptop(),
        other => {
            return Err(CliError::usage(format!(
                "unknown machine '{other}'; choose server, workstation, or duo"
            )))
        }
    };
    if let Some(sets) = sets_override {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(CliError::usage(format!(
                "--sets must be a positive power of two, got {sets}"
            )));
        }
        m.l2_sets = sets;
    }
    Ok(m)
}

/// Resolves a built-in workload by name.
///
/// # Errors
///
/// Returns a message listing valid names for an unknown workload.
pub fn workload(name: &str) -> Result<SpecWorkload, CliError> {
    SpecWorkload::duo_suite().into_iter().find(|w| w.name() == name).ok_or_else(|| {
        let names: Vec<&str> = SpecWorkload::duo_suite().iter().map(|w| w.name()).collect();
        CliError::usage(format!("unknown workload '{name}'; choose one of {}", names.join(", ")))
    })
}

/// Profiling options for CLI runs (`--fast` trades accuracy for speed).
pub fn profile_options(fast: bool) -> ProfileOptions {
    if fast {
        ProfileOptions { duration_s: 0.3, warmup_s: 0.1, seed: 0xC11, ..Default::default() }
    } else {
        ProfileOptions { duration_s: 1.0, warmup_s: 0.35, seed: 0xC11, ..Default::default() }
    }
}

/// Resolves a feature-vector spec: an existing file (persisted profile)
/// or a built-in workload name (ground-truth feature vector — instant).
///
/// # Errors
///
/// Returns a message for unknown specs or unreadable/mismatched files.
pub fn feature(spec: &str, machine: &MachineConfig) -> Result<FeatureVector, CliError> {
    if std::path::Path::new(spec).exists() {
        let file = std::fs::File::open(spec).map_err(|e| CliError::io(format!("{spec}: {e}")))?;
        let fv = persist::read_feature(file).map_err(|e| CliError::from(e).context(spec))?;
        if fv.assoc() != machine.l2_assoc() {
            return fv
                .with_assoc(machine.l2_assoc())
                .map_err(|e| CliError::from(e).context("retarget failed").context(spec));
        }
        return Ok(fv);
    }
    let w = workload(spec)?;
    FeatureVector::from_workload(&w.params(), machine).map_err(|e| CliError::from(e).context(spec))
}

/// Resolves a full process-profile spec: an existing file or a built-in
/// workload name (profiled on the fly — takes a few seconds per process).
///
/// # Errors
///
/// As for [`feature`], plus profiling errors.
pub fn profile(
    spec: &str,
    machine: &MachineConfig,
    fast: bool,
) -> Result<ProcessProfile, CliError> {
    if std::path::Path::new(spec).exists() {
        let file = std::fs::File::open(spec).map_err(|e| CliError::io(format!("{spec}: {e}")))?;
        return persist::read_profile(file).map_err(|e| CliError::from(e).context(spec));
    }
    let w = workload(spec)?;
    Profiler::new(machine.clone())
        .with_options(profile_options(fast))
        .profile_full(&w.params())
        .map_err(|e| CliError::from(e).context(spec))
}

/// Parses an assignment string: per-core process lists separated by `;`,
/// processes within a core separated by `,`. Empty segments are idle
/// cores; trailing idle cores may be omitted.
///
/// Example for a 4-core machine: `"mcf,art;gzip"` puts mcf and art on
/// core 0 (time-shared), gzip on core 1, and leaves cores 2-3 idle.
///
/// # Errors
///
/// [`exit_code::USAGE`] when the machine has no cores or more cores are
/// named than the machine has.
pub fn assignment_string(spec: &str, num_cores: usize) -> Result<Vec<Vec<String>>, CliError> {
    if num_cores == 0 {
        return Err(CliError::usage("cannot parse an assignment for a machine with zero cores"));
    }
    let mut per_core: Vec<Vec<String>> = spec
        .split(';')
        .map(|core| {
            core.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
        })
        .collect();
    if per_core.len() > num_cores {
        return Err(CliError::usage(format!(
            "assignment names {} cores but the machine has {num_cores}",
            per_core.len()
        )));
    }
    per_core.resize(num_cores, Vec::new());
    Ok(per_core)
}

/// Parses an *index-based* placement string: per-core lists of process
/// indices (into a caller-provided process list) separated by `;`,
/// indices within a core separated by `,`. Empty segments are idle
/// cores; trailing idle cores may be omitted. Unlike
/// [`assignment_string`] — whose names may legitimately repeat (two
/// instances of the same workload) — each process index here is one
/// concrete process and may appear at most once.
///
/// Example with 3 processes on 4 cores: `"0,2;1"` puts processes 0 and
/// 2 on core 0 (time-shared), process 1 on core 1, cores 2-3 idle.
///
/// # Errors
///
/// [`exit_code::USAGE`] with a precise message for: a zero-core machine,
/// more cores named than the machine has, an unparsable index, an index
/// `>= num_processes`, or a duplicated index.
pub fn assignment_indices(
    spec: &str,
    num_cores: usize,
    num_processes: usize,
) -> Result<Vec<Vec<usize>>, CliError> {
    if num_cores == 0 {
        return Err(CliError::usage("cannot parse a placement for a machine with zero cores"));
    }
    let cores: Vec<&str> = spec.split(';').collect();
    if cores.len() > num_cores {
        return Err(CliError::usage(format!(
            "placement names {} cores but the machine has {num_cores}",
            cores.len()
        )));
    }
    let mut per_core: Vec<Vec<usize>> = Vec::with_capacity(num_cores);
    let mut seen = vec![false; num_processes];
    for core in &cores {
        let mut queue = Vec::new();
        for tok in core.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let idx: usize = tok.parse().map_err(|_| {
                CliError::usage(format!("placement index '{tok}' is not a process number"))
            })?;
            if idx >= num_processes {
                return Err(CliError::usage(format!(
                    "placement index {idx} out of range: there are {num_processes} processes"
                )));
            }
            if seen[idx] {
                return Err(CliError::usage(format!(
                    "placement index {idx} appears more than once; each process \
                     can run on only one core"
                )));
            }
            seen[idx] = true;
            queue.push(idx);
        }
        per_core.push(queue);
    }
    per_core.resize(num_cores, Vec::new());
    Ok(per_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_error_classification() {
        assert_eq!(CliError::from("bad flag").code, exit_code::USAGE);
        assert_eq!(CliError::from(String::from("x")).code, exit_code::USAGE);
        assert_eq!(
            CliError::from(ModelError::UnusableProfile("p".into())).code,
            exit_code::INVALID_DATA
        );
        assert_eq!(
            CliError::from(ModelError::NonFinite("nan".into())).code,
            exit_code::INVALID_DATA
        );
        assert_eq!(
            CliError::from(ModelError::EquilibriumFailed("e".into())).code,
            exit_code::SOLVER
        );
        assert_eq!(CliError::from(ModelError::Degraded("d".into())).code, exit_code::STRICT);
        let e = CliError::io("open failed").context("file.txt");
        assert_eq!(e.code, exit_code::IO);
        assert_eq!(e.to_string(), "file.txt: open failed");
        assert_eq!(CliError::divergence("off by 12%").code, exit_code::DIVERGENCE);
    }

    #[test]
    fn exit_codes_match_the_service_taxonomy() {
        // The CLI re-exports the service crate's table; pin the values so
        // scripted callers can rely on them.
        assert_eq!(exit_code::USAGE, 2);
        assert_eq!(exit_code::INVALID_DATA, 3);
        assert_eq!(exit_code::SOLVER, 4);
        assert_eq!(exit_code::IO, 5);
        assert_eq!(exit_code::STRICT, 6);
        assert_eq!(exit_code::DIVERGENCE, 7);
        assert_eq!(exit_code::LINT, 8);
    }

    #[test]
    fn workers_resolution() {
        let parse = |argv: &[&str]| ParsedArgs::parse(argv.iter().copied(), &[]).unwrap();
        // Absent: auto (0) — resolve_workers consults the environment.
        assert_eq!(workers(&parse(&[])).unwrap(), 0);
        // Explicit positive value passes through (beats MPMC_WORKERS,
        // because mathkit only reads the env when the request is 0).
        assert_eq!(workers(&parse(&["--workers", "3"])).unwrap(), 3);
        assert_eq!(mathkit::parallel::resolve_workers(3), 3);
        // Zero and garbage are usage errors, not silent fallbacks.
        for bad in [&["--workers", "0"][..], &["--workers", "many"], &["--workers", "-2"]] {
            let err = workers(&parse(bad)).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "{bad:?}");
        }
    }

    #[test]
    fn machines_resolve() {
        assert_eq!(machine("server", None).unwrap().num_cores(), 4);
        assert_eq!(machine("duo", None).unwrap().l2_assoc(), 12);
        assert_eq!(machine("workstation", Some(64)).unwrap().l2_sets, 64);
        assert!(machine("toaster", None).is_err());
        assert!(machine("server", Some(3)).is_err());
    }

    #[test]
    fn workloads_resolve() {
        assert_eq!(workload("mcf").unwrap(), SpecWorkload::Mcf);
        assert!(workload("firefox").is_err());
    }

    #[test]
    fn builtin_feature_is_instant() {
        let m = machine("server", None).unwrap();
        let fv = feature("gzip", &m).unwrap();
        assert_eq!(fv.name(), "gzip");
        assert!(feature("nonexistent-file-or-workload", &m).is_err());
    }

    #[test]
    fn feature_file_roundtrip_with_retarget() {
        let server = machine("server", None).unwrap();
        let duo = machine("duo", None).unwrap();
        let fv = feature("twolf", &server).unwrap();
        let path = std::env::temp_dir().join("mpmc_cli_test_profile.txt");
        let file = std::fs::File::create(&path).unwrap();
        mpmc_model::persist::write_feature(&fv, file).unwrap();
        // Loading against the duo machine retargets 16 -> 12 ways.
        let loaded = feature(path.to_str().unwrap(), &duo).unwrap();
        assert_eq!(loaded.assoc(), 12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn assignment_strings() {
        let a = assignment_string("mcf,art;gzip", 4).unwrap();
        assert_eq!(a[0], vec!["mcf", "art"]);
        assert_eq!(a[1], vec!["gzip"]);
        assert!(a[2].is_empty() && a[3].is_empty());
        let a = assignment_string(";;mcf", 4).unwrap();
        assert!(a[0].is_empty());
        assert_eq!(a[2], vec!["mcf"]);
        assert!(assignment_string("a;b;c", 2).is_err());
        // Whitespace tolerated.
        let a = assignment_string(" mcf , art ; gzip ", 2).unwrap();
        assert_eq!(a[0], vec!["mcf", "art"]);
    }

    #[test]
    fn assignment_string_rejects_zero_core_machine() {
        let err = assignment_string("mcf", 0).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("zero cores"), "{}", err.message);
    }

    #[test]
    fn assignment_indices_parse_and_pad() {
        let p = assignment_indices("0,2;1", 4, 3).unwrap();
        assert_eq!(p, vec![vec![0, 2], vec![1], vec![], vec![]]);
        // Whitespace and empty segments tolerated.
        let p = assignment_indices(" 1 ;; 0 ", 3, 2).unwrap();
        assert_eq!(p, vec![vec![1], vec![], vec![0]]);
    }

    #[test]
    fn assignment_indices_reject_duplicate_index() {
        let err = assignment_indices("0;0", 2, 2).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("more than once"), "{}", err.message);
        // Duplicates within one core queue are rejected too.
        let err = assignment_indices("1,1", 2, 2).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("more than once"), "{}", err.message);
    }

    #[test]
    fn assignment_indices_reject_out_of_range_core_count() {
        let err = assignment_indices("0;1;2", 2, 3).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("machine has 2"), "{}", err.message);
    }

    #[test]
    fn assignment_indices_reject_out_of_range_process() {
        let err = assignment_indices("0;3", 4, 2).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("out of range"), "{}", err.message);
        assert!(err.message.contains("2 processes"), "{}", err.message);
    }

    #[test]
    fn assignment_indices_reject_garbage_and_zero_cores() {
        let err = assignment_indices("0;banana", 4, 2).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("banana"), "{}", err.message);
        let err = assignment_indices("0", 0, 1).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("zero cores"), "{}", err.message);
    }
}
