//! CLI command implementations. Each command returns the text it would
//! print, so commands are unit-testable without capturing stdout.

use crate::args::ParsedArgs;
use crate::resolve::{self, CliError};
use cmpsim::engine::{simulate, EngineKind, Placement, SimOptions};
use cmpsim::process::ProcessSpec;
use cmpsim::trace::{miss_ratio_curve, stack_distance_histogram, Trace, TraceRecorder};
use cmpsim::types::LineAddr;
use mpmc_model::assignment::{Assignment, CombinedModel};
use mpmc_model::perf::PerformanceModel;
use mpmc_model::perf::SolverKind;
use mpmc_model::persist;
use mpmc_model::power::{build_training_set, CorePowerModel, TrainingOptions};
use mpmc_model::profile::Profiler;
use workloads::spec::SpecWorkload;

/// Top-level usage text.
pub const USAGE: &str = "\
mpmc — performance and power modeling for multi-programmed multi-cores
       (DAC 2010 reproduction)

usage: mpmc <command> [args]

commands:
  machines                              list machine presets
  workloads                             list built-in workloads
  profile <workload> [--machine M] [--out FILE] [--fast] [--sets N]
                                        stressmark-profile a workload
  predict <spec> <spec> [...] [--machine M] [--strict]
                                        predict co-run MPA/SPI (specs are
                                        profile files or workload names);
                                        --strict fails instead of accepting
                                        a degraded/fallback solve
  train [--machine M] [--out FILE] [--fast] [--sets N]
                                        train the Eq. 9 power model
  estimate --assign A [--machine M] [--power FILE] [--fast] [--sets N]
                                        combined-model power of a tentative
                                        assignment (profiles only)
  assign <spec> <spec> [...] --optimize [--objective O] [--machine M]
         [--power FILE] [--fast] [--sets N] [--workers N] [--seed N]
         [--brute] [--baseline P]       search for the best placement of the
                                        processes (specs are profile files or
                                        workload names; repeats are separate
                                        processes). Objectives: power
                                        (default), makespan, capped:<watts>.
                                        Prints machine-readable JSON. --brute
                                        scores every raw placement (tiny
                                        instances only); --baseline P scores
                                        a reference placement P given as
                                        per-core process indices, e.g.
                                        \"0,2;1\". An infeasible power cap
                                        exits 4 and reports the least-power
                                        placement found.
  simulate --assign A [--machine M] [--duration S] [--seed N] [--sets N]
           [--engine events|lockstep] [--json]
                                        run the assignment on the simulator
                                        (--engine picks the kernel; the two
                                        must agree bit-for-bit, see README.
                                        --json prints a machine-readable
                                        summary)
  trace <workload> [--steps N] [--out FILE] [--sets N]
                                        record an access trace
  mrc <tracefile> [--sets N] [--assoc A]
                                        miss-ratio curve of a trace
  validate [--tiny | --fast] [--machine M] [--sets N] [--mixes N] [--seed N]
           [--workers N] [--engine events|lockstep] [--out FILE]
                                        differential model-vs-simulator
                                        validation plus invariant and
                                        metamorphic checks; writes a
                                        machine-readable VALIDATION.json
  serve --power FILE [--stdio | --listen ADDR] [--machine M] [--sets N]
        [--workers N] [--cache-capacity N]
        [--max-line-bytes N] [--max-connections N]
        [--max-inflight N] [--max-queued N] [--queue-wait-ms MS]
        [--default-deadline-ms MS] [--breaker-window N]
        [--breaker-threshold N] [--breaker-cooldown N]
        [--singleflight-wait-ms MS] [--warm-start]
                                        long-running prediction daemon:
                                        newline-delimited JSON requests
                                        (register/estimate/assign/stats)
                                        over TCP, or stdin/stdout with
                                        --stdio; overload limits per
                                        README \"Operational robustness\"
  lint [--format text|json] [--config FILE]
                                        run the workspace static analyzer
                                        (mpmc-lint) from the enclosing
                                        workspace root; see README
                                        \"Static analysis\"

assignment syntax: per-core lists, ';' between cores, ',' within a core,
e.g. \"mcf,art;gzip\" = mcf+art time-shared on core 0, gzip on core 1.
machines: server (4 cores, 16-way), workstation (2, 8-way), duo (2, 12-way).
--workers N overrides the MPMC_WORKERS environment variable; N must be
positive (omit the flag for auto).

exit codes: 0 success, 2 usage, 3 invalid input data (bad profile/trace/
histogram), 4 solver or simulation failure, 5 I/O failure, 6 degraded
result rejected by --strict, 7 validation divergence (the model-vs-
simulator sweep completed but disagreed beyond tolerance), 8 unwaived
deny-level lint findings. Service responses additionally use 9 request
shed under overload, 10 deadline exceeded, 11 request line too long,
12 connection cap reached (wire `error.code` values, mirrored as exit
codes by clients).
";

fn machine_from(args: &ParsedArgs) -> Result<cmpsim::machine::MachineConfig, CliError> {
    let sets = match args.opt("sets") {
        Some(raw) => {
            Some(raw.parse::<usize>().map_err(|_| CliError::usage(format!("bad --sets '{raw}'")))?)
        }
        None => None,
    };
    resolve::machine(args.opt("machine").unwrap_or("server"), sets)
}

fn engine_from(args: &ParsedArgs) -> Result<EngineKind, CliError> {
    match args.opt("engine") {
        Some(raw) => EngineKind::from_name(raw).map_err(CliError::usage),
        None => Ok(EngineKind::default()),
    }
}

/// `mpmc machines`
pub fn machines() -> String {
    let mut out = String::from("machine       cores  dies  L2 ways  L2 sets  timeslice\n");
    for (name, m) in [
        ("server", cmpsim::machine::MachineConfig::four_core_server()),
        ("workstation", cmpsim::machine::MachineConfig::two_core_workstation()),
        ("duo", cmpsim::machine::MachineConfig::duo_laptop()),
    ] {
        out.push_str(&format!(
            "{name:<13}{:>5}{:>6}{:>9}{:>9}{:>9.2}s\n",
            m.num_cores(),
            m.dies,
            m.l2_assoc,
            m.l2_sets,
            m.timeslice_s
        ));
    }
    out
}

/// `mpmc workloads`
pub fn workloads_cmd() -> String {
    let mut out = String::from("workload   API      L1RPI  BRPI   FPPI   reuse depth  streaming\n");
    for w in SpecWorkload::duo_suite() {
        let p = w.params();
        out.push_str(&format!(
            "{:<10} {:<8.4} {:<6.2} {:<6.2} {:<6.2} {:<12} {:.3}\n",
            w.name(),
            p.mix.api,
            p.mix.l1rpi,
            p.mix.brpi,
            p.mix.fppi,
            p.pattern.depth(),
            p.pattern.streaming_fraction()
        ));
    }
    out
}

/// `mpmc profile <workload> ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn profile(args: &ParsedArgs) -> Result<String, CliError> {
    let name =
        args.positionals().first().ok_or("profile: which workload? (try 'mpmc workloads')")?;
    let machine = machine_from(args)?;
    let w = resolve::workload(name)?;
    let profiler =
        Profiler::new(machine.clone()).with_options(resolve::profile_options(args.flag("fast")));
    let prof = profiler.profile_full(&w.params()).map_err(CliError::from)?;

    let mut out =
        format!("profiled '{}' on {} ({} runs)\n", name, machine.name, machine.l2_assoc());
    out.push_str(&format!(
        "API {:.4}  alpha {:.3e}  beta {:.3e}\n",
        prof.feature.api(),
        prof.feature.spi_model().alpha(),
        prof.feature.spi_model().beta()
    ));
    out.push_str(&format!(
        "L1RPI {:.3}  BRPI {:.3}  FPPI {:.3}  P_alone {:.2} W (idle {:.2} W)\n",
        prof.l1rpi, prof.brpi, prof.fppi, prof.processor_alone_w, prof.idle_processor_w
    ));
    out.push_str("MPA curve:");
    for s in 0..=machine.l2_assoc() {
        out.push_str(&format!(" {:.3}", prof.feature.mpa(s as f64)));
    }
    out.push('\n');
    if let Some(path) = args.opt("out") {
        let file = std::fs::File::create(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
        persist::write_profile(&prof, file).map_err(|e| CliError::io(format!("{path}: {e}")))?;
        out.push_str(&format!("saved to {path}\n"));
    }
    Ok(out)
}

/// `mpmc predict <spec> <spec> ...`
///
/// Solves with the staged fallback chain and reports its diagnostics.
/// Under `--strict`, any fallback or degraded result is a hard error
/// (exit code 6) instead of a best-effort answer.
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn predict(args: &ParsedArgs) -> Result<String, CliError> {
    if args.positionals().len() < 2 {
        return Err("predict: need at least two specs (files or workload names)".into());
    }
    let machine = machine_from(args)?;
    let features: Vec<_> = args
        .positionals()
        .iter()
        .map(|spec| resolve::feature(spec, &machine))
        .collect::<Result<_, _>>()?;
    let model = PerformanceModel::new(machine.l2_assoc()).with_solver(SolverKind::Robust);
    let eq = model.solve(&features).map_err(CliError::from)?;
    if args.flag("strict") && (eq.diagnostics.degraded || !eq.diagnostics.fallbacks.is_empty()) {
        return Err(CliError::strict(format!(
            "--strict: refusing fallback result ({})",
            eq.diagnostics.summary()
        )));
    }

    let mut out =
        format!("equilibrium on a {}-way shared cache ({}):\n", machine.l2_assoc(), machine.name);
    out.push_str(&format!(
        "{:<12}{:>8}{:>9}{:>13}{:>14}\n",
        "process", "ways", "MPA", "SPI", "IPS"
    ));
    for (i, fv) in features.iter().enumerate() {
        out.push_str(&format!(
            "{:<12}{:>8.2}{:>9.3}{:>13.3e}{:>14.3e}\n",
            fv.name(),
            eq.sizes[i],
            eq.mpas[i],
            eq.spis[i],
            1.0 / eq.spis[i]
        ));
    }
    out.push_str(&format!("solver: {}\n", eq.diagnostics.summary()));
    Ok(out)
}

/// `mpmc train ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn train(args: &ParsedArgs) -> Result<String, CliError> {
    let machine = machine_from(args)?;
    let fast = args.flag("fast");
    let opts = if fast {
        TrainingOptions {
            duration_s: 0.35,
            warmup_s: 0.1,
            microbench_level_instructions: 100_000,
            microbench_duration_s: 1.0,
            ..Default::default()
        }
    } else {
        TrainingOptions::default()
    };
    let suite: Vec<_> = SpecWorkload::table1_suite().iter().map(|w| w.params()).collect();
    let obs = build_training_set(&machine, &suite, &opts).map_err(CliError::from)?;
    let model = mpmc_model::power::PowerModel::fit_mvlr(&obs).map_err(CliError::from)?;

    let mut out = format!(
        "trained Eq. 9 power model on {} ({} observations, R^2 {:.4})\n",
        machine.name,
        obs.len(),
        model.r_squared()
    );
    out.push_str(&format!("idle core: {:.2} W\n", model.idle_core_watts()));
    out.push_str(&format!(
        "coefficients (L1RPS, L2RPS, L2MPS, BRPS, FPPS): {:?}\n",
        model.coefficients()
    ));
    if let Some(path) = args.opt("out") {
        let file = std::fs::File::create(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
        persist::write_power_model(&model, file)
            .map_err(|e| CliError::io(format!("{path}: {e}")))?;
        out.push_str(&format!("saved to {path}\n"));
    }
    Ok(out)
}

/// Resolves the power model shared by `estimate` and `assign`: read from
/// `--power FILE` when given, otherwise trained on the fly.
fn power_model_from(
    args: &ParsedArgs,
    machine: &cmpsim::machine::MachineConfig,
    fast: bool,
) -> Result<mpmc_model::power::PowerModel, CliError> {
    match args.opt("power") {
        Some(path) => {
            let file =
                std::fs::File::open(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
            persist::read_power_model(file).map_err(|e| CliError::from(e).context(path))
        }
        None => {
            let opts = TrainingOptions {
                duration_s: if fast { 0.35 } else { 0.9 },
                warmup_s: if fast { 0.1 } else { 0.3 },
                microbench_level_instructions: if fast { 100_000 } else { 500_000 },
                microbench_duration_s: if fast { 1.0 } else { 2.4 },
                ..Default::default()
            };
            let suite: Vec<_> = SpecWorkload::table1_suite().iter().map(|w| w.params()).collect();
            let obs = build_training_set(machine, &suite, &opts).map_err(CliError::from)?;
            mpmc_model::power::PowerModel::fit_mvlr(&obs).map_err(CliError::from)
        }
    }
}

/// `mpmc estimate --assign A ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn estimate(args: &ParsedArgs) -> Result<String, CliError> {
    let machine = machine_from(args)?;
    let assign = args.opt("assign").ok_or("estimate: --assign is required")?;
    let per_core = resolve::assignment_string(assign, machine.num_cores())?;
    let fast = args.flag("fast");
    let power = power_model_from(args, &machine, fast)?;

    // Profiles: deduplicate specs so each is profiled once.
    let mut specs: Vec<String> = Vec::new();
    for q in &per_core {
        for s in q {
            if !specs.contains(s) {
                specs.push(s.clone());
            }
        }
    }
    if specs.is_empty() {
        return Err("estimate: the assignment is empty".into());
    }
    let profiles: Vec<_> =
        specs.iter().map(|s| resolve::profile(s, &machine, fast)).collect::<Result<_, _>>()?;
    let mut asg = Assignment::new(machine.num_cores());
    for (core, q) in per_core.iter().enumerate() {
        for s in q {
            let idx = specs.iter().position(|x| x == s).ok_or_else(|| {
                CliError::solver(format!("estimate: internal error: spec '{s}' lost in dedup"))
            })?;
            asg.try_assign(core, idx).map_err(CliError::from)?;
        }
    }

    let combined = CombinedModel::new(&machine, &power);
    let total = combined.estimate_processor_power(&profiles, &asg).map_err(CliError::from)?;
    let mut out = format!("combined-model estimate for \"{assign}\" on {}:\n", machine.name);
    for die in 0..machine.dies {
        let die_power = combined
            .estimate_die_power(&profiles, &asg, cmpsim::types::DieId(die as u32))
            .map_err(CliError::from)?;
        out.push_str(&format!("  die {die}: {die_power:.2} W\n"));
    }
    out.push_str(&format!("estimated processor power: {total:.2} W\n"));
    Ok(out)
}

/// `mpmc assign <spec> <spec> ... --optimize [--objective O] ...`
///
/// Searches for the best placement of the named processes with
/// [`mpmc_model::optimize`] and prints a machine-readable JSON object:
/// the chosen placement (per-core queues of spec names), both metrics
/// (`power_w`, `makespan`), the engine used (`method`), and search
/// diagnostics (`evaluated`, `pruned`). With `--brute` every raw
/// placement is scored instead (the CI gate compares the two). With
/// `--baseline P` a reference placement — per-core process indices like
/// `"0,2;1"` — is scored alongside for a chosen-vs-baseline comparison.
///
/// # Errors
///
/// Returns a display-ready message on any failure. An infeasible
/// `capped:<watts>` objective maps to
/// [`exit_code::SOLVER`](crate::resolve::exit_code::SOLVER) and the
/// message carries the least-power placement found as a diagnostic.
pub fn assign_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    use mpmc_model::optimize::{self, Objective, OptimizeOptions};
    use mpmc_service::json::Json;

    let machine = machine_from(args)?;
    if !args.flag("optimize") {
        return Err(CliError::usage(
            "assign: --optimize is required (placement search is this command's only mode)",
        ));
    }
    if args.positionals().is_empty() {
        return Err(CliError::usage(
            "assign: which processes? (profile files or workload names; repeats are \
             separate processes)",
        ));
    }
    let objective = Objective::from_spec(args.opt("objective").unwrap_or("power"))
        .map_err(|m| CliError::usage(format!("assign: {m}")))?;
    let fast = args.flag("fast");
    let power = power_model_from(args, &machine, fast)?;

    // Deduplicate specs so each is profiled once; every positional is
    // its own process instance.
    let mut specs: Vec<String> = Vec::new();
    let mut processes: Vec<usize> = Vec::new();
    for s in args.positionals() {
        let idx = match specs.iter().position(|x| x == s) {
            Some(i) => i,
            None => {
                specs.push(s.clone());
                specs.len() - 1
            }
        };
        processes.push(idx);
    }
    let profiles: Vec<_> =
        specs.iter().map(|s| resolve::profile(s, &machine, fast)).collect::<Result<_, _>>()?;

    // The baseline is parsed before the search so a bad placement string
    // fails fast as a usage error.
    let baseline = match args.opt("baseline") {
        Some(spec) => {
            let per_core = resolve::assignment_indices(spec, machine.num_cores(), processes.len())?;
            let placed: usize = per_core.iter().map(Vec::len).sum();
            if placed != processes.len() {
                return Err(CliError::usage(format!(
                    "assign: baseline places {placed} of {} processes; a fair \
                     comparison needs all of them",
                    processes.len()
                )));
            }
            Some(per_core)
        }
        None => None,
    };

    let opts = OptimizeOptions {
        workers: resolve::workers(args)?,
        seed: args.opt_parse("seed", 0u64)?,
        ..Default::default()
    };
    let combined = CombinedModel::new(&machine, &power);
    let cancel = mathkit::sync::CancelToken::never();
    let got = if args.flag("brute") {
        optimize::brute_force(&combined, &profiles, &processes, objective, &cancel)
    } else {
        optimize::optimize(&combined, &profiles, &processes, objective, &opts, &cancel)
    }
    .map_err(CliError::from)?;

    let queues_json = |queues: &[Vec<usize>]| {
        Json::Arr(
            queues
                .iter()
                .map(|q| Json::Arr(q.iter().map(|&p| Json::str(specs[p].as_str())).collect()))
                .collect(),
        )
    };
    let mut fields = vec![
        ("machine".to_string(), Json::str(machine.name.as_str())),
        ("objective".to_string(), Json::str(objective.spec())),
        ("method".to_string(), Json::str(got.method.name())),
        ("placement".to_string(), queues_json(&got.assignment.to_queues())),
        ("power_w".to_string(), Json::Num(got.power_w)),
        ("makespan".to_string(), Json::Num(got.makespan)),
        ("evaluated".to_string(), Json::Num(got.evaluated as f64)),
        ("pruned".to_string(), Json::Num(got.pruned as f64)),
    ];
    if let Some(per_core) = baseline {
        let mut asg = Assignment::new(machine.num_cores());
        for (core, q) in per_core.iter().enumerate() {
            for &proc_idx in q {
                asg.try_assign(core, processes[proc_idx]).map_err(CliError::from)?;
            }
        }
        let power_w = combined.estimate_processor_power(&profiles, &asg).map_err(CliError::from)?;
        let makespan = combined.estimate_makespan(&profiles, &asg).map_err(CliError::from)?;
        fields.push((
            "baseline".to_string(),
            Json::Obj(vec![
                ("placement".to_string(), queues_json(&asg.to_queues())),
                ("power_w".to_string(), Json::Num(power_w)),
                ("makespan".to_string(), Json::Num(makespan)),
            ]),
        ));
    }
    let mut out = Json::Obj(fields).render();
    out.push('\n');
    Ok(out)
}

/// `mpmc simulate --assign A ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn simulate_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let machine = machine_from(args)?;
    let assign = args.opt("assign").ok_or("simulate: --assign is required")?;
    let per_core = resolve::assignment_string(assign, machine.num_cores())?;
    let duration: f64 = args.opt_parse("duration", 2.0)?;
    let seed: u64 = args.opt_parse("seed", 0xC11u64)?;
    let engine = engine_from(args)?;

    let mut placement = Placement::idle(machine.num_cores());
    let mut region = 1u64;
    for (core, q) in per_core.iter().enumerate() {
        for name in q {
            let w = resolve::workload(name)?;
            placement
                .assign(
                    core,
                    ProcessSpec::new(
                        w.name(),
                        Box::new(w.params().generator(machine.l2_sets, region)),
                    ),
                )
                .map_err(mpmc_model::ModelError::from)?;
            region += 1;
        }
    }
    let run = simulate(
        &machine,
        placement,
        SimOptions {
            duration_s: duration,
            warmup_s: (duration * 0.25).min(1.0),
            seed,
            engine,
            ..Default::default()
        },
    )
    .map_err(|e| CliError::solver(e.to_string()))?;

    if args.flag("json") {
        use mpmc_service::json::Json;
        let procs = run
            .processes
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".to_string(), Json::str(p.name.as_str())),
                    ("core".to_string(), Json::Num(p.core as f64)),
                    ("ways".to_string(), Json::Num(p.avg_ways)),
                    ("mpa".to_string(), Json::Num(p.mpa())),
                    ("spi".to_string(), Json::Num(p.spi())),
                    ("api".to_string(), Json::Num(p.api())),
                ])
            })
            .collect();
        // The engine name stays out of this summary on purpose: the CI
        // parity gate compares the events and lockstep runs byte for
        // byte (Json renders f64 with shortest-round-trip formatting,
        // so equal results render identically).
        let summary = Json::Obj(vec![
            ("machine".to_string(), Json::str(machine.name.as_str())),
            ("assignment".to_string(), Json::str(assign)),
            ("duration_s".to_string(), Json::Num(duration)),
            ("seed".to_string(), Json::Num(seed as f64)),
            ("processes".to_string(), Json::Arr(procs)),
            ("power_w".to_string(), Json::Num(run.avg_measured_power())),
            ("power_samples".to_string(), Json::Num(run.settled_power().len() as f64)),
            ("context_switches".to_string(), Json::Num(run.context_switches as f64)),
            ("slice_expiries".to_string(), Json::Num(run.slice_expiries as f64)),
        ]);
        let mut out = summary.render();
        out.push('\n');
        return Ok(out);
    }

    let mut out = format!(
        "simulated \"{assign}\" on {} for {duration} s ({} engine):\n",
        machine.name,
        engine.name()
    );
    out.push_str(&format!(
        "{:<10}{:>5}{:>9}{:>9}{:>13}{:>9}\n",
        "process", "core", "ways", "MPA", "SPI", "API"
    ));
    for p in &run.processes {
        out.push_str(&format!(
            "{:<10}{:>5}{:>9.2}{:>9.3}{:>13.3e}{:>9.4}\n",
            p.name,
            p.core,
            p.avg_ways,
            p.mpa(),
            p.spi(),
            p.api()
        ));
    }
    out.push_str(&format!(
        "measured processor power: {:.2} W over {} samples ({} context switches)\n",
        run.avg_measured_power(),
        run.settled_power().len(),
        run.context_switches
    ));
    Ok(out)
}

/// `mpmc trace <workload> ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn trace(args: &ParsedArgs) -> Result<String, CliError> {
    let name = args.positionals().first().ok_or("trace: which workload?")?;
    let machine = machine_from(args)?;
    let steps: u64 = args.opt_parse("steps", 100_000u64)?;
    let w = resolve::workload(name)?;
    let gen = w.params().generator(machine.l2_sets, 0);
    let (mut rec, handle) = TraceRecorder::new(Box::new(gen));
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xC11);
    for _ in 0..steps {
        cmpsim::process::AccessGenerator::next_step(&mut rec, &mut rng);
    }
    let trace =
        handle.lock().map_err(|_| CliError::solver("trace: recorder buffer poisoned"))?.clone();
    let mut out = format!("recorded {} steps of '{name}'\n", trace.len());
    if let Some(path) = args.opt("out") {
        let file = std::fs::File::create(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
        trace.write_text(file).map_err(|e| CliError::io(format!("{path}: {e}")))?;
        out.push_str(&format!("saved to {path}\n"));
    } else {
        out.push_str("(use --out FILE to save it)\n");
    }
    Ok(out)
}

/// `mpmc mrc <tracefile> ...`
///
/// # Errors
///
/// Returns a display-ready message on any failure.
pub fn mrc(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positionals().first().ok_or("mrc: which trace file?")?;
    let sets: usize = args.opt_parse("sets", 64usize)?;
    let assoc: usize = args.opt_parse("assoc", 16usize)?;
    if sets == 0 || assoc == 0 {
        return Err("mrc: --sets and --assoc must be positive".into());
    }
    let file = std::fs::File::open(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    // A readable file that does not parse is bad data, not an I/O fault.
    let trace = Trace::read_text(file).map_err(|e| CliError::data(format!("{path}: {e}")))?;
    let addrs: Vec<LineAddr> = trace.accesses().collect();
    if addrs.is_empty() {
        return Err(CliError::data(format!("{path}: trace contains no memory accesses")));
    }
    let mrc = miss_ratio_curve(&addrs, sets, assoc);
    let hist = stack_distance_histogram(&addrs, sets);
    let total = addrs.len() as f64;

    let mut out = format!("{path}: {} accesses, {sets} sets\n", addrs.len());
    out.push_str("ways  miss ratio\n");
    for (a, m) in mrc.iter().enumerate() {
        out.push_str(&format!("{:>4}  {m:.4}\n", a + 1));
    }
    out.push_str("\nstack-position histogram (top 8):\n");
    for (i, &c) in hist.iter().take(8).enumerate() {
        out.push_str(&format!("  pos {:>2}: {:.4}\n", i + 1, c as f64 / total));
    }
    Ok(out)
}

/// `mpmc validate [--tiny | --fast] ...`
///
/// Runs the differential model-vs-simulator sweep plus the invariant
/// and metamorphic battery (see `experiments::diffval`), writes the
/// machine-readable report to `--out` (default `VALIDATION.json`), and
/// fails with the divergence exit code if any check disagrees.
///
/// # Errors
///
/// Returns a display-ready message on any failure. A completed run whose
/// numbers disagree maps to
/// [`exit_code::DIVERGENCE`](crate::resolve::exit_code::DIVERGENCE) —
/// distinct from [`exit_code::SOLVER`](crate::resolve::exit_code::SOLVER),
/// which means the pipeline itself failed to produce a result.
pub fn validate(args: &ParsedArgs) -> Result<String, CliError> {
    use experiments::diffval::{self, DiffConfig};

    let machine = machine_from(args)?;
    let explicit_sets = args.opt("sets").is_some().then_some(machine.l2_sets);
    let mut cfg = if args.flag("tiny") {
        DiffConfig::tiny(machine)
    } else if args.flag("fast") {
        DiffConfig::fast(machine)
    } else {
        DiffConfig::full(machine)
    };
    // `tiny` shrinks the cache itself; an explicit --sets wins.
    if let Some(sets) = explicit_sets {
        cfg.machine.l2_sets = sets;
    }
    cfg.max_mixes = args.opt_parse("mixes", cfg.max_mixes)?;
    cfg.scale.seed = args.opt_parse("seed", cfg.scale.seed)?;
    cfg.scale.workers = resolve::workers(args)?;
    cfg.scale.engine = engine_from(args)?;

    let report = diffval::run(&cfg).map_err(CliError::from)?;
    let out_path = args.opt("out").unwrap_or("VALIDATION.json");
    std::fs::write(out_path, report.to_json())
        .map_err(|e| CliError::io(format!("{out_path}: {e}")))?;
    let mut text = report.summary();
    text.push_str(&format!("report written to {out_path}\n"));
    if !report.pass {
        return Err(CliError::divergence(format!("validation FAILED\n{text}")));
    }
    Ok(text)
}

/// `mpmc serve ...` — the long-running prediction daemon.
///
/// With `--stdio` the session runs over stdin/stdout and the process
/// exits at end of input or after a `shutdown` request. Otherwise the
/// daemon binds `--listen` (default `127.0.0.1:0`), prints the bound
/// address as `listening on HOST:PORT`, and serves connections until a
/// `shutdown` request arrives. See the README's "Serving" section for
/// the wire protocol.
///
/// # Errors
///
/// Returns a display-ready message on any failure (a missing or bad
/// `--power` file, an unbindable address, or session I/O trouble).
pub fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    let machine = machine_from(args)?;
    let power_path = args
        .opt("power")
        .ok_or("serve: --power FILE is required (train one with 'mpmc train --out FILE')")?;
    let file =
        std::fs::File::open(power_path).map_err(|e| CliError::io(format!("{power_path}: {e}")))?;
    let power =
        persist::read_power_model(file).map_err(|e| CliError::from(e).context(power_path))?;
    // Resolve the worker count once, up front: the flag beats
    // MPMC_WORKERS, and a concrete value makes `stats` reporting honest.
    let workers = mathkit::parallel::resolve_workers(resolve::workers(args)?);
    let capacity: usize =
        args.opt_parse("cache-capacity", mpmc_model::eqcache::DEFAULT_CAPACITY)?;
    let defaults = mpmc_service::ServeOptions::default();
    let opts = mpmc_service::ServeOptions {
        workers,
        cache_capacity: capacity,
        max_line_bytes: args.opt_parse("max-line-bytes", defaults.max_line_bytes)?,
        max_connections: args.opt_parse("max-connections", defaults.max_connections)?,
        max_inflight: args.opt_parse("max-inflight", defaults.max_inflight)?,
        max_queued: args.opt_parse("max-queued", defaults.max_queued)?,
        queue_wait_ms: args.opt_parse("queue-wait-ms", defaults.queue_wait_ms)?,
        default_deadline_ms: args.opt_parse("default-deadline-ms", defaults.default_deadline_ms)?,
        breaker_window: args.opt_parse("breaker-window", defaults.breaker_window)?,
        breaker_threshold: args.opt_parse("breaker-threshold", defaults.breaker_threshold)?,
        breaker_cooldown: args.opt_parse("breaker-cooldown", defaults.breaker_cooldown)?,
        singleflight_wait_ms: args
            .opt_parse("singleflight-wait-ms", defaults.singleflight_wait_ms)?,
        warm_start: args.flag("warm-start") || defaults.warm_start,
    };
    if opts.max_connections == 0 || opts.max_inflight == 0 {
        return Err(CliError::usage(
            "serve: --max-connections and --max-inflight must be positive",
        ));
    }
    let service = mpmc_service::PredictionService::with_options(machine, power, opts);

    if args.flag("stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        service
            .run_stdio(stdin.lock(), stdout.lock())
            .map_err(|e| CliError::io(format!("serve: {e}")))?;
        return Ok(String::new());
    }

    let addr = args.opt("listen").unwrap_or("127.0.0.1:0");
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let local = listener.local_addr().map_err(|e| CliError::io(format!("serve: {e}")))?;
    // Announce the bound address immediately (port 0 binds an ephemeral
    // port) so scripts can connect before the daemon returns.
    println!("listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    service.run_tcp(listener).map_err(|e| CliError::io(format!("serve: {e}")))?;
    Ok(format!("service on {local} stopped after shutdown request\n"))
}

/// `mpmc lint [--format text|json] [--config FILE]`
///
/// Runs the workspace static analyzer from the enclosing workspace root
/// (found by walking up from the current directory). `--config` defaults
/// to `<root>/lint.toml` when that file exists.
fn lint_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let format = args.opt("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(CliError::usage(format!("--format must be text or json, got '{format}'")));
    }
    let cwd = std::env::current_dir().map_err(|e| CliError::io(format!("getcwd: {e}")))?;
    let root = mpmc_lint::find_workspace_root(&cwd).map_err(CliError::io)?;
    let mut cfg = mpmc_lint::Config::default();
    match args.opt("config") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
            cfg.apply_toml(&text).map_err(CliError::data)?;
        }
        None => {
            let default = root.join("lint.toml");
            if default.is_file() {
                let text = std::fs::read_to_string(&default)
                    .map_err(|e| CliError::io(format!("{}: {e}", default.display())))?;
                cfg.apply_toml(&text).map_err(CliError::data)?;
            }
        }
    }
    let report = mpmc_lint::run(&root, &cfg).map_err(CliError::io)?;
    let rendered = if format == "json" { report.render_json() } else { report.render_text() };
    if report.exit_code() == 0 {
        Ok(rendered)
    } else {
        // The findings themselves are the error message; stderr + exit 8.
        Err(CliError::lint(rendered))
    }
}

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] carrying a display-ready message and the
/// process exit code for the failure class (see
/// [`resolve::exit_code`](crate::resolve::exit_code)).
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    let args = ParsedArgs::parse(
        rest.iter().cloned(),
        &["fast", "full", "strict", "tiny", "stdio", "warm-start", "optimize", "brute", "json"],
    )?;
    match cmd.as_str() {
        "machines" => Ok(machines()),
        "workloads" => Ok(workloads_cmd()),
        "profile" => profile(&args),
        "predict" => predict(&args),
        "train" => train(&args),
        "estimate" => estimate(&args),
        "assign" => assign_cmd(&args),
        "simulate" => simulate_cmd(&args),
        "trace" => trace(&args),
        "mrc" => mrc(&args),
        "validate" => validate(&args),
        "serve" => serve(&args),
        "lint" => lint_cmd(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::exit_code;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_and_listings() {
        assert!(run(&["help"]).unwrap().contains("usage"));
        assert!(run(&["machines"]).unwrap().contains("server"));
        assert!(run(&["workloads"]).unwrap().contains("mcf"));
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn predict_with_builtin_names() {
        let out = run(&["predict", "mcf", "gzip"]).unwrap();
        assert!(out.contains("mcf"));
        assert!(out.contains("gzip"));
        assert!(out.contains("ways"));
        assert!(out.contains("solver:"), "diagnostics line missing: {out}");
        assert!(run(&["predict", "mcf"]).is_err());
        assert!(run(&["predict", "mcf", "nope"]).is_err());
    }

    #[test]
    fn predict_strict_accepts_clean_solves() {
        // A well-conditioned pair solves directly; --strict must not
        // reject it, and the diagnostics line still prints.
        let out = run(&["predict", "mcf", "gzip", "--strict"]).unwrap();
        assert!(out.contains("solver:"));
        assert!(!out.contains("DEGRADED"));
    }

    #[test]
    fn exit_codes_classify_failures() {
        // Usage: unknown command, unknown machine, missing args.
        assert_eq!(run(&["frobnicate"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["predict", "mcf", "gzip", "--machine", "toaster"]).unwrap_err().code,
            exit_code::USAGE
        );
        assert_eq!(run(&["predict", "mcf"]).unwrap_err().code, exit_code::USAGE);

        // I/O: a path that does not exist at all (mrc requires a file).
        assert_eq!(run(&["mrc", "/nonexistent/file"]).unwrap_err().code, exit_code::IO);

        // Invalid data: a file that exists but fails validation.
        let path = std::env::temp_dir().join("mpmc_cli_bad_profile.txt");
        std::fs::write(&path, "api NaN\nassoc 16\n").unwrap();
        let err = run(&["predict", path.to_str().unwrap(), "mcf"]).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA, "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lint_subcommand_runs_clean_on_this_workspace() {
        let out = run(&["lint"]).expect("the workspace must stay lint-clean");
        assert!(out.contains("0 errors"), "{out}");
        let out = run(&["lint", "--format", "json"]).expect("json format");
        assert!(
            out.contains("\"tool\": \"mpmc-lint\"") || out.contains("\"tool\":\"mpmc-lint\""),
            "{out}"
        );
        assert_eq!(run(&["lint", "--format", "yaml"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["lint", "--config", "/nonexistent-lint.toml"]).unwrap_err().code,
            exit_code::IO
        );
    }

    #[test]
    fn simulate_small_machine() {
        let out = run(&[
            "simulate",
            "--assign",
            "gzip;twolf",
            "--machine",
            "workstation",
            "--sets",
            "64",
            "--duration",
            "0.3",
        ])
        .unwrap();
        assert!(out.contains("gzip"));
        assert!(out.contains("events engine"));
        assert!(out.contains("measured processor power"));
        assert!(run(&["simulate"]).is_err());
        assert!(run(&["simulate", "--assign", "a;b;c", "--machine", "duo"]).is_err());
    }

    #[test]
    fn simulate_engine_flag() {
        let base = [
            "simulate",
            "--assign",
            "gzip;twolf",
            "--machine",
            "workstation",
            "--sets",
            "64",
            "--duration",
            "0.3",
        ];
        let with = |extra: &[&str]| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(extra);
            run(&argv)
        };
        let out = with(&["--engine", "lockstep"]).unwrap();
        assert!(out.contains("lockstep engine"), "{out}");
        assert_eq!(with(&["--engine", "cycle-exact"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["validate", "--tiny", "--engine", "nope"]).unwrap_err().code,
            exit_code::USAGE
        );
    }

    #[test]
    fn simulate_json_summaries_agree_across_engines() {
        // The same contract the CI parity gate enforces with jq: both
        // engines render byte-identical JSON summaries. The duration
        // must exceed the 1 s preset timeslice or no slice ever expires
        // and the time-shared pair never actually switches.
        let base = [
            "simulate",
            "--assign",
            "mcf,gzip;art",
            "--machine",
            "workstation",
            "--sets",
            "64",
            "--duration",
            "2.2",
            "--json",
            "--engine",
        ];
        let with = |engine: &str| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.push(engine);
            run(&argv).unwrap()
        };
        let ev = with("events");
        let ls = with("lockstep");
        assert_eq!(ev, ls, "engines diverged:\n{ev}\nvs\n{ls}");
        let parsed = mpmc_service::json::parse(ev.trim()).unwrap();
        assert!(parsed.get("machine").and_then(|m| m.as_str()).unwrap().contains("workstation"));
        let procs = parsed.get("processes").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(procs.len(), 3);
        assert!(parsed.get("slice_expiries").and_then(|n| n.as_f64()).unwrap() > 0.0);
        assert!(parsed.get("context_switches").and_then(|n| n.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn trace_and_mrc_roundtrip() {
        let path = std::env::temp_dir().join("mpmc_cli_trace_test.txt");
        let path_s = path.to_str().unwrap();
        let out =
            run(&["trace", "twolf", "--steps", "3000", "--out", path_s, "--sets", "32"]).unwrap();
        assert!(out.contains("recorded 3000"));
        let out = run(&["mrc", path_s, "--sets", "32", "--assoc", "8"]).unwrap();
        assert!(out.contains("miss ratio"));
        let _ = std::fs::remove_file(&path);
        assert!(run(&["mrc", "/nonexistent/file"]).is_err());
    }

    #[test]
    fn validate_tiny_writes_report() {
        let path = std::env::temp_dir().join("mpmc_cli_validation_test.json");
        let path_s = path.to_str().unwrap();
        let out = run(&["validate", "--tiny", "--mixes", "2", "--out", path_s]).unwrap();
        assert!(out.contains("verdict: PASS"), "{out}");
        assert!(out.contains("report written to"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"mixes\""));
        let _ = std::fs::remove_file(&path);
        // Unwritable report path is an I/O failure.
        let err = run(&["validate", "--tiny", "--mixes", "2", "--out", "/nonexistent-dir/v.json"])
            .unwrap_err();
        assert_eq!(err.code, exit_code::IO);
    }

    #[test]
    fn serve_argument_errors() {
        // Missing --power is usage; an unreadable file is I/O; a bad
        // worker count is usage — all without ever binding a socket.
        assert_eq!(run(&["serve"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(
            run(&["serve", "--power", "/nonexistent/power.txt"]).unwrap_err().code,
            exit_code::IO
        );
        let path = std::env::temp_dir().join("mpmc_cli_serve_power_test.txt");
        let model =
            mpmc_model::power::PowerModel::from_parts(10.0, vec![2e-7, 1e-6, 3e-6, 1e-7, 1e-7])
                .unwrap();
        let file = std::fs::File::create(&path).unwrap();
        persist::write_power_model(&model, file).unwrap();
        let path_s = path.to_str().unwrap();
        for bad_workers in ["0", "many"] {
            let err = run(&["serve", "--power", path_s, "--workers", bad_workers]).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "--workers {bad_workers}");
        }
        // Overload-limit flags must parse; zero caps that would make the
        // daemon unreachable are rejected up front.
        for bad in [
            ["--max-inflight", "none"],
            ["--queue-wait-ms", "-1"],
            ["--max-line-bytes", "big"],
            ["--max-connections", "0"],
            ["--max-inflight", "0"],
        ] {
            let err = run(&["serve", "--power", path_s, bad[0], bad[1]]).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "{bad:?}");
        }
        // A power file that parses but is not a power model is bad data.
        let bad = std::env::temp_dir().join("mpmc_cli_serve_bad_power_test.txt");
        std::fs::write(&bad, "mpmc-power v1\nidle nope\n").unwrap();
        let err = run(&["serve", "--power", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA, "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn assign_argument_errors() {
        // All of these fail before any profiling or training happens.
        assert_eq!(run(&["assign", "gzip", "twolf"]).unwrap_err().code, exit_code::USAGE);
        assert_eq!(run(&["assign", "--optimize"]).unwrap_err().code, exit_code::USAGE);
        let err = run(&["assign", "gzip", "--optimize", "--objective", "speed"]).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("unknown objective"), "{}", err.message);
        assert_eq!(
            run(&["assign", "gzip", "--optimize", "--objective", "capped:-1"]).unwrap_err().code,
            exit_code::USAGE
        );
    }

    #[test]
    fn assign_optimize_reports_placement_brute_agrees_and_infeasible_cap_exits_solver() {
        // Profile once to a file and train nothing: the power model comes
        // from a synthetic file, so the optimizer dominates the runtime.
        let dir = std::env::temp_dir();
        let power_path = dir.join("mpmc_cli_assign_power_test.txt");
        let model =
            mpmc_model::power::PowerModel::from_parts(10.0, vec![2e-7, 1e-6, 3e-6, 1e-7, 1e-7])
                .unwrap();
        persist::write_power_model(&model, std::fs::File::create(&power_path).unwrap()).unwrap();
        let prof_path = dir.join("mpmc_cli_assign_prof_test.txt");
        let prof_s = prof_path.to_str().unwrap();
        run(&[
            "profile",
            "gzip",
            "--machine",
            "workstation",
            "--sets",
            "32",
            "--fast",
            "--out",
            prof_s,
        ])
        .unwrap();
        let power_s = power_path.to_str().unwrap();
        let base = [
            "assign",
            prof_s,
            prof_s,
            "--optimize",
            "--machine",
            "workstation",
            "--sets",
            "32",
            "--power",
            power_s,
            "--baseline",
            "0,1",
        ];

        let out = run(&base).unwrap();
        let got = mpmc_service::json::parse(&out).unwrap();
        assert_eq!(got.get("method").and_then(|j| j.as_str()), Some("exact"));
        assert_eq!(got.get("objective").and_then(|j| j.as_str()), Some("power"));
        let placement = got.get("placement").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(placement.len(), 2, "one queue per workstation core");
        let placed: usize = placement.iter().map(|q| q.as_arr().map_or(0, <[_]>::len)).sum();
        assert_eq!(placed, 2, "both processes placed: {out}");
        let power_w = got.get("power_w").and_then(|j| j.as_f64()).unwrap();
        assert!(power_w.is_finite() && power_w > 0.0, "{out}");
        assert!(got.get("makespan").and_then(|j| j.as_f64()).unwrap() > 0.0, "{out}");
        // The baseline piles both processes on core 0; the optimizer can
        // never do worse than it.
        let baseline = got.get("baseline").unwrap();
        let baseline_power = baseline.get("power_w").and_then(|j| j.as_f64()).unwrap();
        assert!(power_w <= baseline_power, "{out}");

        // Brute force over all 4 raw placements lands on the same power.
        let brute_argv: Vec<&str> = base.iter().copied().chain(["--brute"]).collect();
        let brute = mpmc_service::json::parse(&run(&brute_argv).unwrap()).unwrap();
        let brute_power = brute.get("power_w").and_then(|j| j.as_f64()).unwrap();
        assert_eq!(power_w.to_bits(), brute_power.to_bits());
        assert!(
            got.get("evaluated").and_then(|j| j.as_f64()).unwrap()
                <= brute.get("evaluated").and_then(|j| j.as_f64()).unwrap(),
            "symmetry pruning never evaluates more than brute force"
        );

        // A baseline that misses a process, duplicates one, or names too
        // many cores is a usage error before any solving happens.
        for bad in ["0", "0;0", "0;1;0"] {
            let argv: Vec<String> = base
                .iter()
                .map(|s| if *s == "0,1" { bad.to_string() } else { (*s).to_string() })
                .collect();
            assert_eq!(dispatch(&argv).unwrap_err().code, exit_code::USAGE, "baseline {bad}");
        }

        // An impossible power cap is a solver-domain failure (exit 4)
        // carrying the least-power placement as a diagnostic.
        let argv: Vec<&str> = base.iter().copied().chain(["--objective", "capped:0.5"]).collect();
        let err = dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err();
        assert_eq!(err.code, exit_code::SOLVER, "{err}");
        assert!(err.message.contains("infeasible"), "{err}");

        let _ = std::fs::remove_file(&power_path);
        let _ = std::fs::remove_file(&prof_path);
    }

    #[test]
    fn profile_and_estimate_on_tiny_machine() {
        let path = std::env::temp_dir().join("mpmc_cli_prof_test.txt");
        let path_s = path.to_str().unwrap();
        let out = run(&[
            "profile",
            "gzip",
            "--machine",
            "workstation",
            "--sets",
            "32",
            "--fast",
            "--out",
            path_s,
        ])
        .unwrap();
        assert!(out.contains("API"));
        assert!(out.contains("saved"));
        // The saved profile feeds predict.
        let out =
            run(&["predict", path_s, "mcf", "--machine", "workstation", "--sets", "32"]).unwrap();
        assert!(out.contains("gzip"));
        let _ = std::fs::remove_file(&path);
    }
}
