fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mpmc_cli::commands::dispatch(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
