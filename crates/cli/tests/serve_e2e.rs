//! End-to-end exercise of `mpmc serve` through the real binary: a stdio
//! session and a TCP session, each registering profiles, asking for a
//! placement, checking stats, and shutting down cleanly.

use mpmc_service::json::{self, Json};

use cmpsim::machine::MachineConfig;
use mpmc_model::feature::FeatureVector;
use mpmc_model::histogram::ReuseHistogram;
use mpmc_model::persist;
use mpmc_model::power::PowerModel;
use mpmc_model::profile::ProcessProfile;
use mpmc_model::spi::SpiModel;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

fn synthetic_profile(name: &str, tail: f64, api: f64, m: &MachineConfig) -> ProcessProfile {
    let head = 1.0 - tail;
    let hist =
        ReuseHistogram::new(vec![head * 0.5, head * 0.3, head * 0.15, head * 0.05], tail).unwrap();
    let alpha = api * (m.mem_cycles - m.l2_hit_cycles) as f64 / m.freq_hz;
    let beta = (m.cpi_base + api * m.l2_hit_cycles as f64) / m.freq_hz;
    let feature =
        FeatureVector::new(name, hist, api, SpiModel::new(alpha, beta).unwrap(), m.l2_assoc())
            .unwrap();
    ProcessProfile {
        feature,
        l1rpi: 0.35,
        l2rpi: api,
        brpi: 0.2,
        fppi: 0.1,
        processor_alone_w: 60.0,
        idle_processor_w: 44.0,
    }
}

fn profile_text(p: &ProcessProfile) -> String {
    let mut buf = Vec::new();
    persist::write_profile(p, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Writes a deterministic power-model file and returns its path.
fn power_file(stem: &str) -> std::path::PathBuf {
    let model = PowerModel::from_parts(10.0, vec![2e-7, 1e-6, 3e-6, 1e-7, 1e-7]).unwrap();
    let path = std::env::temp_dir().join(format!("mpmc_serve_e2e_{stem}_power.txt"));
    let file = std::fs::File::create(&path).unwrap();
    persist::write_power_model(&model, file).unwrap();
    path
}

fn register_req(id: u32, name: &str, text: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Num(f64::from(id))),
        ("op".into(), Json::str("register")),
        ("name".into(), Json::str(name)),
        ("profile".into(), Json::str(text)),
    ])
    .render()
}

fn spawn_serve(power: &std::path::Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_mpmc"))
        .args([
            "serve",
            "--machine",
            "workstation",
            "--power",
            power.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

#[test]
fn stdio_session_round_trips() {
    let machine = MachineConfig::two_core_workstation();
    let power = power_file("stdio");
    let a = profile_text(&synthetic_profile("a", 0.4, 0.03, &machine));
    let b = profile_text(&synthetic_profile("b", 0.1, 0.01, &machine));

    let mut child = spawn_serve(&power, &["--stdio"]);
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in [
            register_req(1, "a", &a),
            register_req(2, "b", &b),
            r#"{"id":3,"op":"assign","process":"b","current":[["a"]]}"#.to_string(),
            r#"{"id":4,"op":"stats"}"#.to_string(),
            r#"{"id":5,"op":"shutdown"}"#.to_string(),
        ] {
            stdin.write_all(line.as_bytes()).unwrap();
            stdin.write_all(b"\n").unwrap();
        }
        // stdin drops here; the daemon sees EOF after the shutdown line.
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let responses: Vec<Json> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad response line '{l}': {e}")))
        .collect();
    assert_eq!(responses.len(), 5);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "response {i}: {resp:?}");
        assert_eq!(resp.get("id").and_then(Json::as_usize), Some(i + 1));
    }
    let assign = &responses[2];
    let best_core = assign.get("best_core").and_then(Json::as_usize).unwrap();
    assert!(best_core < machine.num_cores());
    assert!(assign.get("best_power_w").and_then(Json::as_f64).unwrap().is_finite());
    assert_eq!(
        assign.get("candidates").and_then(Json::as_arr).map(<[Json]>::len),
        Some(machine.num_cores())
    );
    let stats = &responses[3];
    assert_eq!(
        stats.get("requests").and_then(|r| r.get("register")).and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(stats.get("profiles").and_then(Json::as_usize), Some(2));
    assert_eq!(stats.get("workers").and_then(Json::as_usize), Some(2));

    let _ = std::fs::remove_file(&power);
}

#[test]
fn tcp_session_round_trips_and_shuts_down() {
    let machine = MachineConfig::two_core_workstation();
    let power = power_file("tcp");
    let a = profile_text(&synthetic_profile("a", 0.4, 0.03, &machine));
    let b = profile_text(&synthetic_profile("b", 0.1, 0.01, &machine));

    let mut child = spawn_serve(&power, &["--listen", "127.0.0.1:0"]);
    // First stdout line announces the ephemeral port.
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut ask = |req: &str| -> Json {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    };

    for (i, req) in [
        register_req(1, "a", &a),
        register_req(2, "b", &b),
        r#"{"id":3,"op":"estimate","assignment":[["a"],["b"]]}"#.to_string(),
        r#"{"id":4,"op":"assign","process":"b","current":[["a"]]}"#.to_string(),
    ]
    .iter()
    .enumerate()
    {
        let resp = ask(req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {i}: {resp:?}");
    }
    // An error mid-session must not kill the connection.
    let resp = ask(r#"{"id":5,"op":"assign","process":"ghost"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("invalid_data")
    );
    let resp = ask(r#"{"id":6,"op":"ping"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

    // Shutdown stops the daemon; the process must exit 0 by itself.
    let resp = ask(r#"{"id":7,"op":"shutdown"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exited with {status:?}");

    let _ = std::fs::remove_file(&power);
}

#[test]
fn oversized_line_is_shed_and_connection_survives() {
    let power = power_file("linecap");
    let mut child = spawn_serve(&power, &["--listen", "127.0.0.1:0", "--max-line-bytes", "128"]);
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("listening on ").unwrap().to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut ask = |req: &str| -> Json {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    };

    // A flood far past the cap gets a typed refusal, not a hangup...
    let flood = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(4096));
    let resp = ask(&flood);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
    assert_eq!(
        resp.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("line_too_long")
    );
    assert_eq!(resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_f64), Some(11.0));
    // ...and the very same connection keeps working.
    let resp = ask(r#"{"id":2,"op":"ping"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    let resp = ask(r#"{"id":3,"op":"shutdown"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_file(&power);
}

#[test]
fn connection_cap_rejects_with_typed_greeting() {
    let power = power_file("conncap");
    let mut child = spawn_serve(&power, &["--listen", "127.0.0.1:0", "--max-connections", "1"]);
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("listening on ").unwrap().to_string();

    // First connection occupies the only slot (prove it is live).
    let first = TcpStream::connect(&addr).unwrap();
    let mut first_reader = BufReader::new(first.try_clone().unwrap());
    let mut first_writer = first;
    first_writer.write_all(b"{\"id\":1,\"op\":\"ping\"}\n").unwrap();
    first_writer.flush().unwrap();
    let mut line = String::new();
    first_reader.read_line(&mut line).unwrap();
    assert_eq!(json::parse(line.trim()).unwrap().get("ok"), Some(&Json::Bool(true)));

    // Second connection is refused with a well-formed greeting, then
    // closed (read_line returns 0 at EOF).
    let second = TcpStream::connect(&addr).unwrap();
    let mut second_reader = BufReader::new(second);
    let mut greeting = String::new();
    second_reader.read_line(&mut greeting).unwrap();
    let resp = json::parse(greeting.trim()).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
    assert_eq!(
        resp.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("too_many_connections")
    );
    let mut rest = String::new();
    assert_eq!(second_reader.read_line(&mut rest).unwrap(), 0, "socket must be closed");

    // The admitted connection still works and can shut the daemon down.
    first_writer.write_all(b"{\"id\":2,\"op\":\"shutdown\"}\n").unwrap();
    first_writer.flush().unwrap();
    let mut line = String::new();
    first_reader.read_line(&mut line).unwrap();
    assert_eq!(json::parse(line.trim()).unwrap().get("ok"), Some(&Json::Bool(true)));
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_file(&power);
}
