//! Error metrics and summary statistics used throughout the evaluation.
//!
//! The paper reports results as average/maximum relative errors and as the
//! fraction of cases whose error exceeds 5 % — all computed here.

/// Arithmetic mean; 0 for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation; 0 for inputs shorter than 2.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Maximum value; 0 for empty input.
pub fn max(v: &[f64]) -> f64 {
    v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)).max(if v.is_empty() {
        0.0
    } else {
        f64::NEG_INFINITY
    })
}

/// Relative error `|predicted - actual| / |actual|`, as a fraction.
///
/// Returns `|predicted|` when `actual == 0` (absolute fallback), so the
/// metric stays finite for zero references.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        predicted.abs()
    } else {
        (predicted - actual).abs() / actual.abs()
    }
}

/// Absolute error `|predicted - actual|`.
pub fn absolute_error(predicted: f64, actual: f64) -> f64 {
    (predicted - actual).abs()
}

/// Summary of a set of per-case errors: the shape in which the paper's
/// tables report validation results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorSummary {
    /// Mean error (fraction, not percent).
    pub avg: f64,
    /// Maximum error (fraction).
    pub max: f64,
    /// Fraction of cases whose error exceeds 5 %.
    pub frac_above_5pct: f64,
    /// Number of cases summarized.
    pub n: usize,
}

impl ErrorSummary {
    /// Summarizes a slice of error fractions.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = mathkit::stats::ErrorSummary::from_errors(&[0.01, 0.03, 0.08]);
    /// assert_eq!(s.n, 3);
    /// assert!((s.avg - 0.04).abs() < 1e-12);
    /// assert_eq!(s.max, 0.08);
    /// assert!((s.frac_above_5pct - 1.0 / 3.0).abs() < 1e-12);
    /// ```
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorSummary::default();
        }
        let avg = mean(errors);
        let mx = errors.iter().fold(0.0_f64, |m, &x| m.max(x));
        let above = errors.iter().filter(|&&e| e > 0.05).count();
        ErrorSummary {
            avg,
            max: mx,
            frac_above_5pct: above as f64 / errors.len() as f64,
            n: errors.len(),
        }
    }

    /// Mean error in percent.
    pub fn avg_pct(&self) -> f64 {
        self.avg * 100.0
    }

    /// Maximum error in percent.
    pub fn max_pct(&self) -> f64 {
        self.max * 100.0
    }

    /// Percentage of cases with error above 5 %.
    pub fn above_5pct_pct(&self) -> f64 {
        self.frac_above_5pct * 100.0
    }
}

/// The `q`-quantile (0 <= q <= 1) by linear interpolation between order
/// statistics; 0 for empty input.
/// NaN values sort after every finite value (IEEE total order), so a
/// poisoned sample surfaces as a NaN upper percentile instead of a panic.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(v: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
    if v.is_empty() {
        return 0.0;
    }
    let mut sorted = v.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Mean absolute percentage accuracy, `100 * (1 - mean relative error)`,
/// the "accuracy" figure of merit the paper quotes for the power models
/// (e.g. "MVLR-based model achieves an accuracy of 96.2 %").
pub fn accuracy_pct(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "accuracy over unequal lengths");
    if predicted.is_empty() {
        return 100.0;
    }
    let mre = predicted.iter().zip(actual).map(|(&p, &a)| relative_error(p, a)).sum::<f64>()
        / predicted.len() as f64;
    100.0 * (1.0 - mre)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert_eq!(relative_error(-90.0, -100.0), 0.1);
    }

    #[test]
    fn absolute_error_cases() {
        assert_eq!(absolute_error(1.0, 3.0), 2.0);
        assert_eq!(absolute_error(3.0, 1.0), 2.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_percent_views() {
        let s = ErrorSummary::from_errors(&[0.02, 0.06]);
        assert!((s.avg_pct() - 4.0).abs() < 1e-12);
        assert!((s.max_pct() - 6.0).abs() < 1e-12);
        assert!((s.above_5pct_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_exactly_5pct_not_counted() {
        let s = ErrorSummary::from_errors(&[0.05]);
        assert_eq!(s.frac_above_5pct, 0.0);
    }

    #[test]
    fn accuracy_perfect_and_degraded() {
        assert_eq!(accuracy_pct(&[], &[]), 100.0);
        assert_eq!(accuracy_pct(&[1.0, 2.0], &[1.0, 2.0]), 100.0);
        let acc = accuracy_pct(&[1.1], &[1.0]);
        assert!((acc - 90.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let v = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn max_helper() {
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
    }
}
