//! Cooperative-cancellation and admission primitives for the serving
//! path.
//!
//! The workspace's dependencies are offline shims, so there is no tokio
//! or parking_lot; this module provides the two small synchronization
//! pieces the overload-hardened service needs, on `std` alone:
//!
//! - [`CancelToken`]: a cheap, cloneable "should I stop?" flag that
//!   iterative solvers poll at their cancellation points. The token is
//!   deliberately clock-free — callers that want wall-clock deadlines
//!   wrap one in a closure ([`CancelToken::from_fn`]); callers that want
//!   deterministic tests use a shared flag ([`CancelToken::flag`]).
//! - [`Semaphore`]: a counting semaphore with a bounded waiter queue and
//!   timeout-capable acquisition, used as the service's in-flight
//!   request budget.
//!
//! Both are deliberately boring: no fairness games, no async, no
//! spinning beyond a condvar wait.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A cheap, cloneable cancellation signal polled at solver cancellation
/// points.
///
/// The default token ([`CancelToken::never`]) never fires and costs one
/// enum-tag check per poll, so threading a token through a hot loop is
/// effectively free in the common (no-deadline) case.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Inner,
}

#[derive(Clone, Default)]
enum Inner {
    /// Never fires.
    #[default]
    Never,
    /// Fires once the shared flag is set (deterministic / test-friendly).
    Flag(Arc<AtomicBool>),
    /// Fires when the closure reports so (e.g. a wall-clock deadline
    /// owned by the caller; this crate itself stays clock-free).
    Func(Arc<dyn Fn() -> bool + Send + Sync>),
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            Inner::Never => "never",
            Inner::Flag(_) => "flag",
            Inner::Func(_) => "func",
        };
        f.debug_struct("CancelToken").field("kind", &kind).finish()
    }
}

impl CancelToken {
    /// A token that never fires (the default).
    pub fn never() -> Self {
        CancelToken { inner: Inner::Never }
    }

    /// A token backed by a shared flag; fires once the flag is `true`.
    pub fn flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken { inner: Inner::Flag(flag) }
    }

    /// A token backed by an arbitrary predicate. The predicate must be
    /// cheap — solvers poll it every iteration.
    pub fn from_fn(f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        CancelToken { inner: Inner::Func(Arc::new(f)) }
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            Inner::Never => false,
            Inner::Flag(flag) => flag.load(Ordering::Relaxed),
            Inner::Func(f) => f(),
        }
    }

    /// A cancellation point: `Err(MathError::Cancelled)` once the token
    /// has fired, `Ok(())` otherwise.
    ///
    /// # Errors
    ///
    /// [`crate::MathError::Cancelled`] when the token has fired.
    pub fn check(&self) -> Result<(), crate::MathError> {
        if self.is_cancelled() {
            Err(crate::MathError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Why a [`Semaphore`] acquisition did not return a permit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// The bounded waiter queue was already full; the caller should shed
    /// immediately rather than pile on.
    QueueFull,
    /// The wait timed out before a permit freed up.
    Timeout,
}

#[derive(Debug, Default)]
struct SemState {
    available: usize,
    waiters: usize,
}

/// A counting semaphore with a bounded waiter queue.
///
/// `permits` bounds concurrent holders; `max_waiters` bounds how many
/// threads may block waiting for a permit — one past that bound,
/// acquisition fails fast with [`AcquireError::QueueFull`], which is the
/// load-shedding behavior an overloaded service wants (a queue that
/// grows without bound just converts overload into latency and memory).
#[derive(Debug)]
pub struct Semaphore {
    state: Mutex<SemState>,
    cv: Condvar,
    permits: usize,
    max_waiters: usize,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent permits and at most
    /// `max_waiters` queued waiters. `permits` is clamped to at least 1.
    pub fn new(permits: usize, max_waiters: usize) -> Self {
        let permits = permits.max(1);
        Semaphore {
            state: Mutex::new(SemState { available: permits, waiters: 0 }),
            cv: Condvar::new(),
            permits,
            max_waiters,
        }
    }

    /// Total permits this semaphore was built with.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Permits currently held (diagnostics; racy by nature).
    pub fn in_use(&self) -> usize {
        let st = self.lock();
        self.permits - st.available
    }

    /// Threads currently queued waiting for a permit (diagnostics).
    pub fn queued(&self) -> usize {
        self.lock().waiters
    }

    /// Acquires a permit without blocking.
    ///
    /// # Errors
    ///
    /// [`AcquireError::QueueFull`] when no permit is free (a non-blocking
    /// try never queues, so "no permit" and "queue full" coincide).
    pub fn try_acquire(&self) -> Result<Permit<'_>, AcquireError> {
        let mut st = self.lock();
        if st.available > 0 {
            st.available -= 1;
            Ok(Permit { sem: self })
        } else {
            Err(AcquireError::QueueFull)
        }
    }

    /// Acquires a permit, waiting up to `timeout` in the bounded queue.
    ///
    /// # Errors
    ///
    /// [`AcquireError::QueueFull`] if the waiter queue is at capacity,
    /// [`AcquireError::Timeout`] if no permit freed up in time.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<Permit<'_>, AcquireError> {
        let mut st = self.lock();
        if st.available > 0 {
            st.available -= 1;
            return Ok(Permit { sem: self });
        }
        if st.waiters >= self.max_waiters {
            return Err(AcquireError::QueueFull);
        }
        st.waiters += 1;
        let deadline_left = timeout;
        let (mut st, timed_out) = {
            let mut remaining = deadline_left;
            let mut guard = st;
            // lint:allow(cancellation_propagation) -- bounded by the acquire timeout: `remaining` shrinks to zero and the loop exits timed_out
            loop {
                let (g, wait) =
                    self.cv.wait_timeout(guard, remaining).unwrap_or_else(|e| e.into_inner());
                guard = g;
                if guard.available > 0 {
                    break (guard, false);
                }
                if wait.timed_out() {
                    break (guard, true);
                }
                // Spurious wake-up with nothing available: wait again for
                // the full remaining slice (condvar timeouts are coarse;
                // the service's deadline check catches real overruns).
                remaining = deadline_left;
            }
        };
        st.waiters -= 1;
        if timed_out {
            return Err(AcquireError::Timeout);
        }
        st.available -= 1;
        Ok(Permit { sem: self })
    }

    fn release(&self) {
        let mut st = self.lock();
        st.available = (st.available + 1).min(self.permits);
        drop(st);
        self.cv.notify_one();
    }

    fn lock(&self) -> MutexGuard<'_, SemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An RAII permit; dropping it releases the semaphore slot.
#[derive(Debug)]
pub struct Permit<'a> {
    sem: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn flag_token_fires_once_set() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::flag(flag.clone());
        let t2 = t.clone();
        assert!(t.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
        assert_eq!(t2.check(), Err(crate::MathError::Cancelled), "clones share the flag");
    }

    #[test]
    fn fn_token_delegates_to_closure() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let t = CancelToken::from_fn(move || {
            c.fetch_add(1, Ordering::Relaxed);
            calls_so_far(&c) > 2
        });
        fn calls_so_far(c: &AtomicUsize) -> usize {
            c.load(Ordering::Relaxed)
        }
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled());
        assert!(calls.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn semaphore_try_acquire_exhausts_and_releases() {
        let sem = Semaphore::new(2, 4);
        assert_eq!(sem.permits(), 2);
        let a = sem.try_acquire().unwrap();
        let b = sem.try_acquire().unwrap();
        assert_eq!(sem.in_use(), 2);
        assert!(sem.try_acquire().is_err());
        drop(a);
        assert_eq!(sem.in_use(), 1);
        let c = sem.try_acquire().unwrap();
        drop(b);
        drop(c);
        assert_eq!(sem.in_use(), 0);
    }

    #[test]
    fn acquire_timeout_times_out_when_held() {
        let sem = Semaphore::new(1, 4);
        let held = sem.try_acquire().unwrap();
        let got = sem.acquire_timeout(Duration::from_millis(10));
        assert_eq!(got.unwrap_err(), AcquireError::Timeout);
        drop(held);
        assert!(sem.acquire_timeout(Duration::from_millis(10)).is_ok());
    }

    #[test]
    fn waiter_queue_is_bounded() {
        let sem = Arc::new(Semaphore::new(1, 1));
        let held = sem.try_acquire().unwrap();
        let sem2 = sem.clone();
        // One waiter is allowed to queue...
        let waiter =
            std::thread::spawn(move || sem2.acquire_timeout(Duration::from_secs(5)).map(|_| ()));
        // ...wait until it is actually queued.
        for _ in 0..500 {
            if sem.queued() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sem.queued(), 1);
        // A second waiter bounces off the bounded queue immediately.
        assert_eq!(
            sem.acquire_timeout(Duration::from_secs(5)).unwrap_err(),
            AcquireError::QueueFull
        );
        drop(held);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let sem = Semaphore::new(0, 0);
        assert_eq!(sem.permits(), 1);
        let p = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_err(), "zero-waiter queue sheds instantly");
        drop(p);
    }
}
