//! Multi-variable linear regression (MVLR).
//!
//! This is the fitting procedure the paper selects for its power model
//! (§4.1, Eq. 9): given observations of predictor vectors (HPC event rates)
//! and a response (measured power), find an intercept and coefficients by
//! ordinary least squares. Fitting goes through the QR factorization in
//! [`crate::decomp`] for numerical robustness; predictors are standardized
//! internally so wildly different event-rate magnitudes (e.g. L1 references
//! per second vs. FP operations per second) do not poison the conditioning.

use crate::decomp::Qr;
use crate::matrix::Matrix;
use crate::MathError;

/// A fitted ordinary-least-squares linear model `y = intercept + c · x`.
///
/// # Examples
///
/// ```
/// use mathkit::linreg::LinearRegression;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let xs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
/// let ys = vec![3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
/// let fit = LinearRegression::fit(&xs, &ys)?;
/// assert!((fit.predict(&[10.0]) - 21.0).abs() < 1e-9);
/// assert!(fit.r_squared() > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    intercept: f64,
    coefficients: Vec<f64>,
    r_squared: f64,
    residual_std: f64,
    n_observations: usize,
}

impl LinearRegression {
    /// Fits `y ≈ intercept + c · x` by least squares.
    ///
    /// # Errors
    ///
    /// - [`MathError::InsufficientData`] if there are fewer observations
    ///   than unknowns (`xs.len() < dim + 1`).
    /// - [`MathError::DimensionMismatch`] if `xs.len() != ys.len()` or the
    ///   predictor rows have unequal lengths.
    /// - [`MathError::Singular`] if the design matrix is rank-deficient
    ///   (e.g. a predictor is constant or predictors are collinear).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, MathError> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} responses", xs.len()),
                found: format!("{} responses", ys.len()),
            });
        }
        if xs.is_empty() {
            return Err(MathError::InsufficientData { needed: 2, got: 0 });
        }
        let dim = xs[0].len();
        let n = xs.len();
        if n < dim + 1 {
            return Err(MathError::InsufficientData { needed: dim + 1, got: n });
        }

        // Standardize each predictor column: z = (x - mean) / scale.
        // This keeps the QR well-conditioned when columns differ by many
        // orders of magnitude; coefficients are un-standardized afterwards.
        let mut means = vec![0.0; dim];
        let mut scales = vec![0.0; dim];
        for x in xs {
            if x.len() != dim {
                return Err(MathError::DimensionMismatch {
                    expected: format!("predictor of length {dim}"),
                    found: format!("predictor of length {}", x.len()),
                });
            }
            for (j, &v) in x.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for x in xs {
            for (j, &v) in x.iter().enumerate() {
                scales[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut scales {
            *s = (*s / n as f64).sqrt();
            if *s == 0.0 {
                // Constant column: collinear with the intercept.
                return Err(MathError::Singular);
            }
        }

        // Design matrix [1 | z].
        let mut design = Matrix::zeros(n, dim + 1);
        for (i, x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            for j in 0..dim {
                design[(i, j + 1)] = (x[j] - means[j]) / scales[j];
            }
        }
        let qr = Qr::factor(&design)?;
        let theta = qr.solve_least_squares(ys)?;

        // Un-standardize: y = t0 + sum_j tj * (x_j - mu_j)/s_j
        //               = (t0 - sum_j tj mu_j / s_j) + sum_j (tj / s_j) x_j.
        let mut coefficients = vec![0.0; dim];
        let mut intercept = theta[0];
        for j in 0..dim {
            coefficients[j] = theta[j + 1] / scales[j];
            intercept -= theta[j + 1] * means[j] / scales[j];
        }

        // Fit diagnostics.
        let mean_y: f64 = ys.iter().sum::<f64>() / n as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let pred = intercept + x.iter().zip(&coefficients).map(|(a, b)| a * b).sum::<f64>();
            ss_res += (y - pred).powi(2);
            ss_tot += (y - mean_y).powi(2);
        }
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        let dof = (n - dim - 1).max(1);
        let residual_std = (ss_res / dof as f64).sqrt();

        Ok(LinearRegression { intercept, coefficients, r_squared, residual_std, n_observations: n })
    }

    /// Reassembles a model from stored parts (e.g. loaded from disk).
    /// Fit diagnostics are unknown for such a model: `r_squared` and
    /// `residual_std` are `NaN` and `n_observations` is 0.
    pub fn from_parts(intercept: f64, coefficients: Vec<f64>) -> Self {
        LinearRegression {
            intercept,
            coefficients,
            r_squared: f64::NAN,
            residual_std: f64::NAN,
            n_observations: 0,
        }
    }

    /// Predicted response for predictor vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.coefficients.len(),
            "predictor length {} does not match model dimensionality {}",
            x.len(),
            self.coefficients.len()
        );
        self.intercept + x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum::<f64>()
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted coefficients, one per predictor.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination on the training data.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Residual standard deviation (with degrees-of-freedom correction).
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Number of observations used in the fit.
    pub fn n_observations(&self) -> usize {
        self.n_observations
    }
}

/// Fits a simple 1-D regression `y = alpha * x + beta` and returns
/// `(alpha, beta)`.
///
/// This is the form the paper uses for the SPI–MPA relationship (Eq. 3).
///
/// # Errors
///
/// Propagates the errors of [`LinearRegression::fit`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mathkit::MathError> {
/// let (alpha, beta) = mathkit::linreg::fit_line(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((alpha - 2.0).abs() < 1e-9);
/// assert!((beta - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_line(x: &[f64], y: &[f64]) -> Result<(f64, f64), MathError> {
    let xs: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
    let fit = LinearRegression::fit(&xs, y)?;
    Ok((fit.coefficients()[0], fit.intercept()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_plane() {
        let xs: Vec<Vec<f64>> =
            (0..10).map(|i| vec![i as f64, (i * i) as f64 % 7.0, (3 * i) as f64 % 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 - 2.0 * x[0] + 0.5 * x[1] + 3.0 * x[2]).collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((fit.intercept() - 4.0).abs() < 1e-8);
        assert!((fit.coefficients()[0] + 2.0).abs() < 1e-8);
        assert!((fit.coefficients()[1] - 0.5).abs() < 1e-8);
        assert!((fit.coefficients()[2] - 3.0).abs() < 1e-8);
        assert!(fit.r_squared() > 1.0 - 1e-10);
    }

    #[test]
    fn handles_badly_scaled_predictors() {
        // Columns spanning 9 orders of magnitude, as HPC event rates do.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                vec![rng.gen_range(1e8..5e9), rng.gen_range(0.1..10.0), rng.gen_range(1e3..1e5)]
            })
            .collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| 12.0 + 3e-9 * x[0] + 0.7 * x[1] + 2e-4 * x[2]).collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((fit.intercept() - 12.0).abs() < 1e-6, "{}", fit.intercept());
        assert!((fit.coefficients()[0] - 3e-9).abs() < 1e-13);
        assert!((fit.coefficients()[1] - 0.7).abs() < 1e-6);
        assert!((fit.coefficients()[2] - 2e-4).abs() < 1e-9);
    }

    #[test]
    fn noise_reduces_r_squared_but_not_below_zero_for_signal() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + rng.gen_range(-5.0..5.0)).collect();
        let fit = LinearRegression::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared() > 0.9 && fit.r_squared() < 1.0);
        assert!(fit.residual_std() > 0.0);
        assert_eq!(fit.n_observations(), 200);
    }

    #[test]
    fn constant_predictor_is_singular() {
        let xs = vec![vec![1.0, 3.0], vec![1.0, 4.0], vec![1.0, 5.0], vec![1.0, 6.0]];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(LinearRegression::fit(&xs, &ys).unwrap_err(), MathError::Singular);
    }

    #[test]
    fn collinear_predictors_rejected() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(LinearRegression::fit(&xs, &ys).is_err());
    }

    #[test]
    fn too_few_observations() {
        let xs = vec![vec![1.0, 2.0]];
        let ys = vec![1.0];
        assert!(matches!(LinearRegression::fit(&xs, &ys), Err(MathError::InsufficientData { .. })));
    }

    #[test]
    fn mismatched_lengths() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0];
        assert!(matches!(
            LinearRegression::fit(&xs, &ys),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fit_line_matches_closed_form() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.2, 3.9, 6.1, 8.0, 9.9];
        let (alpha, beta) = fit_line(&x, &y).unwrap();
        assert!((alpha - 1.95).abs() < 0.05, "{alpha}");
        assert!((beta - 0.17).abs() < 0.15, "{beta}");
    }

    #[test]
    fn from_parts_predicts() {
        let m = LinearRegression::from_parts(1.0, vec![2.0, 3.0]);
        assert_eq!(m.predict(&[1.0, 1.0]), 6.0);
        assert!(m.r_squared().is_nan());
        assert_eq!(m.n_observations(), 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn predict_length_checked() {
        let fit =
            LinearRegression::fit(&[vec![1.0], vec![2.0], vec![3.0]], &[1.0, 2.0, 3.0]).unwrap();
        fit.predict(&[1.0, 2.0]);
    }
}
