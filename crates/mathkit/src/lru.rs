//! A small capacity-bounded LRU map.
//!
//! The equilibrium memo cache in the combined model used to be an
//! unbounded `HashMap`, which grows without limit over a long candidate
//! sweep. This module provides the bounded replacement: a classic
//! hash-map-plus-intrusive-list LRU over dense slots (the same idiom as
//! `cmpsim`'s set-associative recency tracking), with O(1) lookup,
//! promotion, insertion, and eviction, and hit/miss/eviction counters
//! for diagnostics.
//!
//! # Examples
//!
//! ```
//! use mathkit::lru::LruCache;
//!
//! let mut lru = LruCache::new(2);
//! lru.insert("a", 1);
//! lru.insert("b", 2);
//! assert_eq!(lru.get(&"a"), Some(&1)); // promotes "a"
//! lru.insert("c", 3);                  // evicts "b", the LRU entry
//! assert_eq!(lru.get(&"b"), None);
//! assert_eq!(lru.len(), 2);
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A capacity-bounded least-recently-used map.
///
/// `get` promotes the entry to most-recently-used; `insert` evicts the
/// least-recently-used entry once the cache is full. A capacity of zero
/// is legal and makes every `insert` a no-op (a disabled cache).
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most-recently-used slot index, `NIL` when empty.
    head: usize,
    /// Least-recently-used slot index, `NIL` when empty.
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            entries: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, promoting the entry to most-recently-used.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.entries[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without promoting it and without touching the
    /// hit/miss counters (diagnostics / tests).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|&slot| &self.entries[slot].value)
    }

    /// Inserts `key -> value` as the most-recently-used entry, returning
    /// the evicted `(key, value)` pair if the cache was full. Re-inserting
    /// an existing key replaces its value and promotes it (no eviction).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.entries[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            self.detach(lru);
            self.free.push(lru);
            let entry = &self.entries[lru];
            self.map.remove(&entry.key);
            self.evictions += 1;
            // The slot stays allocated (it is on the free list); move the
            // evicted pair out by swapping with the incoming one below.
            Some(lru)
        } else {
            None
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                let old = std::mem::replace(
                    &mut self.entries[slot],
                    Entry { key: key.clone(), value, prev: NIL, next: NIL },
                );
                self.map.insert(key, slot);
                self.attach_front(slot);
                return evicted.map(|_| (old.key, old.value));
            }
            None => {
                self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.entries.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
        None
    }

    /// Iterates entries from most- to least-recently-used.
    ///
    /// The order is the recency list, not `HashMap` iteration order, so
    /// it is deterministic for a given operation history — callers that
    /// scan the cache (e.g. the equilibrium cache's stale-neighbor
    /// lookup) stay reproducible across runs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter { cache: self, slot: self.head }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.entries[slot].prev, self.entries[slot].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.entries[slot].prev = NIL;
        self.entries[slot].next = NIL;
    }

    /// Links `slot` in as the most-recently-used entry.
    fn attach_front(&mut self, slot: usize) {
        self.entries[slot].prev = NIL;
        self.entries[slot].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// Iterator over an [`LruCache`] in most- to least-recently-used order.
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    cache: &'a LruCache<K, V>,
    slot: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.slot == NIL {
            return None;
        }
        let entry = &self.cache.entries[self.slot];
        self.slot = entry.next;
        Some((&entry.key, &entry.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recency order from MRU to LRU, by walking the list.
    fn order(lru: &LruCache<u32, u32>) -> Vec<u32> {
        let mut out = Vec::new();
        let mut slot = lru.head;
        while slot != NIL {
            out.push(lru.entries[slot].key);
            slot = lru.entries[slot].next;
        }
        out
    }

    #[test]
    fn insert_get_evict() {
        let mut lru = LruCache::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        assert_eq!(order(&lru), vec![3, 2, 1]);
        // Promote 1, then insert 4: 2 is now LRU and must go.
        assert_eq!(lru.get(&1), Some(&10));
        let evicted = lru.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.len(), 3);
        assert_eq!(order(&lru), vec![4, 1, 3]);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.hits(), 1);
        assert_eq!(lru.misses(), 1);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.insert(1, 11).is_none(), "replacement must not evict");
        assert_eq!(lru.peek(&1), Some(&11));
        // 2 is now LRU.
        assert_eq!(lru.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut one = LruCache::new(1);
        assert!(one.insert(1, 10).is_none());
        assert_eq!(one.insert(2, 20), Some((1, 10)));
        assert_eq!(one.len(), 1);
        assert_eq!(one.get(&2), Some(&20));

        let mut zero: LruCache<u32, u32> = LruCache::new(0);
        assert!(zero.insert(1, 10).is_none());
        assert!(zero.is_empty());
        assert_eq!(zero.get(&1), None);
        assert_eq!(zero.evictions(), 0);
    }

    #[test]
    fn peek_does_not_promote_or_count() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.peek(&1), Some(&10));
        assert_eq!(lru.hits(), 0);
        // 1 was not promoted, so it is still the LRU entry.
        assert_eq!(lru.insert(3, 30), Some((1, 10)));
    }

    #[test]
    fn clear_keeps_counters() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 10);
        lru.get(&1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.hits(), 1);
        lru.insert(2, 20);
        assert_eq!(lru.get(&2), Some(&20));
        assert_eq!(order(&lru), vec![2]);
    }

    #[test]
    fn iter_walks_recency_order() {
        let mut lru = LruCache::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        lru.get(&1); // promote
        let seen: Vec<(u32, u32)> = lru.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(seen, vec![(1, 10), (3, 30), (2, 20)]);
        assert_eq!(lru.iter().count(), lru.len());
        let empty: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn never_exceeds_capacity_under_churn() {
        let mut lru = LruCache::new(16);
        for i in 0..10_000u32 {
            lru.insert(i % 97, i);
            assert!(lru.len() <= 16);
            if i % 3 == 0 {
                lru.get(&(i % 31));
            }
        }
        assert_eq!(lru.len(), 16);
        assert!(lru.evictions() > 0);
        // Every key the map knows is reachable through the list.
        assert_eq!(order(&lru).len(), 16);
    }
}
