//! Robust 1-D root finding.
//!
//! The performance model needs guaranteed-convergent scalar solves in two
//! places: inverting the monotone occupancy function `G(n)` and the outer
//! solve on the shared cache window `T` in the fallback equilibrium solver.
//! Bisection (optionally accelerated with secant steps, i.e. a simplified
//! Brent scheme) is used because the functions involved are monotone but
//! only piecewise smooth.

use crate::sync::CancelToken;
use crate::MathError;

/// Options controlling a bisection solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectOptions {
    /// Absolute tolerance on the bracket width.
    pub x_tol: f64,
    /// Absolute tolerance on |f(x)|; either tolerance terminates.
    pub f_tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for BisectOptions {
    fn default() -> Self {
        BisectOptions { x_tol: 1e-10, f_tol: 1e-12, max_iter: 200 }
    }
}

/// Finds a root of `f` in `[lo, hi]` by bisection with secant acceleration.
///
/// The bracket must satisfy `f(lo) * f(hi) <= 0`. The returned point `x`
/// satisfies `|f(x)| <= f_tol` or lies within `x_tol` of a sign change.
///
/// # Errors
///
/// - [`MathError::InvalidBracket`] if `lo >= hi` or the bracket does not
///   contain a sign change.
/// - [`MathError::NoConvergence`] if the iteration budget is exhausted
///   (practically unreachable for a valid bracket, since the bracket halves
///   on every non-accelerated step).
///
/// # Examples
///
/// ```
/// use mathkit::roots::{bisect, BisectOptions};
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, BisectOptions::default())?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    opts: BisectOptions,
) -> Result<f64, MathError> {
    bisect_cancellable(f, lo, hi, opts, &CancelToken::never())
}

/// [`bisect`] with a cooperative cancellation point at the top of every
/// iteration.
///
/// # Errors
///
/// Everything [`bisect`] returns, plus [`MathError::Cancelled`] once
/// `cancel` fires.
pub fn bisect_cancellable<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    opts: BisectOptions,
    cancel: &CancelToken,
) -> Result<f64, MathError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let flo = f(lo);
    let fhi = f(hi);
    bisect_seeded_cancellable(f, lo, hi, flo, fhi, opts, cancel)
}

/// [`bisect_cancellable`] with caller-supplied endpoint values `f(lo)` and
/// `f(hi)`, for hot paths that already evaluated the endpoints (e.g. to
/// decide whether a bracketed solve is needed at all). With correctly
/// seeded values the iteration sequence — and hence every bit of the
/// result — is identical to [`bisect_cancellable`], minus the two
/// endpoint evaluations.
///
/// # Errors
///
/// Everything [`bisect_cancellable`] returns.
pub fn bisect_seeded_cancellable<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    flo: f64,
    fhi: f64,
    opts: BisectOptions,
    cancel: &CancelToken,
) -> Result<f64, MathError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = flo;
    let mut fb = fhi;
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(MathError::InvalidBracket { lo, hi });
    }

    let mut last_f = fa.abs().min(fb.abs());
    for iter in 0..opts.max_iter {
        cancel.check()?;
        // Candidate: secant point if it lands strictly inside the bracket,
        // otherwise the midpoint. Alternate with plain bisection every other
        // step to guarantee geometric bracket shrinkage.
        let mid = 0.5 * (a + b);
        let mut x = mid;
        if iter % 2 == 0 && fb != fa {
            let secant = b - fb * (b - a) / (fb - fa);
            let margin = 0.01 * (b - a);
            if secant > a + margin && secant < b - margin {
                x = secant;
            }
        }
        let fx = f(x);
        last_f = fx.abs();
        if fx.abs() <= opts.f_tol || (b - a) <= opts.x_tol {
            return Ok(x);
        }
        if fa * fx < 0.0 {
            b = x;
            fb = fx;
        } else {
            a = x;
            fa = fx;
        }
    }
    Err(MathError::NoConvergence { iterations: opts.max_iter, residual: last_f })
}

/// Expands `[lo, hi]` geometrically upward until `f` changes sign, then
/// bisects. Intended for monotone functions where only a lower bound of the
/// root is known (e.g. inverting `G(n)` where `n` is unbounded above).
///
/// `hi_limit` caps the expansion; if the sign never changes before the cap,
/// the cap itself is returned when `f` is still on the same side (saturated
/// monotone functions), which callers treat as "root at or beyond the cap".
///
/// # Errors
///
/// Returns [`MathError::InvalidBracket`] if `lo >= hi` or the inputs are not
/// finite, and propagates [`bisect`] errors.
pub fn bisect_expanding<F: FnMut(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    hi_limit: f64,
    opts: BisectOptions,
) -> Result<f64, MathError> {
    bisect_expanding_cancellable(f, lo, hi, hi_limit, opts, &CancelToken::never())
}

/// [`bisect_expanding`] with cooperative cancellation points in both the
/// expansion loop and the inner bisection.
///
/// # Errors
///
/// Everything [`bisect_expanding`] returns, plus [`MathError::Cancelled`]
/// once `cancel` fires.
pub fn bisect_expanding_cancellable<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    hi_limit: f64,
    opts: BisectOptions,
    cancel: &CancelToken,
) -> Result<f64, MathError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(MathError::InvalidBracket { lo, hi });
    }
    let flo = f(lo);
    if flo == 0.0 {
        return Ok(lo);
    }
    let mut b = hi;
    let mut fb = f(b);
    let mut a = lo;
    while flo * fb > 0.0 {
        cancel.check()?;
        if b >= hi_limit {
            return Ok(hi_limit);
        }
        a = b;
        b = (b * 2.0).min(hi_limit);
        fb = f(b);
    }
    bisect_cancellable(f, a, b, opts, cancel)
}

/// Options controlling a damped fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointOptions {
    /// Convergence tolerance on `|g(x) - x|`.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Damping factor in `(0, 1]`: the update is `x + damping * (g(x) - x)`.
    pub damping: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions { tol: 1e-9, max_iter: 500, damping: 0.5 }
    }
}

/// Result of a converged fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointSolution {
    /// The fixed point.
    pub x: f64,
    /// `|g(x) - x|` at the returned point.
    pub residual: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Solves `x = g(x)` on `[lo, hi]` by damped iteration with a hard budget.
///
/// Every iterate is clamped back into `[lo, hi]`, so the iteration cannot
/// escape the domain even when `g` overshoots. Damping below 1 turns many
/// oscillating maps into contractions; the equilibrium fallback solver uses
/// this for the per-process occupancy fixed point `S = G(APS(S) · T)`.
///
/// # Errors
///
/// - [`MathError::InvalidArgument`] if the bounds or options are malformed.
/// - [`MathError::NonFinite`] if `g` returns NaN/infinity at any iterate.
/// - [`MathError::NoConvergence`] if the budget runs out first.
pub fn fixed_point<F: FnMut(f64) -> f64>(
    g: F,
    x0: f64,
    lo: f64,
    hi: f64,
    opts: FixedPointOptions,
) -> Result<FixedPointSolution, MathError> {
    fixed_point_cancellable(g, x0, lo, hi, opts, &CancelToken::never())
}

/// [`fixed_point`] with a cooperative cancellation point at the top of
/// every iteration.
///
/// # Errors
///
/// Everything [`fixed_point`] returns, plus [`MathError::Cancelled`] once
/// `cancel` fires.
pub fn fixed_point_cancellable<F: FnMut(f64) -> f64>(
    mut g: F,
    x0: f64,
    lo: f64,
    hi: f64,
    opts: FixedPointOptions,
    cancel: &CancelToken,
) -> Result<FixedPointSolution, MathError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(MathError::InvalidArgument(format!("fixed-point bounds [{lo}, {hi}]")));
    }
    if !(opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(MathError::InvalidArgument(format!("damping {} not in (0, 1]", opts.damping)));
    }
    if !x0.is_finite() {
        return Err(MathError::NonFinite("fixed-point starting value".into()));
    }
    let mut x = x0.clamp(lo, hi);
    let mut residual = f64::INFINITY;
    for iter in 0..opts.max_iter {
        cancel.check()?;
        let gx = g(x);
        if !gx.is_finite() {
            return Err(MathError::NonFinite(format!("g({x}) at fixed-point iteration {iter}")));
        }
        residual = (gx - x).abs();
        if residual <= opts.tol {
            return Ok(FixedPointSolution { x, residual, iterations: iter });
        }
        x = (x + opts.damping * (gx - x)).clamp(lo, hi);
    }
    Err(MathError::NoConvergence { iterations: opts.max_iter, residual })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, BisectOptions::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, BisectOptions::default()).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, BisectOptions::default()).unwrap(), 1.0);
    }

    #[test]
    fn rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, BisectOptions::default()).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, BisectOptions::default()).is_err());
        assert!(bisect(|x| x, f64::NAN, 1.0, BisectOptions::default()).is_err());
    }

    #[test]
    fn decreasing_function() {
        let r = bisect(|x| 1.0 - x, 0.0, 5.0, BisectOptions::default()).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_kinked_function() {
        // Piecewise-linear with a kink, like an MPA curve.
        let f = |x: f64| if x < 2.0 { 3.0 - x } else { 5.0 - 2.0 * x };
        let r = bisect(f, 0.0, 10.0, BisectOptions::default()).unwrap();
        assert!((r - 2.5).abs() < 1e-9);
    }

    #[test]
    fn expanding_bracket_finds_distant_root() {
        let r = bisect_expanding(|x| x - 1000.0, 0.0, 1.0, 1e9, BisectOptions::default()).unwrap();
        assert!((r - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn expanding_bracket_saturates_at_cap() {
        // f never crosses zero below the cap -> cap returned.
        let r = bisect_expanding(|x| x - 100.0, 0.0, 1.0, 50.0, BisectOptions::default()).unwrap();
        assert_eq!(r, 50.0);
    }

    #[test]
    fn fixed_point_converges_on_contraction() {
        // x = cos(x) has the Dottie number as its unique fixed point.
        let sol = fixed_point(|x| x.cos(), 1.0, 0.0, 2.0, FixedPointOptions::default()).unwrap();
        assert!((sol.x - 0.739_085_13).abs() < 1e-6, "{sol:?}");
        assert!(sol.residual <= 1e-9);
    }

    #[test]
    fn fixed_point_damping_tames_oscillation() {
        // x = 4 - x oscillates forever undamped; damping finds x = 2.
        let opts = FixedPointOptions { damping: 0.5, ..Default::default() };
        let sol = fixed_point(|x| 4.0 - x, 0.0, 0.0, 10.0, opts).unwrap();
        assert!((sol.x - 2.0).abs() < 1e-8, "{sol:?}");
    }

    #[test]
    fn fixed_point_respects_budget() {
        let opts = FixedPointOptions { max_iter: 3, damping: 1e-3, ..Default::default() };
        let r = fixed_point(|x| 4.0 - x, 0.0, 0.0, 10.0, opts);
        assert!(matches!(r, Err(MathError::NoConvergence { iterations: 3, .. })), "{r:?}");
    }

    #[test]
    fn fixed_point_nan_map_is_typed_error() {
        let r = fixed_point(|_| f64::NAN, 1.0, 0.0, 2.0, FixedPointOptions::default());
        assert!(matches!(r, Err(MathError::NonFinite(_))), "{r:?}");
    }

    #[test]
    fn fixed_point_rejects_bad_inputs() {
        let opts = FixedPointOptions::default();
        assert!(fixed_point(|x| x, 1.0, 2.0, 0.0, opts).is_err());
        assert!(fixed_point(|x| x, f64::NAN, 0.0, 2.0, opts).is_err());
        let bad = FixedPointOptions { damping: 0.0, ..opts };
        assert!(fixed_point(|x| x, 1.0, 0.0, 2.0, bad).is_err());
    }

    #[test]
    fn cancelled_token_stops_every_solver() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let fired = CancelToken::flag(Arc::new(AtomicBool::new(true)));
        let b = bisect_cancellable(|x| x * x - 2.0, 0.0, 2.0, BisectOptions::default(), &fired);
        assert_eq!(b.unwrap_err(), MathError::Cancelled);
        let e = bisect_expanding_cancellable(
            |x| x - 1000.0,
            0.0,
            1.0,
            1e9,
            BisectOptions::default(),
            &fired,
        );
        assert_eq!(e.unwrap_err(), MathError::Cancelled);
        let f = fixed_point_cancellable(
            |x| x.cos(),
            1.0,
            0.0,
            2.0,
            FixedPointOptions::default(),
            &fired,
        );
        assert_eq!(f.unwrap_err(), MathError::Cancelled);
    }

    #[test]
    fn never_token_is_bit_exact_with_plain_solvers() {
        let never = CancelToken::never();
        let plain = bisect(|x| x * x - 2.0, 0.0, 2.0, BisectOptions::default()).unwrap();
        let cancl = bisect_cancellable(|x| x * x - 2.0, 0.0, 2.0, BisectOptions::default(), &never)
            .unwrap();
        assert_eq!(plain.to_bits(), cancl.to_bits());
        let p = fixed_point(|x| x.cos(), 1.0, 0.0, 2.0, FixedPointOptions::default()).unwrap();
        let c = fixed_point_cancellable(
            |x| x.cos(),
            1.0,
            0.0,
            2.0,
            FixedPointOptions::default(),
            &never,
        )
        .unwrap();
        assert_eq!(p.x.to_bits(), c.x.to_bits());
        assert_eq!(p.iterations, c.iterations);
    }

    #[test]
    fn seeded_bisection_is_bit_exact_with_plain() {
        let f = |x: f64| x * x - 2.0;
        let plain = bisect(f, 0.0, 2.0, BisectOptions::default()).unwrap();
        let seeded = bisect_seeded_cancellable(
            f,
            0.0,
            2.0,
            f(0.0),
            f(2.0),
            BisectOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(plain.to_bits(), seeded.to_bits());
        // Endpoint roots and bad brackets behave like the plain entry too.
        let seeded_root = bisect_seeded_cancellable(
            |x| x,
            0.0,
            1.0,
            0.0,
            1.0,
            BisectOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(seeded_root, 0.0);
        let bad = bisect_seeded_cancellable(
            |x| x * x + 1.0,
            -1.0,
            1.0,
            2.0,
            2.0,
            BisectOptions::default(),
            &CancelToken::never(),
        );
        assert!(matches!(bad, Err(MathError::InvalidBracket { .. })), "{bad:?}");
    }

    #[test]
    fn tight_tolerance_respected() {
        let opts = BisectOptions { x_tol: 1e-14, f_tol: 0.0, max_iter: 500 };
        let r = bisect(|x| (x - std::f64::consts::PI).powi(3), 0.0, 10.0, opts).unwrap();
        assert!((r - std::f64::consts::PI).abs() < 1e-4);
    }
}
