//! Damped multivariate Newton–Raphson with a finite-difference Jacobian.
//!
//! The paper solves the equilibrium system of Eq. 1 + Eq. 7 with
//! Newton–Raphson; the functions involved (`G⁻¹`, MPA curves) are available
//! only as monotone tabulated curves, so the Jacobian is approximated by
//! forward differences. A backtracking line search keeps the iteration from
//! overshooting the feasible region.

use crate::decomp::Qr;
use crate::matrix::{norm_inf, Matrix};
use crate::sync::CancelToken;
use crate::MathError;

/// Options controlling a Newton–Raphson solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence tolerance on the residual infinity norm.
    pub tol: f64,
    /// Maximum number of Newton iterations.
    pub max_iter: usize,
    /// Relative step used for the forward-difference Jacobian.
    pub fd_step: f64,
    /// Maximum number of halvings in the backtracking line search.
    pub max_backtrack: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions { tol: 1e-9, max_iter: 100, fd_step: 1e-6, max_backtrack: 30 }
    }
}

/// Result of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Infinity norm of the residual at `x`.
    pub residual: f64,
    /// Newton iterations performed.
    pub iterations: usize,
}

/// Solves `f(x) = 0` for a vector-valued `f` starting from `x0`.
///
/// `clamp` is applied to every candidate iterate before evaluating `f`; use
/// it to keep iterates inside the domain (the equilibrium solver clamps
/// effective cache sizes to `[min_way, A]`).
///
/// # Errors
///
/// - [`MathError::InvalidArgument`] if `x0` is empty or `f(x0)` has a
///   different length than `x0`.
/// - [`MathError::NonFinite`] if the starting point or `f(x0)` contains NaN
///   or infinity, or a Jacobian column evaluates to a non-finite value.
/// - [`MathError::Singular`] if the Jacobian becomes numerically singular.
/// - [`MathError::NoConvergence`] if the tolerance is not reached within
///   `max_iter` iterations.
///
/// # Examples
///
/// ```
/// use mathkit::newton::{newton_raphson, NewtonOptions};
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// // x^2 + y^2 = 2, x = y  ->  (1, 1)
/// let sol = newton_raphson(
///     |v| vec![v[0] * v[0] + v[1] * v[1] - 2.0, v[0] - v[1]],
///     &[2.0, 0.5],
///     |v| v.to_vec(),
///     NewtonOptions::default(),
/// )?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-8);
/// assert!((sol.x[1] - 1.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn newton_raphson<F, C>(
    f: F,
    x0: &[f64],
    clamp: C,
    opts: NewtonOptions,
) -> Result<NewtonSolution, MathError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
    C: FnMut(&[f64]) -> Vec<f64>,
{
    newton_raphson_cancellable(f, x0, clamp, opts, &CancelToken::never())
}

/// [`newton_raphson`] with a cooperative cancellation point at the top of
/// every Newton iteration.
///
/// The token is polled once per iteration (not per function evaluation),
/// so cancellation latency is bounded by one Jacobian build plus one line
/// search — milliseconds for the equilibrium systems this crate serves.
///
/// # Errors
///
/// Everything [`newton_raphson`] returns, plus [`MathError::Cancelled`]
/// once `cancel` fires.
pub fn newton_raphson_cancellable<F, C>(
    f: F,
    x0: &[f64],
    clamp: C,
    opts: NewtonOptions,
    cancel: &CancelToken,
) -> Result<NewtonSolution, MathError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
    C: FnMut(&[f64]) -> Vec<f64>,
{
    newton_raphson_workspace_cancellable(
        f,
        x0,
        clamp,
        opts,
        cancel,
        &mut NewtonWorkspace::default(),
    )
}

/// Reusable buffers for repeated Newton solves of same-shaped systems.
///
/// Batched equilibrium solves run many small `(k+1)`-dimensional systems
/// back to back; holding the Jacobian and probe vectors here turns the
/// per-iteration `Matrix` allocation into a one-time cost per batch chunk.
/// A workspace carries no numeric state between solves — every buffer is
/// fully overwritten before it is read — so solves through a shared
/// workspace are bit-identical to solves through a fresh one.
#[derive(Debug, Default)]
pub struct NewtonWorkspace {
    jac: Option<Matrix>,
    probe: Vec<f64>,
    neg_fx: Vec<f64>,
}

/// [`newton_raphson_cancellable`] with caller-owned scratch buffers.
///
/// # Errors
///
/// Everything [`newton_raphson_cancellable`] returns.
pub fn newton_raphson_workspace_cancellable<F, C>(
    mut f: F,
    x0: &[f64],
    mut clamp: C,
    opts: NewtonOptions,
    cancel: &CancelToken,
    ws: &mut NewtonWorkspace,
) -> Result<NewtonSolution, MathError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
    C: FnMut(&[f64]) -> Vec<f64>,
{
    let n = x0.len();
    if n == 0 {
        return Err(MathError::InvalidArgument("empty initial guess".into()));
    }
    let mut x = clamp(x0);
    if x.iter().any(|v| !v.is_finite()) {
        return Err(MathError::NonFinite("newton starting point".into()));
    }
    let mut fx = f(&x);
    if fx.len() != n {
        return Err(MathError::InvalidArgument(format!(
            "f returned {} components for {} unknowns",
            fx.len(),
            n
        )));
    }
    if fx.iter().any(|v| !v.is_finite()) {
        return Err(MathError::NonFinite("residual at newton starting point".into()));
    }
    let mut res = norm_inf(&fx);

    for iter in 0..opts.max_iter {
        cancel.check()?;
        if res <= opts.tol {
            return Ok(NewtonSolution { x, residual: res, iterations: iter });
        }

        // Forward-difference Jacobian, column by column, built into the
        // workspace matrix (every entry is overwritten before the factor).
        let jac = match &mut ws.jac {
            Some(m) if m.rows() == n && m.cols() == n => m,
            slot => slot.insert(Matrix::zeros(n, n)),
        };
        for j in 0..n {
            let h = opts.fd_step * x[j].abs().max(1e-3);
            ws.probe.clear();
            ws.probe.extend_from_slice(&x);
            ws.probe[j] += h;
            let xp = clamp(&ws.probe);
            let hj = xp[j] - x[j];
            if hj == 0.0 {
                // Clamp pinned this coordinate against its bound; probe the
                // other direction instead.
                ws.probe.clear();
                ws.probe.extend_from_slice(&x);
                ws.probe[j] -= h;
                let xm = clamp(&ws.probe);
                let hm = x[j] - xm[j];
                if hm == 0.0 {
                    return Err(MathError::Singular);
                }
                let fm = f(&xm);
                for i in 0..n {
                    jac[(i, j)] = (fx[i] - fm[i]) / hm;
                }
            } else {
                let fp = f(&xp);
                for i in 0..n {
                    jac[(i, j)] = (fp[i] - fx[i]) / hj;
                }
            }
        }

        if (0..n).any(|i| (0..n).any(|j| !jac[(i, j)].is_finite())) {
            return Err(MathError::NonFinite(format!("jacobian at iteration {iter}")));
        }

        let qr = Qr::factor(jac)?;
        ws.neg_fx.clear();
        ws.neg_fx.extend(fx.iter().map(|v| -v));
        let step = qr.solve_least_squares(&ws.neg_fx)?;

        // Backtracking line search on the residual norm.
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..=opts.max_backtrack {
            let cand: Vec<f64> = x.iter().zip(&step).map(|(xi, si)| xi + t * si).collect();
            let cand = clamp(&cand);
            let fc = f(&cand);
            let rc = norm_inf(&fc);
            // Check the components, not just the norm: norm_inf folds with
            // `max`, which silently drops NaN entries.
            if fc.iter().all(|v| v.is_finite()) && rc < res {
                x = cand;
                fx = fc;
                res = rc;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            // Stuck: no descent direction even with tiny steps. Report the
            // best point found so far if it is reasonably converged.
            if res <= opts.tol * 100.0 {
                return Ok(NewtonSolution { x, residual: res, iterations: iter + 1 });
            }
            return Err(MathError::NoConvergence { iterations: iter + 1, residual: res });
        }
    }

    if res <= opts.tol {
        Ok(NewtonSolution { x, residual: res, iterations: opts.max_iter })
    } else {
        Err(MathError::NoConvergence { iterations: opts.max_iter, residual: res })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_clamp(v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    #[test]
    fn scalar_quadratic() {
        let sol =
            newton_raphson(|v| vec![v[0] * v[0] - 4.0], &[3.0], no_clamp, NewtonOptions::default())
                .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!(sol.residual <= 1e-9);
    }

    #[test]
    fn two_dimensional_circle_line() {
        let sol = newton_raphson(
            |v| vec![v[0] * v[0] + v[1] * v[1] - 25.0, v[0] - 2.0 * v[1] + 5.0],
            &[1.0, 1.0],
            no_clamp,
            NewtonOptions::default(),
        )
        .unwrap();
        // Solutions: (3, 4) and (-5, 0); from (1,1) it should find (3,4).
        assert!((sol.x[0] - 3.0).abs() < 1e-7, "{:?}", sol.x);
        assert!((sol.x[1] - 4.0).abs() < 1e-7, "{:?}", sol.x);
    }

    #[test]
    fn clamped_domain_respected() {
        // Root of x^2 - 4 with x clamped to [0.1, 10]: finds +2 even when the
        // start lies outside the domain (the clamp pins it to 0.1 first).
        let clamp = |v: &[f64]| vec![v[0].clamp(0.1, 10.0)];
        let sol =
            newton_raphson(|v| vec![v[0] * v[0] - 4.0], &[-5.0], clamp, NewtonOptions::default())
                .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn linear_system_single_iteration_region() {
        let sol = newton_raphson(
            |v| vec![2.0 * v[0] + v[1] - 5.0, v[0] + 3.0 * v[1] - 10.0],
            &[0.0, 0.0],
            no_clamp,
            NewtonOptions::default(),
        )
        .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 3.0).abs() < 1e-8);
        assert!(sol.iterations <= 3);
    }

    #[test]
    fn no_root_reports_no_convergence() {
        let r = newton_raphson(
            |v| vec![v[0] * v[0] + 1.0],
            &[1.0],
            no_clamp,
            NewtonOptions { max_iter: 25, ..Default::default() },
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_guess_rejected() {
        assert!(matches!(
            newton_raphson(|_| vec![], &[], no_clamp, NewtonOptions::default()),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(matches!(
            newton_raphson(|_| vec![0.0, 0.0], &[1.0], no_clamp, NewtonOptions::default()),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn nan_residual_is_typed_error() {
        let r = newton_raphson(
            |v| vec![(v[0] - 2.0).sqrt()], // NaN for v[0] < 2
            &[0.0],
            no_clamp,
            NewtonOptions::default(),
        );
        assert!(matches!(r, Err(MathError::NonFinite(_))), "{r:?}");
    }

    #[test]
    fn nan_start_is_typed_error() {
        let r =
            newton_raphson(|v| vec![v[0] - 1.0], &[f64::NAN], no_clamp, NewtonOptions::default());
        assert!(matches!(r, Err(MathError::NonFinite(_))), "{r:?}");
    }

    #[test]
    fn pre_fired_token_cancels_before_first_iteration() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let r = newton_raphson_cancellable(
            |v| vec![v[0] * v[0] - 4.0],
            &[3.0],
            no_clamp,
            NewtonOptions::default(),
            &CancelToken::flag(flag),
        );
        assert_eq!(r.unwrap_err(), MathError::Cancelled);
    }

    #[test]
    fn never_token_matches_plain_solve_bit_exactly() {
        let plain =
            newton_raphson(|v| vec![v[0] * v[0] - 4.0], &[3.0], no_clamp, NewtonOptions::default())
                .unwrap();
        let cancellable = newton_raphson_cancellable(
            |v| vec![v[0] * v[0] - 4.0],
            &[3.0],
            no_clamp,
            NewtonOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(plain.x[0].to_bits(), cancellable.x[0].to_bits());
        assert_eq!(plain.iterations, cancellable.iterations);
    }

    #[test]
    fn shared_workspace_is_bit_exact_across_solves() {
        // Two different systems through one workspace must match fresh
        // solves bit for bit — the workspace carries no numeric state.
        let mut ws = NewtonWorkspace::default();
        let circle = |v: &[f64]| vec![v[0] * v[0] + v[1] * v[1] - 25.0, v[0] - 2.0 * v[1] + 5.0];
        let quad = |v: &[f64]| vec![v[0] * v[0] - 4.0];
        let never = CancelToken::never();
        let a = newton_raphson_workspace_cancellable(
            circle,
            &[1.0, 1.0],
            no_clamp,
            NewtonOptions::default(),
            &never,
            &mut ws,
        )
        .unwrap();
        let b = newton_raphson_workspace_cancellable(
            quad,
            &[3.0],
            no_clamp,
            NewtonOptions::default(),
            &never,
            &mut ws,
        )
        .unwrap();
        let fresh_a =
            newton_raphson(circle, &[1.0, 1.0], no_clamp, NewtonOptions::default()).unwrap();
        let fresh_b = newton_raphson(quad, &[3.0], no_clamp, NewtonOptions::default()).unwrap();
        assert_eq!(a.x[0].to_bits(), fresh_a.x[0].to_bits());
        assert_eq!(a.x[1].to_bits(), fresh_a.x[1].to_bits());
        assert_eq!(a.iterations, fresh_a.iterations);
        assert_eq!(b.x[0].to_bits(), fresh_b.x[0].to_bits());
        assert_eq!(b.iterations, fresh_b.iterations);
    }

    #[test]
    fn nonsmooth_but_monotone_converges() {
        // |x|^1.5 sign(x) - 1 = 0 -> x = 1; derivative is continuous but not
        // Lipschitz at 0, like tabulated MPA curves.
        let f = |v: &[f64]| vec![v[0].abs().powf(1.5) * v[0].signum() - 1.0];
        let sol = newton_raphson(f, &[0.1], no_clamp, NewtonOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-7);
    }
}
