//! Deterministic bounded-worker parallelism on std threads.
//!
//! The workspace's dependencies are offline shims, so there is no rayon;
//! this module provides the small slice of it the model pipeline needs:
//! an order-preserving [`par_map`] over owned items, built on
//! [`std::thread::scope`] with a shared atomic cursor.
//!
//! # Determinism contract
//!
//! Parallel execution must be **bit-identical** to sequential execution.
//! Two rules make that hold by construction:
//!
//! 1. Results are written into a pre-sized slot table indexed by input
//!    position, so output order never depends on completion order.
//! 2. Any randomness a task needs must be derived from the task *index*
//!    (see [`derive_seed`]), never from shared mutable state, so the
//!    stream a task sees is independent of which worker ran it and when.
//!
//! The task closure receives `(index, item)` precisely so callers can
//! follow rule 2.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count for `workers = 0`
/// ("auto") callers: `MPMC_WORKERS=4`.
pub const WORKERS_ENV: &str = "MPMC_WORKERS";

/// Resolves a requested worker count to a concrete one.
///
/// `0` means "auto": the `MPMC_WORKERS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Any positive request is returned unchanged.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Derives the seed for task `index` from a master seed.
///
/// SplitMix64 finalization over `master + (index + 1) * golden_gamma`:
/// cheap, stateless, and well-mixed, so per-task RNG streams are
/// decorrelated and depend only on `(master, index)` — never on thread
/// scheduling. `index + 1` keeps task 0 from reusing the raw master seed.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` with at most `workers` OS threads, preserving
/// input order. `workers = 0` means auto (see [`resolve_workers`]);
/// `workers = 1` (or a single item) runs inline on the caller's thread
/// with no thread spawns at all.
///
/// `f` is called as `f(index, item)`. Output slot `i` always holds
/// `f(i, items[i])`, so the result is identical to
/// `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// regardless of worker count.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated to the caller after
/// the scope unwinds.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = resolve_workers(workers).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let n = items.len();
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    thread::scope(|scope| {
        for _ in 0..workers {
            // lint:allow(cancellation_propagation) -- bounded: the cursor hands out each of n task indices once, then the worker exits
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Poison-tolerant: a panic in one worker must not turn
                // into a second panic here while the scope unwinds.
                let item = tasks[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    // lint:allow(panic_free) -- cursor fetch_add hands each index to exactly one worker
                    .expect("task taken twice");
                let out = f(i, item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                // lint:allow(panic_free) -- scope join proves every worker filled its slot; a mid-task panic propagates before this line
                .expect("worker left an empty slot")
        })
        .collect()
}

/// Fallible [`par_map`]: maps `f` over `items` and returns either every
/// result in input order or the error from the **lowest-index** failing
/// task.
///
/// All tasks run to completion even if an earlier one fails, so the
/// reported error is deterministic (sequential execution would surface
/// the same one) and does not depend on which worker hit it first.
pub fn try_par_map<T, R, E, F>(items: Vec<T>, workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let outcomes = par_map(items, workers, f);
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => return Err(e),
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = par_map(items.clone(), workers, |_, x| x * 3 + 1);
            assert_eq!(got, seq, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_passes_matching_index() {
        let items = vec![10usize, 20, 30, 40, 50];
        let got = par_map(items, 4, |i, x| (i, x));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(empty, 8, |_, x| x).is_empty());
        assert_eq!(par_map(vec![7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 2, 8] {
            let got: Result<Vec<usize>, usize> =
                try_par_map(items.clone(), workers, |i, x| if x % 7 == 3 { Err(i) } else { Ok(x) });
            assert_eq!(got, Err(3), "workers = {workers}");
        }
    }

    #[test]
    fn try_par_map_ok_matches_sequential() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let got: Result<Vec<u64>, ()> = try_par_map(items, 8, |_, x| Ok(x * x));
        assert_eq!(got.unwrap(), seq);
    }

    #[test]
    fn derive_seed_is_pure_and_spread() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Not the raw master seed either.
        assert_ne!(derive_seed(42, 0), 42);
    }

    #[test]
    fn resolve_workers_positive_passthrough() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn par_map_heavy_tasks_stay_ordered() {
        // Tasks with wildly unequal cost still land in order.
        let items: Vec<u64> = (0..32).rev().collect();
        let got = par_map(items.clone(), 8, |_, x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            (x, acc)
        });
        for (slot, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, items[slot]);
        }
    }
}
