//! Monotone piecewise-linear interpolation and inversion.
//!
//! The performance model manipulates curves that exist only as tables:
//! MPA as a function of effective cache size, and the occupancy function
//! `G(n)`. Both are monotone, so a piecewise-linear interpolant with a
//! monotone-aware inverse is exactly what the solvers need.

use crate::MathError;

/// A piecewise-linear function through a strictly increasing set of knots.
///
/// The function extrapolates flat beyond its endpoints (curve values clamp
/// to the first/last knot), matching the saturating behaviour of MPA and
/// occupancy curves.
///
/// # Examples
///
/// ```
/// use mathkit::interp::PiecewiseLinear;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 12.0])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-1.0), 0.0);  // clamped
/// assert_eq!(f.eval(5.0), 12.0);  // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Whether `ys` is non-decreasing (within the inversion tolerance),
    /// decided once at construction. [`PiecewiseLinear::inverse_monotone`]
    /// sits in the equilibrium solvers' innermost loop; re-validating
    /// monotonicity with an O(n) sweep on every call dominated the solve
    /// cost, so the answer is cached here.
    nondecreasing: bool,
}

impl PiecewiseLinear {
    /// Builds an interpolant through `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// - [`MathError::DimensionMismatch`] if `xs.len() != ys.len()`.
    /// - [`MathError::InvalidArgument`] if fewer than two knots are given,
    ///   any value is non-finite, or `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, MathError> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} ordinates", xs.len()),
                found: format!("{} ordinates", ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(MathError::InvalidArgument("need at least two knots".into()));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(MathError::InvalidArgument("knots must be finite".into()));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MathError::InvalidArgument("abscissae must be strictly increasing".into()));
        }
        let nondecreasing = !ys.windows(2).any(|w| w[0] > w[1] + 1e-12);
        Ok(PiecewiseLinear { xs, ys, nondecreasing })
    }

    /// Evaluates the interpolant at `x`, clamping outside the knot range.
    /// A NaN input yields NaN rather than a panic, so callers can detect
    /// poisoned values downstream.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing segment. The knots are strictly
        // increasing (checked at construction) and x is not NaN, so
        // total_cmp agrees with the numeric order here.
        let idx = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i, // xs[i-1] < x < xs[i]
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Inverts a (weakly) monotone non-decreasing interpolant: returns the
    /// smallest `x` in the knot range with `eval(x) >= y`.
    ///
    /// If `y` is below the curve's minimum the first knot is returned; if it
    /// is above the maximum, the last knot is returned. This saturating
    /// behaviour mirrors the semantics of `G⁻¹(S)` in the paper: an
    /// occupancy at or beyond the curve's reach maps to the extreme access
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the curve is decreasing
    /// anywhere (inverse undefined).
    pub fn inverse_monotone(&self, y: f64) -> Result<f64, MathError> {
        if !self.nondecreasing {
            return Err(MathError::InvalidArgument(
                "inverse requires a non-decreasing curve".into(),
            ));
        }
        let n = self.xs.len();
        if y <= self.ys[0] {
            return Ok(self.xs[0]);
        }
        if y > self.ys[n - 1] {
            return Ok(self.xs[n - 1]);
        }
        // First segment whose right endpoint reaches y. `ys` is
        // non-decreasing and y is comparable (the guards above weed out
        // NaN), so the partition point is exactly the index the old
        // linear scan found — same index, same interpolation arithmetic,
        // bit-identical result in O(log n).
        let idx = self.ys.partition_point(|&v| v < y).max(1);
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        if y1 == y0 {
            return Ok(x0);
        }
        Ok(x0 + (x1 - x0) * (y - y0) / (y1 - y0))
    }

    /// The knot abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Domain of the interpolant, `(first knot, last knot)`.
    pub fn domain(&self) -> (f64, f64) {
        // lint:allow(panic_free) -- constructor rejects fewer than two knots, so first/last always exist
        (self.xs[0], *self.xs.last().expect("at least two knots"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 2.5]).unwrap()
    }

    #[test]
    fn eval_at_knots_and_between() {
        let f = ramp();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), 2.5);
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(2.0), 2.25);
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let f = ramp();
        assert_eq!(f.eval(-10.0), 0.0);
        assert_eq!(f.eval(10.0), 2.5);
    }

    #[test]
    fn inverse_roundtrip() {
        let f = ramp();
        for &x in &[0.0, 0.25, 0.5, 1.0, 1.7, 2.9, 3.0] {
            let y = f.eval(x);
            let xi = f.inverse_monotone(y).unwrap();
            assert!((f.eval(xi) - y).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn inverse_saturates() {
        let f = ramp();
        assert_eq!(f.inverse_monotone(-1.0).unwrap(), 0.0);
        assert_eq!(f.inverse_monotone(100.0).unwrap(), 3.0);
    }

    #[test]
    fn inverse_of_flat_segment_returns_left_edge() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0]).unwrap();
        assert_eq!(f.inverse_monotone(1.0).unwrap(), 1.0);
    }

    #[test]
    fn inverse_rejects_decreasing() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(f.inverse_monotone(0.5).is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(PiecewiseLinear::new(vec![0.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn domain_reported() {
        assert_eq!(ramp().domain(), (0.0, 3.0));
    }
}
