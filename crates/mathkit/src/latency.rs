//! A fixed-bucket latency histogram with lock-free recording.
//!
//! Long-running services need latency percentiles without unbounded
//! sample buffers. This histogram uses 64 power-of-two buckets (bucket
//! `i` covers durations whose highest set bit is `i`), each an
//! [`AtomicU64`], so `record` is a single relaxed increment from any
//! thread and memory use is constant. Percentiles are read from the
//! cumulative bucket counts and reported as the bucket's upper bound —
//! at most 2x the true value, which is plenty for service dashboards.
//!
//! # Examples
//!
//! ```
//! use mathkit::latency::LatencyHistogram;
//!
//! let h = LatencyHistogram::new();
//! for us in [120u64, 130, 140, 9000] {
//!     h.record(us * 1_000); // nanoseconds
//! }
//! assert_eq!(h.count(), 4);
//! assert!(h.percentile(0.5) >= 120_000);
//! assert!(h.percentile(1.0) >= 9_000_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (covers the full `u64` range).
pub const BUCKETS: usize = 64;

/// A concurrent fixed-memory histogram of durations in nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// The bucket index for a duration: the position of its highest set bit
/// (0 for a zero-duration sample).
fn bucket_of(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration of `nanos` nanoseconds. Lock-free; safe to
    /// call from any number of threads.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, reported as the
    /// upper bound of the bucket holding that rank. Returns 0 when no
    /// samples were recorded. `q` outside `[0, 1]` is clamped.
    pub fn percentile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested quantile, 1-based; q = 0 maps to rank 1.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i);
            }
        }
        upper_bound(BUCKETS - 1)
    }

    /// A copy of the raw bucket counts (diagnostics / serialization).
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(upper_bound(0), 1);
        assert_eq!(upper_bound(1), 3);
        assert_eq!(upper_bound(63), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn percentiles_track_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 us), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // p50 lands in the ~1 us bucket; p99 in the ~1 ms bucket. Bucket
        // upper bounds are at most 2x the sample.
        assert!((1_000..4_000).contains(&p50), "p50 = {p50}");
        assert!((1_000_000..4_000_000).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(0.0) >= 1_000);
        assert_eq!(h.percentile(1.0), p99);
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(7.0), h.percentile(1.0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record((t * 1000 + i) + 1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().iter().sum::<u64>(), 4000);
    }
}
