//! A three-layer sigmoid-activation feed-forward neural network.
//!
//! §4.1 of the paper evaluates a "three-layer sigmoid activation function
//! neural network" as an alternative to MVLR for the power model and finds
//! comparable accuracy (96.8 % vs. 96.2 %), choosing MVLR for simplicity.
//! This module reproduces that comparator: input layer → one sigmoid hidden
//! layer → linear output, trained by mini-batch stochastic gradient descent
//! on mean-squared error. Inputs and the target are standardized internally.

use crate::MathError;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyperparameters for [`SigmoidNetwork::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Number of hidden units.
    pub hidden: usize,
    /// Learning rate for SGD.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions { hidden: 8, learning_rate: 0.05, epochs: 300, batch: 16, seed: 0x5eed }
    }
}

/// A trained three-layer (input, sigmoid hidden, linear output) network for
/// scalar regression.
///
/// # Examples
///
/// ```
/// use mathkit::nn::{SigmoidNetwork, TrainOptions};
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// // Learn y = x0 + x1 on a small grid.
/// let xs: Vec<Vec<f64>> = (0..25)
///     .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
/// let net = SigmoidNetwork::train(&xs, &ys, TrainOptions::default())?;
/// assert!((net.predict(&[2.0, 2.0]) - 4.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SigmoidNetwork {
    // w1[h][i]: input i -> hidden h; b1[h]; w2[h]: hidden h -> output; b2.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl SigmoidNetwork {
    /// Trains a network on `(xs, ys)` with the given hyperparameters.
    ///
    /// # Errors
    ///
    /// - [`MathError::DimensionMismatch`] if `xs` and `ys` differ in length
    ///   or predictor rows are ragged.
    /// - [`MathError::InsufficientData`] if fewer than two observations are
    ///   provided.
    /// - [`MathError::InvalidArgument`] if `hidden == 0` or `batch == 0`.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], opts: TrainOptions) -> Result<Self, MathError> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} responses", xs.len()),
                found: format!("{} responses", ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(MathError::InsufficientData { needed: 2, got: xs.len() });
        }
        if opts.hidden == 0 {
            return Err(MathError::InvalidArgument("hidden layer must be non-empty".into()));
        }
        if opts.batch == 0 {
            return Err(MathError::InvalidArgument("batch size must be positive".into()));
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(MathError::InvalidArgument("predictors must be non-empty".into()));
        }
        for (i, x) in xs.iter().enumerate() {
            if x.len() != dim {
                return Err(MathError::DimensionMismatch {
                    expected: format!("predictor of length {dim}"),
                    found: format!("predictor {i} of length {}", x.len()),
                });
            }
        }

        // Standardization statistics.
        let n = xs.len() as f64;
        let mut x_mean = vec![0.0; dim];
        let mut x_std = vec![0.0; dim];
        for x in xs {
            for (j, &v) in x.iter().enumerate() {
                x_mean[j] += v;
            }
        }
        for m in &mut x_mean {
            *m /= n;
        }
        for x in xs {
            for (j, &v) in x.iter().enumerate() {
                x_std[j] += (v - x_mean[j]).powi(2);
            }
        }
        for s in &mut x_std {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0; // constant column: map to 0 after centering
            }
        }
        let y_mean = ys.iter().sum::<f64>() / n;
        let mut y_std = (ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n).sqrt();
        if y_std == 0.0 {
            y_std = 1.0;
        }

        let zs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| x.iter().enumerate().map(|(j, &v)| (v - x_mean[j]) / x_std[j]).collect())
            .collect();
        let ts: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        // Xavier-ish initialization.
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let limit = (6.0 / (dim + opts.hidden) as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..opts.hidden)
            .map(|_| (0..dim).map(|_| rng.gen_range(-limit..limit)).collect())
            .collect();
        let mut b1 = vec![0.0; opts.hidden];
        let mut w2: Vec<f64> = (0..opts.hidden).map(|_| rng.gen_range(-limit..limit)).collect();
        let mut b2 = 0.0;

        let mut order: Vec<usize> = (0..zs.len()).collect();
        let mut hidden_out = vec![0.0; opts.hidden];

        for _epoch in 0..opts.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(opts.batch) {
                let scale = opts.learning_rate / chunk.len() as f64;
                // Accumulate gradients over the mini-batch.
                let mut gw1 = vec![vec![0.0; dim]; opts.hidden];
                let mut gb1 = vec![0.0; opts.hidden];
                let mut gw2 = vec![0.0; opts.hidden];
                let mut gb2 = 0.0;
                for &idx in chunk {
                    let z = &zs[idx];
                    for h in 0..opts.hidden {
                        let mut a = b1[h];
                        for j in 0..dim {
                            a += w1[h][j] * z[j];
                        }
                        hidden_out[h] = sigmoid(a);
                    }
                    let mut pred = b2;
                    for h in 0..opts.hidden {
                        pred += w2[h] * hidden_out[h];
                    }
                    let err = pred - ts[idx]; // d(MSE/2)/d(pred)
                    gb2 += err;
                    for h in 0..opts.hidden {
                        gw2[h] += err * hidden_out[h];
                        let dh = err * w2[h] * hidden_out[h] * (1.0 - hidden_out[h]);
                        gb1[h] += dh;
                        for j in 0..dim {
                            gw1[h][j] += dh * z[j];
                        }
                    }
                }
                b2 -= scale * gb2;
                for h in 0..opts.hidden {
                    w2[h] -= scale * gw2[h];
                    b1[h] -= scale * gb1[h];
                    for j in 0..dim {
                        w1[h][j] -= scale * gw1[h][j];
                    }
                }
            }
        }

        Ok(SigmoidNetwork { w1, b1, w2, b2, x_mean, x_std, y_mean, y_std })
    }

    /// Predicts the response for predictor vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[allow(clippy::needless_range_loop)] // weight-matrix indexing mirrors the math
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.x_mean.len(),
            "predictor length {} does not match network input size {}",
            x.len(),
            self.x_mean.len()
        );
        let z: Vec<f64> =
            x.iter().enumerate().map(|(j, &v)| (v - self.x_mean[j]) / self.x_std[j]).collect();
        let mut out = self.b2;
        for h in 0..self.w2.len() {
            let mut a = self.b1[h];
            for j in 0..z.len() {
                a += self.w1[h][j] * z[j];
            }
            out += self.w2[h] * sigmoid(a);
        }
        out * self.y_std + self.y_mean
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.w2.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.x_mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 10) as f64, (i / 10) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 1.0).collect();
        let net = SigmoidNetwork::train(
            &xs,
            &ys,
            TrainOptions { epochs: 800, ..TrainOptions::default() },
        )
        .unwrap();
        let mut worst: f64 = 0.0;
        for (x, &y) in xs.iter().zip(&ys) {
            worst = worst.max((net.predict(x) - y).abs());
        }
        assert!(worst < 1.5, "worst error {worst}");
    }

    #[test]
    fn learns_mildly_nonlinear_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.5).sin() * 3.0 + x[0]).collect();
        let net = SigmoidNetwork::train(
            &xs,
            &ys,
            TrainOptions { hidden: 12, epochs: 1500, learning_rate: 0.1, ..Default::default() },
        )
        .unwrap();
        let mse: f64 = xs.iter().zip(&ys).map(|(x, &y)| (net.predict(x) - y).powi(2)).sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0).collect();
        let o = TrainOptions { epochs: 50, ..Default::default() };
        let a = SigmoidNetwork::train(&xs, &ys, o).unwrap();
        let b = SigmoidNetwork::train(&xs, &ys, o).unwrap();
        assert_eq!(a.predict(&[7.0]), b.predict(&[7.0]));
    }

    #[test]
    fn validation_errors() {
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(SigmoidNetwork::train(&xs, &[1.0], TrainOptions::default()).is_err());
        assert!(SigmoidNetwork::train(&xs[..1], &[1.0], TrainOptions::default()).is_err());
        assert!(SigmoidNetwork::train(
            &xs,
            &[1.0, 2.0],
            TrainOptions { hidden: 0, ..Default::default() }
        )
        .is_err());
        assert!(SigmoidNetwork::train(
            &xs,
            &[1.0, 2.0],
            TrainOptions { batch: 0, ..Default::default() }
        )
        .is_err());
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(SigmoidNetwork::train(&ragged, &[1.0, 2.0], TrainOptions::default()).is_err());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 10];
        let net = SigmoidNetwork::train(&xs, &ys, TrainOptions::default()).unwrap();
        assert!((net.predict(&[3.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn shape_getters() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0 - i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let net = SigmoidNetwork::train(
            &xs,
            &ys,
            TrainOptions { hidden: 4, epochs: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(net.hidden_units(), 4);
        assert_eq!(net.input_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn predict_length_checked() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let net = SigmoidNetwork::train(&xs, &ys, TrainOptions { epochs: 5, ..Default::default() })
            .unwrap();
        net.predict(&[1.0, 2.0]);
    }
}
