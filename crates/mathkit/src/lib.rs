//! Numerical substrate for the `mpmc` workspace.
//!
//! This crate provides the from-scratch numerics that the DAC 2010
//! reproduction needs:
//!
//! - [`matrix`]: small dense row-major matrices and vector helpers.
//! - [`decomp`]: Householder QR factorization and least-squares solving.
//! - [`linreg`]: multi-variable linear regression (the paper's MVLR).
//! - [`newton`]: damped multivariate Newton–Raphson with a numeric Jacobian.
//! - [`roots`]: robust 1-D root bracketing and bisection.
//! - [`nn`]: a three-layer sigmoid-activation neural network (the power
//!   model alternative the paper evaluates and rejects).
//! - [`stats`]: error metrics used throughout the evaluation.
//! - [`interp`]: monotone piecewise-linear interpolation and inversion.
//! - [`parallel`]: deterministic bounded-worker `par_map` on std threads
//!   (order-preserving, with per-task seed derivation).
//! - [`lru`]: a capacity-bounded LRU map with eviction counters.
//! - [`latency`]: a fixed-bucket concurrent latency histogram.
//! - [`sync`]: cooperative cancellation tokens and a bounded counting
//!   semaphore for the serving path's admission control.
//! - [`float`]: the blessed NaN-aware comparison helpers (`mpmc-lint`
//!   forbids raw float `==`/`!=` outside this crate).
//!
//! # Examples
//!
//! Fitting a linear model with [`linreg::LinearRegression`]:
//!
//! ```
//! use mathkit::linreg::LinearRegression;
//!
//! # fn main() -> Result<(), mathkit::MathError> {
//! // y = 1 + 2*x0 + 3*x1
//! let xs = vec![
//!     vec![0.0, 0.0],
//!     vec![1.0, 0.0],
//!     vec![0.0, 1.0],
//!     vec![1.0, 1.0],
//! ];
//! let ys = vec![1.0, 3.0, 4.0, 6.0];
//! let fit = LinearRegression::fit(&xs, &ys)?;
//! assert!((fit.intercept() - 1.0).abs() < 1e-9);
//! assert!((fit.coefficients()[0] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]

pub mod decomp;
pub mod float;
pub mod interp;
pub mod latency;
pub mod linreg;
pub mod lru;
pub mod matrix;
pub mod newton;
pub mod nn;
pub mod parallel;
pub mod roots;
pub mod stats;
pub mod sync;

mod error;

pub use error::MathError;
