//! Small dense row-major matrices and vector helpers.
//!
//! The workspace only needs modest sizes (regression design matrices with a
//! handful of columns, Jacobians with at most a few dozen unknowns), so a
//! simple contiguous `Vec<f64>` representation is both sufficient and easy
//! to audit.

use crate::MathError;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mathkit::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        // lint:allow(panic_free) -- documented panic: a dimension product overflowing usize is a programming error, not input data
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Matrix { rows, cols, data: vec![0.0; len] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the rows have unequal
    /// lengths, and [`MathError::InvalidArgument`] if `rows` is empty or the
    /// first row is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MathError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MathError::InvalidArgument("matrix needs at least one row".into()));
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(MathError::InvalidArgument("matrix needs at least one column".into()));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MathError::DimensionMismatch {
                    expected: format!("row of length {ncols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: nrows, cols: ncols, data })
    }

    /// Builds a matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of bounds for {} columns", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} rows on rhs", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows).map(|r| dot(self.row(r), v)).collect())
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Infinity norm (maximum absolute entry) of a slice; 0 for empty input.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Elementwise `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "subtraction of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + s * b` (axpy).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, MathError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn max_abs() {
        let m = Matrix::from_rows(&[vec![-5.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
