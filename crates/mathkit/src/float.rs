//! Blessed NaN-aware float comparisons.
//!
//! Raw `==`/`!=` on floats is NaN-unsafe — NaN compares unequal to
//! everything, including itself — so `mpmc-lint`'s `nan_safe` rule
//! forbids it outside this crate. These helpers say what a comparison
//! *means* so the NaN behaviour is a documented choice rather than an
//! accident.

/// Whether `x` is exactly `0.0` (positive or negative zero).
///
/// NaN is not zero: a NaN input returns `false` and flows onward, which
/// is the correct behaviour for the "skip the degenerate case" guards
/// this is used in — the NaN then surfaces in the caller's own
/// validation instead of being silently routed down the zero path.
#[inline]
#[must_use]
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0
}

/// Bit-pattern equality: `a` and `b` are the same `f64`, bit for bit.
///
/// This is the right equality for the workspace's bit-exactness
/// invariants (equilibrium results independent of process order, cache
/// hits identical to recomputation): NaN equals NaN of the same
/// payload, and `0.0` differs from `-0.0`.
#[inline]
#[must_use]
pub fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Equality under IEEE 754 `totalOrder` — which coincides with bit
/// equality ([`bits_eq`]), since `totalOrder` also ranks NaN payloads
/// and zero signs. Provided so call sites that order with
/// [`f64::total_cmp`] can test equality in the same vocabulary.
#[inline]
#[must_use]
pub fn total_eq(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_eq()
}

/// Whether `a` and `b` are within `tol` of each other. Any NaN (or a
/// NaN tolerance) returns `false` — approximate equality to NaN is
/// meaningless.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_zero_semantics() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::NAN));
        assert!(!exactly_zero(1e-300));
    }

    #[test]
    fn bits_eq_distinguishes_zero_signs_and_matches_nan() {
        assert!(bits_eq(1.5, 1.5));
        assert!(!bits_eq(0.0, -0.0));
        assert!(bits_eq(f64::NAN, f64::NAN));
        assert!(!bits_eq(f64::NAN, -f64::NAN));
    }

    #[test]
    fn total_eq_matches_bit_equality() {
        assert!(total_eq(f64::NAN, f64::NAN));
        // totalOrder ranks NaN payloads, so payload-differing NaNs differ.
        let payload = f64::from_bits(f64::NAN.to_bits() | 1);
        assert!(!total_eq(f64::NAN, payload));
        assert!(!total_eq(0.0, -0.0));
        assert!(total_eq(1.5, 1.5));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 2.0, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(!approx_eq(1.0, 1.0, f64::NAN));
    }
}
