//! Householder QR factorization and least-squares solving.
//!
//! QR is the backbone of the multi-variable linear regression in
//! [`crate::linreg`]: solving the normal equations directly squares the
//! condition number, while QR applied to the design matrix does not.

use crate::matrix::Matrix;
use crate::MathError;

/// A thin Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// Storage is compact: `R` occupies the upper triangle, and each Householder
/// vector is stored below the diagonal of its column, normalized so that its
/// (implicit) leading component equals 1. The accompanying scalar `beta_k`
/// defines the reflector `H_k = I - beta_k * u_k * u_k^T`.
///
/// # Examples
///
/// ```
/// use mathkit::matrix::Matrix;
/// use mathkit::decomp::Qr;
///
/// # fn main() -> Result<(), mathkit::MathError> {
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]])?;
/// let qr = Qr::factor(&a)?;
/// let x = qr.solve_least_squares(&[3.0, 4.0, 0.0])?;
/// assert!((x[0] - 3.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    betas: Vec<f64>,
}

impl Qr {
    /// Computes the QR factorization of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `a` has more columns than
    /// rows (the least-squares use case requires a tall matrix).
    pub fn factor(a: &Matrix) -> Result<Self, MathError> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(MathError::DimensionMismatch {
                expected: format!("at least {n} rows"),
                found: format!("{m} rows"),
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Norm of the k-th column from the diagonal down.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            // Sign chosen to avoid cancellation in v0 = a_kk - alpha.
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // With v = (v0, a[k+1.., k]), H = I - beta * v v^T where
            // beta = -1 / (alpha * v0) maps column k to alpha * e_k.
            let beta = -1.0 / (alpha * v0);

            // Apply H to the remaining columns using the unnormalized v
            // (its leading component v0 lives in a local, not the matrix).
            for j in (k + 1)..n {
                let mut s = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }

            // Store R's diagonal, and normalize v so its leading component
            // is 1: v = v0 * u  =>  H = I - (beta * v0^2) * u u^T.
            qr[(k, k)] = alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] = beta * v0 * v0;
        }
        Ok(Qr { qr, betas })
    }

    /// Applies `Q^T` to `b` and solves `R x = (Q^T b)[0..n]`, yielding the
    /// least-squares solution of `A x ≈ b`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len()` differs from the
    /// factored matrix's row count, and [`MathError::Singular`] if `R` has a
    /// (numerically) zero diagonal entry.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the textbook algorithm
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        if b.len() != m {
            return Err(MathError::DimensionMismatch {
                expected: format!("rhs of length {m}"),
                found: format!("rhs of length {}", b.len()),
            });
        }
        let mut y = b.to_vec();

        // Apply the Householder reflections in factorization order.
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // u = (1, qr[k+1.., k])
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= beta;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }

        // Back substitution on R.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = y[k];
            for j in (k + 1)..n {
                s -= self.r_at(k, j) * x[j];
            }
            let d = self.r_at(k, k);
            if d.abs() < 1e-12 * self.qr.max_abs().max(1.0) || !d.is_finite() {
                return Err(MathError::Singular);
            }
            x[k] = s / d;
        }
        Ok(x)
    }

    /// Entry `(i, j)` of the `R` factor (`i <= j`); zero below the diagonal.
    pub fn r_at(&self, i: usize, j: usize) -> f64 {
        if i <= j {
            self.qr[(i, j)]
        } else {
            0.0
        }
    }

    /// The smallest absolute diagonal entry of `R`: a cheap rank /
    /// conditioning indicator (zero means rank-deficient).
    pub fn min_abs_r_diag(&self) -> f64 {
        (0..self.qr.cols()).map(|k| self.r_at(k, k).abs()).fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{norm_inf, sub};

    fn solve(a: &Matrix, b: &[f64]) -> Vec<f64> {
        Qr::factor(a).unwrap().solve_least_squares(b).unwrap()
    }

    #[test]
    fn solves_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(&a, &[5.0, 10.0]);
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3
        assert!(norm_inf(&sub(&x, &[1.0, 3.0])) < 1e-10, "{x:?}");
    }

    #[test]
    fn solves_overdetermined_consistent_system() {
        let a =
            Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0], vec![1.0, 4.0]])
                .unwrap();
        // y = 2 + 3 t, consistent.
        let b = [5.0, 8.0, 11.0, 14.0];
        let x = solve(&a, &b);
        assert!(norm_inf(&sub(&x, &[2.0, 3.0])) < 1e-10, "{x:?}");
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let b = [0.0, 1.0, 0.5]; // not consistent
        let x = solve(&a, &b);
        // Closed form: intercept 0.25, slope 0.25.
        assert!((x[0] - 0.25).abs() < 1e-10, "{x:?}");
        assert!((x[1] - 0.25).abs() < 1e-10, "{x:?}");
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn singular_system_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn negative_leading_entries_handled() {
        let a = Matrix::from_rows(&[vec![-4.0, 1.0], vec![0.0, -2.0], vec![3.0, 0.0]]).unwrap();
        let xstar = [1.5, -0.5];
        let b = a.matvec(&xstar).unwrap();
        let x = solve(&a, &b);
        assert!(norm_inf(&sub(&x, &xstar)) < 1e-10, "{x:?}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_reconstruction() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..40 {
            let n = 1 + trial % 6;
            let m = n + trial % 4;
            let mut rows = Vec::new();
            for _ in 0..m {
                rows.push((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
            }
            // Strengthen the diagonal to keep it well-conditioned.
            for i in 0..n.min(m) {
                rows[i][i] += 3.0;
            }
            let a = Matrix::from_rows(&rows).unwrap();
            let xstar: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&xstar).unwrap();
            let x = solve(&a, &b);
            assert!(norm_inf(&sub(&x, &xstar)) < 1e-8, "trial {trial}: {x:?} vs {xstar:?}");
        }
    }

    #[test]
    fn r_is_upper_triangular_view() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.r_at(1, 0), 0.0);
        assert!(qr.r_at(0, 0).abs() > 0.0);
    }
}
