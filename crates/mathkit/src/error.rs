use std::fmt;

/// Error type for all fallible `mathkit` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Matrix or vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// The input system is singular or so ill-conditioned that no reliable
    /// solution exists.
    Singular,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual magnitude at the final iterate.
        residual: f64,
    },
    /// Not enough observations to determine the requested fit.
    InsufficientData {
        /// Observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// A root-finding bracket does not contain a sign change.
    InvalidBracket {
        /// Lower bracket endpoint.
        lo: f64,
        /// Upper bracket endpoint.
        hi: f64,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// A function evaluation produced NaN or infinity where a finite
    /// value is required (e.g. a residual inside a solver).
    NonFinite(String),
    /// A cooperative cancellation point observed that the caller's
    /// [`CancelToken`](crate::sync::CancelToken) fired (deadline or
    /// shutdown); the computation stopped early without a result.
    Cancelled,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::Singular => write!(f, "matrix is singular or severely ill-conditioned"),
            MathError::NoConvergence { iterations, residual } => write!(
                f,
                "iteration failed to converge after {iterations} steps (residual {residual:.3e})"
            ),
            MathError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: need at least {needed} observations, got {got}")
            }
            MathError::InvalidBracket { lo, hi } => {
                write!(f, "bracket [{lo}, {hi}] does not contain a sign change")
            }
            MathError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MathError::NonFinite(what) => {
                write!(f, "non-finite value encountered: {what}")
            }
            MathError::Cancelled => write!(f, "computation cancelled before convergence"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MathError::DimensionMismatch { expected: "3x3".into(), found: "2x3".into() },
            MathError::Singular,
            MathError::NoConvergence { iterations: 10, residual: 1.0 },
            MathError::InsufficientData { needed: 2, got: 1 },
            MathError::InvalidBracket { lo: 0.0, hi: 1.0 },
            MathError::InvalidArgument("x".into()),
            MathError::NonFinite("residual".into()),
            MathError::Cancelled,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
