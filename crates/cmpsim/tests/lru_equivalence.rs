//! Behaviour-equivalence check for the intrusive-list LRU rewrite.
//!
//! `RefCache` below is the original `Vec::remove`/`insert(0, …)`
//! implementation of [`SetAssocCache`], kept verbatim as an executable
//! specification. Random streams of accesses, prefetch inserts, quota
//! changes and flushes are replayed against both implementations; every
//! externally observable outcome (hit/miss, prefetch coverage, victim
//! identity, residency, per-owner occupancy) must match exactly. This is
//! the proof that the O(1) recency-list rewrite preserved replacement
//! semantics bit-for-bit.

use cmpsim::cache::{AccessOutcome, SetAssocCache};
use cmpsim::types::{LineAddr, ProcessId};
use proptest::prelude::*;

/// A resident line in the reference model.
#[derive(Clone, Copy)]
struct RefLine {
    addr: u64,
    owner: ProcessId,
    prefetched: bool,
}

/// The pre-rewrite cache: each set is a `Vec` ordered MRU → LRU, with
/// `remove`/`insert(0, …)` shifting on every touch.
struct RefCache {
    sets: Vec<Vec<RefLine>>,
    assoc: usize,
    owner_lines: Vec<u64>,
    quotas: Vec<Option<usize>>,
}

impl RefCache {
    fn new(num_sets: usize, assoc: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            assoc,
            owner_lines: Vec::new(),
            quotas: Vec::new(),
        }
    }

    fn set_way_quota(&mut self, owner: ProcessId, ways: usize) {
        let idx = owner.0 as usize;
        if self.quotas.len() <= idx {
            self.quotas.resize(idx + 1, None);
        }
        self.quotas[idx] = Some(ways);
    }

    fn clear_way_quotas(&mut self) {
        self.quotas.clear();
    }

    fn way_quota(&self, owner: ProcessId) -> Option<usize> {
        self.quotas.get(owner.0 as usize).copied().flatten()
    }

    fn owner_lines_in_set(&self, si: usize, owner: ProcessId) -> usize {
        self.sets[si].iter().filter(|l| l.owner == owner).count()
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.0 % self.sets.len() as u64) as usize
    }

    fn access(&mut self, addr: LineAddr, owner: ProcessId) -> AccessOutcome {
        let si = self.set_index(addr);
        if let Some(pos) = self.sets[si].iter().position(|l| l.addr == addr.0) {
            let line = self.sets[si].remove(pos);
            if line.owner != owner {
                self.dec_owner(line.owner);
                self.inc_owner(owner);
            }
            let prefetch_covered = line.prefetched;
            self.sets[si].insert(0, RefLine { addr: line.addr, owner, prefetched: false });
            return AccessOutcome::Hit { prefetch_covered };
        }
        let evicted = self.make_room(si, owner);
        self.sets[si].insert(0, RefLine { addr: addr.0, owner, prefetched: false });
        self.inc_owner(owner);
        AccessOutcome::Miss { evicted }
    }

    fn make_room(&mut self, si: usize, owner: ProcessId) -> Option<(LineAddr, ProcessId)> {
        if let Some(q) = self.way_quota(owner) {
            if q < self.assoc && self.owner_lines_in_set(si, owner) >= q {
                let pos = self.sets[si]
                    .iter()
                    .rposition(|l| l.owner == owner)
                    .expect("owner at quota has lines in the set");
                let victim = self.sets[si].remove(pos);
                self.dec_owner(victim.owner);
                return Some((LineAddr(victim.addr), victim.owner));
            }
        }
        if self.sets[si].len() < self.assoc {
            return None;
        }
        let pos = self.sets[si]
            .iter()
            .rposition(|l| match self.way_quota(l.owner) {
                Some(q) => self.owner_lines_in_set(si, l.owner) > q,
                None => false,
            })
            .unwrap_or(self.sets[si].len() - 1);
        let victim = self.sets[si].remove(pos);
        self.dec_owner(victim.owner);
        Some((LineAddr(victim.addr), victim.owner))
    }

    fn insert_prefetch(&mut self, addr: LineAddr, owner: ProcessId) -> bool {
        let si = self.set_index(addr);
        if self.sets[si].iter().any(|l| l.addr == addr.0) {
            return false;
        }
        if self.sets[si].len() == self.assoc {
            let victim = self.sets[si].pop().expect("full set has a victim");
            self.dec_owner(victim.owner);
        }
        let pos = self.sets[si].len() / 2;
        self.sets[si].insert(pos, RefLine { addr: addr.0, owner, prefetched: true });
        self.inc_owner(owner);
        true
    }

    fn contains(&self, addr: LineAddr) -> bool {
        let si = self.set_index(addr);
        self.sets[si].iter().any(|l| l.addr == addr.0)
    }

    fn lines_of(&self, owner: ProcessId) -> u64 {
        self.owner_lines.get(owner.0 as usize).copied().unwrap_or(0)
    }

    fn flush_owner(&mut self, owner: ProcessId) {
        for set in &mut self.sets {
            set.retain(|l| l.owner != owner);
        }
        if let Some(slot) = self.owner_lines.get_mut(owner.0 as usize) {
            *slot = 0;
        }
    }

    fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.owner_lines.clear();
    }

    fn inc_owner(&mut self, owner: ProcessId) {
        let idx = owner.0 as usize;
        if self.owner_lines.len() <= idx {
            self.owner_lines.resize(idx + 1, 0);
        }
        self.owner_lines[idx] += 1;
    }

    fn dec_owner(&mut self, owner: ProcessId) {
        if let Some(slot) = self.owner_lines.get_mut(owner.0 as usize) {
            *slot = slot.saturating_sub(1);
        }
    }
}

/// One step of a replayed stream. Encoded from `(kind, addr, owner, ways)`
/// tuples so the proptest shim's tuple strategies can generate it.
#[derive(Clone, Copy, Debug)]
enum Op {
    Access { addr: u64, owner: u32 },
    Prefetch { addr: u64, owner: u32 },
    SetQuota { owner: u32, ways: usize },
    ClearQuotas,
    FlushOwner { owner: u32 },
    FlushAll,
}

fn decode(kind: u8, addr: u64, owner: u32, ways: usize) -> Op {
    match kind {
        // Accesses dominate the stream so recency order gets exercised
        // deeply between the rarer structural operations.
        0..=9 => Op::Access { addr, owner },
        10..=12 => Op::Prefetch { addr, owner },
        13 => Op::SetQuota { owner, ways },
        14 => Op::ClearQuotas,
        15 => Op::FlushOwner { owner },
        _ => Op::FlushAll,
    }
}

const OWNERS: u32 = 3;

fn replay(num_sets: usize, assoc: usize, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut new = SetAssocCache::new(num_sets, assoc);
    let mut old = RefCache::new(num_sets, assoc);
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Access { addr, owner } => {
                let (a, p) = (LineAddr(addr), ProcessId(owner));
                let got = new.access(a, p);
                let want = old.access(a, p);
                prop_assert_eq!(got, want, "access outcome diverged at step {}", step);
            }
            Op::Prefetch { addr, owner } => {
                let (a, p) = (LineAddr(addr), ProcessId(owner));
                let got = new.insert_prefetch(a, p);
                let want = old.insert_prefetch(a, p);
                prop_assert_eq!(got, want, "prefetch outcome diverged at step {}", step);
            }
            Op::SetQuota { owner, ways } => {
                let ways = ways.clamp(1, assoc);
                new.set_way_quota(ProcessId(owner), ways);
                old.set_way_quota(ProcessId(owner), ways);
            }
            Op::ClearQuotas => {
                new.clear_way_quotas();
                old.clear_way_quotas();
            }
            Op::FlushOwner { owner } => {
                new.flush_owner(ProcessId(owner));
                old.flush_owner(ProcessId(owner));
            }
            Op::FlushAll => {
                new.flush_all();
                old.flush_all();
            }
        }
        // Observable state must agree after every step, not just at the end.
        for o in 0..OWNERS {
            prop_assert_eq!(
                new.lines_of(ProcessId(o)),
                old.lines_of(ProcessId(o)),
                "occupancy of owner {} diverged at step {}",
                o,
                step
            );
        }
        prop_assert_eq!(new.resident_lines(), old.owner_lines.iter().sum::<u64>());
    }
    // Final residency sweep over the whole (small) address space.
    for addr in 0..64u64 {
        prop_assert_eq!(new.contains(LineAddr(addr)), old.contains(LineAddr(addr)));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn intrusive_lru_matches_vec_reference(
        num_sets in 1usize..4,
        assoc in 1usize..9,
        raw in proptest::collection::vec(
            (0u8..17, 0u64..48, 0u32..OWNERS, 1usize..9),
            1..400,
        ),
    ) {
        let ops: Vec<Op> =
            raw.iter().map(|&(k, a, o, w)| decode(k, a, o, w)).collect();
        replay(num_sets, assoc, &ops)?;
    }

    #[test]
    fn intrusive_lru_matches_reference_under_heavy_conflict(
        assoc in 2usize..9,
        raw in proptest::collection::vec(
            (0u8..17, 0u64..12, 0u32..OWNERS, 1usize..9),
            50..600,
        ),
    ) {
        // Single set, tiny address space: every access conflicts, so the
        // victim-selection paths (quota recycle, over-quota preference,
        // global LRU) all fire constantly.
        let ops: Vec<Op> =
            raw.iter().map(|&(k, a, o, w)| decode(k, a, o, w)).collect();
        replay(1, assoc, &ops)?;
    }
}
