//! Chip-multiprocessor simulator substrate for the `mpmc` workspace.
//!
//! This crate stands in for the physical test machines of the DAC 2010
//! paper (*Performance and Power Modeling in a Multi-Programmed Multi-Core
//! Environment*): multi-core dies with shared set-associative LRU L2
//! caches, hardware performance counters sampled periodically, a
//! round-robin time-slicing scheduler, and a current-clamp power
//! measurement chain.
//!
//! The modules:
//!
//! - [`types`]: identifier newtypes ([`types::LineAddr`],
//!   [`types::ProcessId`], [`types::CoreId`], [`types::DieId`]).
//! - [`cache`]: the shared L2 with per-owner occupancy accounting.
//! - [`machine`]: machine presets mirroring the paper's three testbeds.
//! - [`process`]: the [`process::AccessGenerator`] trait the engine runs.
//! - [`sched`]: per-core round-robin time slicing (paper §4.2).
//! - [`engine`]: simulation setup, engine selection, and results.
//! - `events`: the discrete-event kernel (the default
//!   [`engine::EngineKind`]), with first-class process arrival/departure.
//! - [`hpc`]: performance-counter emulation (the PAPI stand-in).
//! - [`power`]: ground-truth power synthesis and the measurement chain.
//! - [`prefetch`]: the optional next-line prefetcher (paper §3.1 study).
//! - [`trace`]: trace capture/replay and Dinero-style trace-driven
//!   analysis (the paper's reference [1]).
//! - `faults` (behind the `faults` cargo feature): deterministic fault
//!   injection for robustness testing.
//!
//! # Examples
//!
//! ```
//! use cmpsim::engine::{simulate, Placement, SimOptions};
//! use cmpsim::machine::MachineConfig;
//!
//! # fn main() -> Result<(), cmpsim::engine::SimError> {
//! let machine = MachineConfig::four_core_server();
//! let result = simulate(
//!     &machine,
//!     Placement::idle(machine.num_cores()),
//!     SimOptions { duration_s: 0.2, warmup_s: 0.0, ..Default::default() },
//! )?;
//! assert!(result.avg_measured_power() > 40.0); // idle server still burns watts
//! # Ok(())
//! # }
//! ```

// The models need no unsafe code anywhere; enforced by mpmc-lint's
// unsafe_audit rule workspace-wide.
#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
mod events;
#[cfg(feature = "faults")]
pub mod faults;
pub mod hpc;
pub mod machine;
pub mod power;
pub mod prefetch;
pub mod process;
pub mod sched;
pub mod trace;
pub mod types;
