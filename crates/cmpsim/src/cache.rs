//! Set-associative LRU cache with per-owner occupancy accounting.
//!
//! This is the shared last-level cache at the heart of the paper: `k`
//! processes on cache-sharing cores contend for the `A` ways of each set
//! under an LRU replacement policy (§3.1 assumption 1). Each resident line
//! remembers which process inserted it, so the simulator can report the
//! *effective cache size* (average ways per set) each process occupies —
//! the quantity the performance model predicts.

use crate::types::{LineAddr, ProcessId};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident; it has been promoted to MRU.
    Hit {
        /// `true` if this is the first demand touch of a line that was
        /// brought in by the prefetcher: the fill may still be in flight,
        /// so timing models charge a partial (not full hit) latency.
        prefetch_covered: bool,
    },
    /// The line was not resident; it has been inserted at MRU. If the set
    /// was full, the victim is reported.
    Miss {
        /// The evicted line and its owner, if an eviction was necessary.
        evicted: Option<(LineAddr, ProcessId)>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit (prefetch-covered or not).
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    owner: ProcessId,
    /// Set by prefetch insertion, cleared on the first demand touch.
    prefetched: bool,
}

/// Slot-index sentinel for "no slot" in the recency links.
const NIL: u32 = u32::MAX;

/// One cache set: dense slot storage plus an intrusive doubly-linked
/// recency list, so a hit promotes to MRU and a miss evicts the LRU with
/// O(1) pointer updates instead of the `Vec::remove`/`insert(0, …)`
/// memmove pair the first implementation paid on every access.
///
/// Slots are kept dense with swap-remove (the vacated slot is refilled by
/// the last slot, whose links are patched), so the tag probe scans a
/// contiguous `Vec<u64>` of addresses — the only O(ways) step left on the
/// access path. *Recency* order lives purely in the links: `head` is the
/// MRU slot, `tail` the LRU victim, `next` points one step toward LRU.
#[derive(Debug, Clone)]
struct CacheSet {
    /// Line addresses by slot (probe array, address-only for density).
    addrs: Vec<u64>,
    /// Owner/prefetch metadata by slot.
    lines: Vec<Line>,
    /// Recency links by slot: `next` toward LRU, `prev` toward MRU.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// MRU slot, or `NIL` when the set is empty.
    head: u32,
    /// LRU slot, or `NIL` when the set is empty.
    tail: u32,
}

impl Default for CacheSet {
    fn default() -> Self {
        CacheSet {
            addrs: Vec::new(),
            lines: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl CacheSet {
    fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Slot holding `addr`, if resident.
    fn find(&self, addr: LineAddr) -> Option<usize> {
        self.addrs.iter().position(|&a| a == addr.0)
    }

    /// Detaches slot `i` from the recency list (links only; the slot
    /// itself stays allocated).
    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links the (detached) slot `i` in as MRU.
    fn link_front(&mut self, i: usize) {
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head == NIL {
            self.tail = i as u32;
        } else {
            self.prev[self.head as usize] = i as u32;
        }
        self.head = i as u32;
    }

    fn move_to_front(&mut self, i: usize) {
        if self.head == i as u32 {
            return;
        }
        self.unlink(i);
        self.link_front(i);
    }

    /// Appends a new line and links it as MRU. Caller guarantees space.
    fn push_front(&mut self, addr: LineAddr, line: Line) {
        let i = self.len();
        self.addrs.push(addr.0);
        self.lines.push(line);
        self.next.push(NIL);
        self.prev.push(NIL);
        self.link_front(i);
    }

    /// Inserts a new line at recency position `pos` (0 = MRU, `len` =
    /// LRU). Caller guarantees space and `pos <= len`.
    fn insert_at_recency(&mut self, pos: usize, addr: LineAddr, line: Line) {
        let i = self.len();
        self.addrs.push(addr.0);
        self.lines.push(line);
        self.next.push(NIL);
        self.prev.push(NIL);
        // The node currently at position `pos`, or NIL to append at LRU.
        let mut at = self.head;
        for _ in 0..pos {
            if at == NIL {
                break;
            }
            at = self.next[at as usize];
        }
        if at == self.head {
            self.link_front(i);
            return;
        }
        let before = if at == NIL { self.tail } else { self.prev[at as usize] };
        self.prev[i] = before;
        self.next[i] = at;
        self.next[before as usize] = i as u32;
        if at == NIL {
            self.tail = i as u32;
        } else {
            self.prev[at as usize] = i as u32;
        }
    }

    /// Removes slot `i`, keeping storage dense by moving the last slot
    /// into the hole and patching its links. Returns the removed line.
    fn remove(&mut self, i: usize) -> (LineAddr, Line) {
        self.unlink(i);
        let removed_addr = LineAddr(self.addrs[i]);
        let removed_line = self.lines[i];
        let last = self.len() - 1;
        if i != last {
            self.addrs[i] = self.addrs[last];
            self.lines[i] = self.lines[last];
            // Read the moved slot's links *after* the unlink above, in
            // case the removed slot was its neighbour.
            let (p, n) = (self.prev[last], self.next[last]);
            self.prev[i] = p;
            self.next[i] = n;
            if p == NIL {
                self.head = i as u32;
            } else {
                self.next[p as usize] = i as u32;
            }
            if n == NIL {
                self.tail = i as u32;
            } else {
                self.prev[n as usize] = i as u32;
            }
        }
        self.addrs.pop();
        self.lines.pop();
        self.next.pop();
        self.prev.pop();
        (removed_addr, removed_line)
    }

    /// LRU-most slot satisfying `pred`, walking from the LRU tail toward
    /// MRU (the linked-list equivalent of the old `rposition`).
    fn lru_where<F: FnMut(&Line) -> bool>(&self, mut pred: F) -> Option<usize> {
        let mut cur = self.tail;
        while cur != NIL {
            if pred(&self.lines[cur as usize]) {
                return Some(cur as usize);
            }
            cur = self.prev[cur as usize];
        }
        None
    }
}

/// A set-associative cache with LRU replacement.
///
/// Addresses are line-granular ([`LineAddr`]); the set index is
/// `addr % num_sets` and the full address doubles as the tag.
///
/// # Examples
///
/// ```
/// use cmpsim::cache::SetAssocCache;
/// use cmpsim::types::{LineAddr, ProcessId};
///
/// let mut cache = SetAssocCache::new(4, 2);
/// let p = ProcessId(0);
/// assert!(!cache.access(LineAddr(0), p).is_hit()); // cold miss
/// assert!(cache.access(LineAddr(0), p).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<CacheSet>,
    assoc: usize,
    /// `num_sets - 1` when the set count is a power of two, so the
    /// per-access set mapping is a mask instead of a 64-bit modulo.
    set_mask: Option<u64>,
    /// Resident line count per process id (indexed by `ProcessId.0`).
    owner_lines: Vec<u64>,
    /// Optional per-owner way quotas (way partitioning, as in cache
    /// partitioning hardware and the Xu et al. work the paper builds on).
    /// `quotas[pid] = Some(q)` caps the owner at `q` ways per set.
    quotas: Vec<Option<usize>>,
}

impl SetAssocCache {
    /// Creates an empty cache with `num_sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0` or `assoc == 0`.
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        assert!(num_sets > 0, "cache needs at least one set");
        assert!(assoc > 0, "cache needs at least one way");
        SetAssocCache {
            sets: vec![CacheSet::default(); num_sets],
            assoc,
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            owner_lines: Vec::new(),
            quotas: Vec::new(),
        }
    }

    /// Caps `owner` at `ways` ways per set (way partitioning). A quota of
    /// `assoc` or more is equivalent to no quota. Quotas only constrain
    /// *insertions*: an owner at quota replaces its own LRU line in the
    /// set instead of the global LRU victim, and a full set prefers
    /// evicting over-quota owners first — the strict-partition semantics
    /// of way-allocation hardware.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` (an owner needs at least one way to run).
    pub fn set_way_quota(&mut self, owner: ProcessId, ways: usize) {
        assert!(ways > 0, "a way quota must be at least 1");
        let idx = owner.0 as usize;
        if self.quotas.len() <= idx {
            self.quotas.resize(idx + 1, None);
        }
        self.quotas[idx] = Some(ways);
    }

    /// Removes all way quotas (back to free-for-all LRU sharing).
    pub fn clear_way_quotas(&mut self) {
        self.quotas.clear();
    }

    /// The quota of `owner`, if any.
    pub fn way_quota(&self, owner: ProcessId) -> Option<usize> {
        self.quotas.get(owner.0 as usize).copied().flatten()
    }

    fn owner_lines_in_set(&self, si: usize, owner: ProcessId) -> usize {
        // Dense scan; slot order is irrelevant for a count.
        self.sets[si].lines.iter().filter(|l| l.owner == owner).count()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.assoc
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        match self.set_mask {
            Some(mask) => (addr.0 & mask) as usize,
            None => (addr.0 % self.sets.len() as u64) as usize,
        }
    }

    /// Accesses `addr` on behalf of `owner`, applying LRU update/replacement.
    pub fn access(&mut self, addr: LineAddr, owner: ProcessId) -> AccessOutcome {
        let si = self.set_index(addr);
        if let Some(slot) = self.sets[si].find(addr) {
            // Hit: promote to MRU. Ownership follows the toucher, mirroring
            // the paper's accounting where a line "belongs" to whoever keeps
            // it alive (relevant when processes share no data, so in
            // practice owners never change; kept for generality).
            let line = self.sets[si].lines[slot];
            if line.owner != owner {
                self.dec_owner(line.owner);
                self.inc_owner(owner);
            }
            self.sets[si].lines[slot] = Line { owner, prefetched: false };
            self.sets[si].move_to_front(slot);
            return AccessOutcome::Hit { prefetch_covered: line.prefetched };
        }
        // Miss: insert at MRU, choosing a victim that respects quotas.
        let evicted = self.make_room(si, owner);
        self.sets[si].push_front(addr, Line { owner, prefetched: false });
        self.inc_owner(owner);
        AccessOutcome::Miss { evicted }
    }

    /// Evicts a line from set `si` if needed so `owner` can insert one,
    /// honouring way quotas. Returns the victim, if any.
    fn make_room(&mut self, si: usize, owner: ProcessId) -> Option<(LineAddr, ProcessId)> {
        // Quota check: an at-quota owner recycles its own LRU line.
        if let Some(q) = self.way_quota(owner) {
            if q < self.assoc && self.owner_lines_in_set(si, owner) >= q {
                let slot = self.sets[si]
                    .lru_where(|l| l.owner == owner)
                    .expect("owner at quota has lines in the set");
                let (vaddr, victim) = self.sets[si].remove(slot);
                self.dec_owner(victim.owner);
                return Some((vaddr, victim.owner));
            }
        }
        if self.sets[si].len() < self.assoc {
            return None;
        }
        // Full set: prefer the LRU line of an over-quota owner; fall back
        // to the global LRU line.
        let slot = if self.quotas.is_empty() {
            self.sets[si].tail as usize
        } else {
            // Count per owner up front so the tail walk does not rescan
            // the set for every candidate.
            let quotas = &self.quotas;
            let counts: Vec<usize> = {
                let mut counts = vec![0usize; self.owner_lines.len().max(1)];
                for l in &self.sets[si].lines {
                    let idx = l.owner.0 as usize;
                    if idx >= counts.len() {
                        counts.resize(idx + 1, 0);
                    }
                    counts[idx] += 1;
                }
                counts
            };
            self.sets[si]
                .lru_where(|l| match quotas.get(l.owner.0 as usize).copied().flatten() {
                    Some(q) => counts.get(l.owner.0 as usize).copied().unwrap_or(0) > q,
                    None => false,
                })
                .unwrap_or(self.sets[si].tail as usize)
        };
        let (vaddr, victim) = self.sets[si].remove(slot);
        self.dec_owner(victim.owner);
        Some((vaddr, victim.owner))
    }

    /// Inserts `addr` for `owner` without counting a demand access — used by
    /// the prefetcher. Returns `true` if the line was newly inserted (it is
    /// a no-op when the line is already resident; residency is *not*
    /// promoted, so prefetch hints cannot refresh LRU state).
    pub fn insert_prefetch(&mut self, addr: LineAddr, owner: ProcessId) -> bool {
        let si = self.set_index(addr);
        if self.sets[si].find(addr).is_some() {
            return false;
        }
        if self.sets[si].len() == self.assoc {
            let slot = self.sets[si].tail as usize;
            let (_, victim) = self.sets[si].remove(slot);
            self.dec_owner(victim.owner);
        }
        // Prefetches insert at LRU+1 position (middle-of-stack insertion is
        // common in real LLCs to limit pollution); we insert just below MRU
        // half to keep them evictable.
        let pos = self.sets[si].len() / 2;
        self.sets[si].insert_at_recency(pos, addr, Line { owner, prefetched: true });
        self.inc_owner(owner);
        true
    }

    /// Whether `addr` is currently resident (does not touch LRU state).
    pub fn contains(&self, addr: LineAddr) -> bool {
        let si = self.set_index(addr);
        self.sets[si].find(addr).is_some()
    }

    /// Number of resident lines owned by `owner`.
    pub fn lines_of(&self, owner: ProcessId) -> u64 {
        self.owner_lines.get(owner.0 as usize).copied().unwrap_or(0)
    }

    /// Average ways per set occupied by `owner` — the process's *effective
    /// cache size* in the paper's sense (Eq. 1 denominates in ways).
    pub fn avg_ways_of(&self, owner: ProcessId) -> f64 {
        self.lines_of(owner) as f64 / self.sets.len() as f64
    }

    /// Total resident lines across all owners.
    pub fn resident_lines(&self) -> u64 {
        self.owner_lines.iter().sum()
    }

    /// Removes every line owned by `owner` (e.g. at process termination).
    pub fn flush_owner(&mut self, owner: ProcessId) {
        for set in &mut self.sets {
            // Swap-remove refills slot `i` from the end, so only advance
            // past slots that survive.
            let mut i = 0;
            while i < set.len() {
                if set.lines[i].owner == owner {
                    set.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(slot) = self.owner_lines.get_mut(owner.0 as usize) {
            *slot = 0;
        }
    }

    /// Empties the cache entirely.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.addrs.clear();
            set.lines.clear();
            set.next.clear();
            set.prev.clear();
            set.head = NIL;
            set.tail = NIL;
        }
        self.owner_lines.clear();
    }

    fn inc_owner(&mut self, owner: ProcessId) {
        let idx = owner.0 as usize;
        if self.owner_lines.len() <= idx {
            self.owner_lines.resize(idx + 1, 0);
        }
        self.owner_lines[idx] += 1;
    }

    fn dec_owner(&mut self, owner: ProcessId) {
        let idx = owner.0 as usize;
        debug_assert!(self.owner_lines.get(idx).copied().unwrap_or(0) > 0);
        if let Some(slot) = self.owner_lines.get_mut(idx) {
            *slot = slot.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.access(LineAddr(8), p(0)), AccessOutcome::Miss { evicted: None });
        assert_eq!(c.access(LineAddr(8), p(0)), AccessOutcome::Hit { prefetch_covered: false });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(0));
        // Touch 0 so 1 becomes LRU.
        assert!(c.access(LineAddr(0), p(0)).is_hit());
        let out = c.access(LineAddr(2), p(0));
        assert_eq!(out, AccessOutcome::Miss { evicted: Some((LineAddr(1), p(0))) });
        assert!(c.contains(LineAddr(0)));
        assert!(!c.contains(LineAddr(1)));
    }

    #[test]
    fn set_mapping_isolates_sets() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(LineAddr(0), p(0)); // set 0
        c.access(LineAddr(1), p(0)); // set 1
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(1)));
        // Same set as 0, evicts only it.
        c.access(LineAddr(2), p(0));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(1)));
    }

    #[test]
    fn occupancy_tracking() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(1));
        c.access(LineAddr(2), p(0));
        assert_eq!(c.lines_of(p(0)), 2);
        assert_eq!(c.lines_of(p(1)), 1);
        assert_eq!(c.resident_lines(), 3);
        assert_eq!(c.avg_ways_of(p(0)), 1.0);
        assert_eq!(c.avg_ways_of(p(1)), 0.5);
    }

    #[test]
    fn occupancy_updates_on_eviction() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(0));
        c.access(LineAddr(2), p(1)); // evicts p0's LRU line 0
        assert_eq!(c.lines_of(p(0)), 1);
        assert_eq!(c.lines_of(p(1)), 1);
    }

    #[test]
    fn contention_splits_ways() {
        // Two processes cycling over 2 lines each in a 4-way set end up
        // with 2 ways each.
        let mut c = SetAssocCache::new(1, 4);
        for round in 0..100 {
            let _ = round;
            c.access(LineAddr(0), p(0));
            c.access(LineAddr(4), p(1));
            c.access(LineAddr(1), p(0));
            c.access(LineAddr(5), p(1));
        }
        assert_eq!(c.lines_of(p(0)), 2);
        assert_eq!(c.lines_of(p(1)), 2);
    }

    #[test]
    fn flush_owner_removes_only_that_owner() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(1));
        c.flush_owner(p(0));
        assert_eq!(c.lines_of(p(0)), 0);
        assert_eq!(c.lines_of(p(1)), 1);
        assert!(!c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(1)));
    }

    #[test]
    fn flush_all_empties() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(LineAddr(0), p(0));
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(LineAddr(0)));
    }

    #[test]
    fn prefetch_insert_does_not_promote_existing() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(0)); // LRU: 0
        assert!(!c.insert_prefetch(LineAddr(0), p(0))); // already resident
                                                        // 0 is still LRU, so inserting 2 evicts 0.
        let out = c.access(LineAddr(2), p(0));
        assert_eq!(out, AccessOutcome::Miss { evicted: Some((LineAddr(0), p(0))) });
    }

    #[test]
    fn prefetch_insert_counts_occupancy() {
        let mut c = SetAssocCache::new(2, 2);
        assert!(c.insert_prefetch(LineAddr(0), p(3)));
        assert_eq!(c.lines_of(p(3)), 1);
        assert!(c.access(LineAddr(0), p(3)).is_hit());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_assoc_panics() {
        SetAssocCache::new(4, 0);
    }

    #[test]
    fn quota_caps_owner_occupancy() {
        let mut c = SetAssocCache::new(1, 4);
        c.set_way_quota(p(0), 2);
        for i in 0..10 {
            c.access(LineAddr(i), p(0));
        }
        assert_eq!(c.lines_of(p(0)), 2, "quota must cap the owner at 2 ways");
    }

    #[test]
    fn at_quota_owner_recycles_its_own_lru() {
        let mut c = SetAssocCache::new(1, 4);
        c.set_way_quota(p(0), 2);
        c.access(LineAddr(0), p(1)); // unquota'd co-runner
        c.access(LineAddr(1), p(0));
        c.access(LineAddr(2), p(0));
        // p0 is at quota; inserting a third line evicts p0's own LRU (1),
        // never p1's line even though it is the global LRU.
        let out = c.access(LineAddr(3), p(0));
        assert_eq!(out, AccessOutcome::Miss { evicted: Some((LineAddr(1), p(0))) });
        assert!(c.contains(LineAddr(0)), "the co-runner's line must survive");
    }

    #[test]
    fn full_set_prefers_over_quota_victims() {
        let mut c = SetAssocCache::new(1, 4);
        c.set_way_quota(p(1), 1);
        // p1 fills beyond its quota while p0 is absent (quota only binds
        // at insertion time when enforced; simulate an over-quota state by
        // raising then lowering the quota).
        c.clear_way_quotas();
        c.access(LineAddr(0), p(1));
        c.access(LineAddr(1), p(1));
        c.access(LineAddr(2), p(1));
        c.access(LineAddr(3), p(0));
        c.set_way_quota(p(1), 1);
        // p0 inserts into the full set: the victim must be p1's over-quota
        // LRU line (0), not the global LRU if that belonged to p0.
        let out = c.access(LineAddr(4), p(0));
        assert_eq!(out, AccessOutcome::Miss { evicted: Some((LineAddr(0), p(1))) });
        assert!(c.contains(LineAddr(3)));
    }

    #[test]
    fn quota_of_assoc_is_no_quota() {
        let mut c = SetAssocCache::new(1, 2);
        c.set_way_quota(p(0), 2);
        c.access(LineAddr(0), p(0));
        c.access(LineAddr(1), p(0));
        assert_eq!(c.lines_of(p(0)), 2);
        assert!(c.access(LineAddr(0), p(0)).is_hit());
    }

    #[test]
    fn quota_accessors() {
        let mut c = SetAssocCache::new(1, 4);
        assert_eq!(c.way_quota(p(0)), None);
        c.set_way_quota(p(0), 3);
        assert_eq!(c.way_quota(p(0)), Some(3));
        c.clear_way_quotas();
        assert_eq!(c.way_quota(p(0)), None);
    }

    #[test]
    fn partitioned_pair_isolates_miss_rates() {
        // Two thrashers with quotas 3 + 1 on a 4-way set: the 3-way owner
        // cycling 3 lines hits; the 1-way owner cycling 2 lines misses.
        let mut c = SetAssocCache::new(2, 4);
        c.set_way_quota(p(0), 3);
        c.set_way_quota(p(1), 1);
        let mut hits0 = 0;
        let mut hits1 = 0;
        for round in 0..60 {
            for k in 0..3u64 {
                hits0 += u64::from(c.access(LineAddr(k * 2), p(0)).is_hit());
            }
            for k in 0..2u64 {
                hits1 += u64::from(c.access(LineAddr(1000 + k * 2), p(1)).is_hit());
            }
            let _ = round;
        }
        assert!(hits0 > 150, "3-way owner should hit nearly always: {hits0}");
        assert_eq!(hits1, 0, "1-way owner cycling 2 lines must always miss");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_quota_panics() {
        let mut c = SetAssocCache::new(1, 2);
        c.set_way_quota(p(0), 0);
    }

    #[test]
    fn sixteen_way_fills_completely() {
        let mut c = SetAssocCache::new(8, 16);
        for i in 0..(8 * 16) {
            c.access(LineAddr(i), p(0));
        }
        assert_eq!(c.resident_lines(), 128);
        assert_eq!(c.avg_ways_of(p(0)), 16.0);
        // Re-access everything: all hits.
        for i in 0..(8 * 16) {
            assert!(c.access(LineAddr(i), p(0)).is_hit(), "line {i}");
        }
    }
}
