//! Multi-core simulation: shared world state, the two engine kernels, and
//! the result types.
//!
//! Each core advances a local clock in cycles; steps execute in global
//! start-time order, so accesses to a die's shared L2 interleave in global
//! time order. The feedback loop the paper's equilibrium model captures
//! arises naturally here: a process that misses more runs slower, therefore
//! issues fewer L2 accesses per second, therefore inserts lines more slowly
//! and holds less of the cache.
//!
//! Two kernels produce that schedule:
//!
//! - [`EngineKind::Events`] (default): the discrete-event kernel in
//!   [`crate::events`] — a `BinaryHeap` of timestamped events (step starts,
//!   slice expiries, HPC snapshots, process arrivals/departures). Only this
//!   kernel supports mid-run process arrival and departure
//!   ([`crate::process::ProcessSpec::with_arrival`] /
//!   [`with_departure`](crate::process::ProcessSpec::with_departure)).
//! - [`EngineKind::Lockstep`]: the original min-clock scan, kept as the
//!   migration oracle. Without arrivals/departures the two kernels are
//!   bit-identical (pinned by the parity corpus in
//!   `tests/parallel_determinism.rs`).
//!
//! The engine also emulates the measurement infrastructure: per-core HPC
//! sampling at the machine's sampling period and the current-clamp power
//! measurement chain of [`crate::power`].

use crate::cache::SetAssocCache;
use crate::hpc::{CounterSet, EventRates};
use crate::machine::MachineConfig;
use crate::power::measure_power;
use crate::prefetch::{NextLinePrefetcher, PrefetchConfig};
use crate::process::ProcessSpec;
use crate::sched::TimeSliceScheduler;
use crate::types::{Cycles, ProcessId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Error type for simulation setup problems.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The placement does not match the machine topology or is malformed.
    InvalidPlacement(String),
    /// Options are out of domain (e.g. non-positive duration).
    InvalidOptions(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            SimError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Which simulation kernel executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The event-queue kernel (`crate::events`): first-class events for
    /// step starts, slice expiries, HPC snapshots, and process
    /// arrival/departure. The default.
    #[default]
    Events,
    /// The original lockstep min-clock scan, retained as the oracle the
    /// event kernel is checked against. Rejects arrivals/departures.
    Lockstep,
}

impl EngineKind {
    /// Parses a CLI-style engine name.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message for unknown names.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "events" => Ok(EngineKind::Events),
            "lockstep" => Ok(EngineKind::Lockstep),
            other => Err(format!("unknown engine '{other}' (expected 'events' or 'lockstep')")),
        }
    }

    /// The CLI-style name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Events => "events",
            EngineKind::Lockstep => "lockstep",
        }
    }
}

/// A process-to-core placement: `per_core[c]` lists the processes that
/// time-share core `c` (may be empty for an idle core).
#[derive(Debug, Default)]
pub struct Placement {
    /// Processes per core, indexed by core id.
    pub per_core: Vec<Vec<ProcessSpec>>,
}

impl Placement {
    /// Creates an all-idle placement for `num_cores` cores.
    pub fn idle(num_cores: usize) -> Self {
        Placement { per_core: (0..num_cores).map(|_| Vec::new()).collect() }
    }

    /// Adds a process to `core`'s run queue.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlacement`] if `core` is out of range.
    pub fn assign(&mut self, core: usize, spec: ProcessSpec) -> Result<&mut Self, SimError> {
        let num_cores = self.per_core.len();
        match self.per_core.get_mut(core) {
            Some(queue) => {
                queue.push(spec);
                Ok(self)
            }
            None => Err(SimError::InvalidPlacement(format!(
                "core {core} out of range for {num_cores} cores"
            ))),
        }
    }

    /// Total number of processes in the placement.
    pub fn num_processes(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }
}

/// Options controlling one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Simulated duration in (scaled) seconds.
    pub duration_s: f64,
    /// Leading warmup excluded from process statistics (seconds).
    pub warmup_s: f64,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Hardware prefetcher configuration; `None` disables prefetching
    /// (the paper's default assumption).
    pub prefetch: Option<PrefetchConfig>,
    /// Per-core scheduler weights (`weights[c][p]`); `None` means equal
    /// weights, the paper's assumption.
    pub weights: Option<Vec<Vec<f64>>>,
    /// Way-partitioning quotas: `(process index in placement order, ways)`
    /// pairs applied to the process's shared L2. Empty means free LRU
    /// sharing (the paper's setting).
    pub way_quotas: Vec<(u32, usize)>,
    /// Which kernel runs the simulation. The default event kernel and the
    /// lockstep oracle are bit-identical absent arrivals/departures.
    pub engine: EngineKind,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            duration_s: 2.0,
            warmup_s: 0.5,
            seed: 0xD1C5,
            prefetch: None,
            weights: None,
            way_quotas: Vec::new(),
            engine: EngineKind::default(),
        }
    }
}

/// Per-process statistics over the post-warmup window.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    /// Dense process id (placement order).
    pub pid: ProcessId,
    /// Display name from the [`ProcessSpec`].
    pub name: String,
    /// Core the process ran on.
    pub core: usize,
    /// Post-warmup event totals.
    pub counters: CounterSet,
    /// Seconds the process was actually scheduled post-warmup.
    pub active_seconds: f64,
    /// Time-averaged ways per set occupied in the shared L2 — the measured
    /// *effective cache size* `S_i`.
    pub avg_ways: f64,
}

impl ProcessStats {
    /// Seconds per instruction while scheduled (the paper's SPI).
    pub fn spi(&self) -> f64 {
        if self.counters.instructions == 0 {
            return f64::INFINITY;
        }
        self.active_seconds / self.counters.instructions as f64
    }

    /// L2 misses per L2 access (the paper's MPA).
    pub fn mpa(&self) -> f64 {
        if self.counters.l2_refs == 0 {
            return 0.0;
        }
        self.counters.l2_misses as f64 / self.counters.l2_refs as f64
    }

    /// L2 accesses per instruction (the paper's API).
    pub fn api(&self) -> f64 {
        if self.counters.instructions == 0 {
            return 0.0;
        }
        self.counters.l2_refs as f64 / self.counters.instructions as f64
    }

    /// L1 references per instruction (paper: L1RPI).
    pub fn l1rpi(&self) -> f64 {
        safe_div(self.counters.l1_refs, self.counters.instructions)
    }

    /// L2 references per instruction (paper: L2RPI, identical to API for
    /// the L2-last-level machines modeled here).
    pub fn l2rpi(&self) -> f64 {
        self.api()
    }

    /// Branches per instruction (paper: BRPI).
    pub fn brpi(&self) -> f64 {
        safe_div(self.counters.branches, self.counters.instructions)
    }

    /// FP operations per instruction (paper: FPPI).
    pub fn fppi(&self) -> f64 {
        safe_div(self.counters.fp_ops, self.counters.instructions)
    }
}

fn safe_div(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One processor-level power sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sampling period index from simulation start.
    pub period: usize,
    /// Period start time in seconds.
    pub t_start: f64,
    /// Noise-free ground-truth processor power (W) — available only
    /// because this is a simulator; the models never see it.
    pub true_watts: f64,
    /// Power as seen through the clamp/DAQ chain (W) — what the paper's
    /// experiments compare against.
    pub measured_watts: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-process post-warmup statistics, in placement order.
    pub processes: Vec<ProcessStats>,
    /// Per-core, per-period event rates: `core_samples[core][period]`.
    pub core_samples: Vec<Vec<EventRates>>,
    /// Processor-level power samples, one per period.
    pub power: Vec<PowerSample>,
    /// Sampling period in seconds.
    pub sample_period_s: f64,
    /// Index of the first post-warmup period.
    pub warmup_periods: usize,
    /// Total context switches across all cores.
    pub context_switches: u64,
    /// Total scheduler slice expiries across all cores. Solo processes
    /// expire slices without switching (the paper's §4.2 accounting still
    /// slices them), so this exceeds `context_switches` whenever a core
    /// runs exactly one process.
    pub slice_expiries: u64,
    /// Total prefetch lines inserted (0 when prefetching is disabled).
    pub prefetches_issued: u64,
}

impl SimResult {
    /// Power samples from the post-warmup window only.
    pub fn settled_power(&self) -> &[PowerSample] {
        &self.power[self.warmup_periods.min(self.power.len())..]
    }

    /// Mean measured processor power over the post-warmup window.
    pub fn avg_measured_power(&self) -> f64 {
        let s = self.settled_power();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|p| p.measured_watts).sum::<f64>() / s.len() as f64
    }

    /// Per-core event rates for post-warmup periods:
    /// `rates[period - warmup][core]`.
    pub fn settled_core_rates(&self) -> Vec<Vec<EventRates>> {
        let start = self.warmup_periods;
        let periods = self.power.len();
        (start..periods).map(|p| self.core_samples.iter().map(|cs| cs[p]).collect()).collect()
    }

    /// Finds the stats of the process named `name`.
    pub fn process(&self, name: &str) -> Option<&ProcessStats> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Mean *ground-truth* processor power over the post-warmup window
    /// (no clamp/DAQ noise). Only a simulator can provide this; the
    /// differential validation harness uses it as the oracle the power
    /// model is judged against, separating model error from
    /// measurement-chain error.
    pub fn avg_true_power(&self) -> f64 {
        let s = self.settled_power();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|p| p.true_watts).sum::<f64>() / s.len() as f64
    }

    /// Extracts, per process in placement order, the measured quantities
    /// the performance model predicts — the replay oracle for
    /// differential (model-vs-simulator) validation.
    pub fn oracle_observables(&self) -> Vec<OracleObservables> {
        self.processes
            .iter()
            .map(|p| OracleObservables {
                name: p.name.clone(),
                avg_ways: p.avg_ways,
                mpa: p.mpa(),
                spi: p.spi(),
                api: p.api(),
            })
            .collect()
    }
}

/// The per-process measurements a differential check compares model
/// predictions against: effective cache size `S_i` (time-averaged ways),
/// miss ratio `MPA_i`, speed `SPI_i`, and access rate `API_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleObservables {
    /// Display name from the [`ProcessSpec`].
    pub name: String,
    /// Time-averaged ways per set occupied in the shared L2.
    pub avg_ways: f64,
    /// L2 misses per L2 access.
    pub mpa: f64,
    /// Seconds per instruction while scheduled.
    pub spi: f64,
    /// L2 accesses per instruction.
    pub api: f64,
}

pub(crate) struct ProcState {
    pub(crate) pid: ProcessId,
    pub(crate) name: String,
    pub(crate) core: usize,
    pub(crate) weight: f64,
    /// Arrival time in cycles (0 = present from the start).
    pub(crate) arrival: Cycles,
    /// Departure time in cycles (`Cycles::MAX` = runs to the end).
    pub(crate) departure: Cycles,
    pub(crate) gen: Box<dyn crate::process::AccessGenerator>,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) counters: CounterSet,
    pub(crate) active_cycles: Cycles,
    pub(crate) occupancy_sum: f64,
    pub(crate) occupancy_snaps: u64,
}

pub(crate) struct CoreState {
    pub(crate) clock: Cycles,
    pub(crate) die: usize,
    /// Currently runnable processes (global indices) in placement order.
    /// The event kernel mutates this on arrival/departure; the lockstep
    /// oracle (which rejects residency windows) keeps it fixed.
    pub(crate) run: Vec<usize>,
    pub(crate) sched: Option<TimeSliceScheduler>,
    /// Slice expiries retired with dropped schedulers (event kernel only).
    pub(crate) retired_expiries: u64,
    /// Processes placed here that have not arrived yet.
    pub(crate) pending_arrivals: usize,
    pub(crate) buckets: Vec<CounterSet>,
    /// Current HPC bucket (`clock / period_cycles`, capped at the
    /// overflow bucket) tracked incrementally so the per-step attribution
    /// needs no division.
    pub(crate) bucket: usize,
    /// Clock at which `bucket` advances (`(bucket + 1) * period_cycles`).
    pub(crate) bucket_edge: Cycles,
    pub(crate) done: bool,
}

/// Everything both kernels share: the validated, constructed simulation
/// state plus the derived timing constants. Building it (and assembling a
/// [`SimResult`] from it) is engine-independent, which is what guarantees
/// that the two kernels draw identical RNG streams and produce
/// field-identical results on the same schedule.
pub(crate) struct SimWorld {
    pub(crate) procs: Vec<ProcState>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) l2s: Vec<SetAssocCache>,
    pub(crate) prefetchers: Vec<Option<NextLinePrefetcher>>,
    pub(crate) end_cycles: Cycles,
    pub(crate) warmup_cycles: Cycles,
    pub(crate) period_cycles: Cycles,
    pub(crate) num_buckets: usize,
    pub(crate) timeslice: Cycles,
    /// Seed for the power-measurement RNG, drawn from the master RNG at a
    /// fixed point in its stream (after per-process seeding) so both
    /// kernels see the same noise.
    power_seed: u64,
    pub(crate) context_switches: u64,
    pub(crate) slice_expiries: u64,
}

/// Cycle counts stay safely below this so bucket-edge and clock arithmetic
/// cannot overflow `u64` even after whole-run additions.
const MAX_SIM_CYCLES: f64 = (1u64 << 62) as f64;

/// Runs one simulation with the kernel selected by
/// [`SimOptions::engine`].
///
/// # Errors
///
/// Returns [`SimError`] if the placement does not match the machine's core
/// count, weights are malformed, options are out of domain (including a
/// duration whose cycle count would overflow), a residency window is
/// inverted, or arrivals/departures are used with the lockstep oracle.
///
/// # Examples
///
/// See the `workloads` crate and `examples/quickstart.rs` for realistic
/// generators; a minimal run with an idle machine:
///
/// ```
/// use cmpsim::engine::{simulate, Placement, SimOptions};
/// use cmpsim::machine::MachineConfig;
///
/// # fn main() -> Result<(), cmpsim::engine::SimError> {
/// let m = MachineConfig::two_core_workstation();
/// let r = simulate(&m, Placement::idle(2), SimOptions { duration_s: 0.2, warmup_s: 0.0, ..Default::default() })?;
/// assert!(r.avg_measured_power() > 0.0); // idle power is still power
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    machine: &MachineConfig,
    placement: Placement,
    opts: SimOptions,
) -> Result<SimResult, SimError> {
    let mut world = build_world(machine, placement, &opts)?;
    match opts.engine {
        EngineKind::Lockstep => run_lockstep(&mut world, machine),
        EngineKind::Events => crate::events::run(&mut world, machine)?,
    }
    Ok(finish(world, machine))
}

/// Validates options and placement and constructs the shared world.
fn build_world(
    machine: &MachineConfig,
    placement: Placement,
    opts: &SimOptions,
) -> Result<SimWorld, SimError> {
    let num_cores = machine.num_cores();
    if placement.per_core.len() != num_cores {
        return Err(SimError::InvalidPlacement(format!(
            "placement has {} cores, machine has {num_cores}",
            placement.per_core.len()
        )));
    }
    if !opts.duration_s.is_finite() || opts.duration_s <= 0.0 {
        return Err(SimError::InvalidOptions("duration must be positive".into()));
    }
    if opts.warmup_s < 0.0 || opts.warmup_s >= opts.duration_s {
        return Err(SimError::InvalidOptions("warmup must lie in [0, duration)".into()));
    }
    // The f64 -> u64 cast saturates silently; a duration whose cycle count
    // leaves the representable range must be a typed error, not a silent
    // truncation of the run.
    let end_f = opts.duration_s * machine.freq_hz;
    if !end_f.is_finite() || end_f >= MAX_SIM_CYCLES {
        return Err(SimError::InvalidOptions(format!(
            "duration {} s at {} Hz does not fit the cycle clock",
            opts.duration_s, machine.freq_hz
        )));
    }
    if let Some(w) = &opts.weights {
        if w.len() != num_cores {
            return Err(SimError::InvalidOptions(format!(
                "weights cover {} cores, machine has {num_cores}",
                w.len()
            )));
        }
    }

    let end_cycles = end_f.round() as Cycles;
    let warmup_cycles = (opts.warmup_s * machine.freq_hz).round() as Cycles;
    let period_cycles = machine.sample_period_cycles().max(1);
    let num_buckets = (end_cycles / period_cycles) as usize;
    let timeslice = machine.timeslice_cycles().max(1);

    let mut master_rng = ChaCha8Rng::seed_from_u64(opts.seed);

    // Flatten processes; build cores. Process ids, RNG seeds, and weights
    // are assigned in placement order regardless of arrival times, so a
    // run's identity never depends on its schedule.
    let mut procs: Vec<ProcState> = Vec::new();
    let mut cores: Vec<CoreState> = Vec::new();
    for (c, specs) in placement.per_core.into_iter().enumerate() {
        let die = machine.die_of(crate::types::CoreId(c as u32)).0 as usize;
        if let Some(w) = &opts.weights {
            if w[c].len() != specs.len() {
                return Err(SimError::InvalidOptions(format!(
                    "core {c} has {} processes but {} weights",
                    specs.len(),
                    w[c].len()
                )));
            }
            // Validate values up front: a late-arriving process must not
            // surface a weight error mid-run.
            if w[c].iter().any(|&x| !x.is_finite() || x <= 0.0) {
                return Err(SimError::InvalidOptions(format!(
                    "core {c} weights must be positive and finite"
                )));
            }
        }
        let mut run = Vec::new();
        let mut pending_arrivals = 0usize;
        for (k, spec) in specs.into_iter().enumerate() {
            let arrival = spec.arrival_cycles.unwrap_or(0);
            let departure = spec.departure_cycles.unwrap_or(Cycles::MAX);
            if spec.arrival_cycles.is_some() || spec.departure_cycles.is_some() {
                if opts.engine == EngineKind::Lockstep {
                    return Err(SimError::InvalidOptions(format!(
                        "process '{}' has a residency window; the lockstep oracle does not \
                         support arrival/departure (use the event engine)",
                        spec.name
                    )));
                }
                if departure <= arrival {
                    return Err(SimError::InvalidPlacement(format!(
                        "process '{}' on core {c} departs at {departure} cycles, at or \
                         before its arrival at {arrival}",
                        spec.name
                    )));
                }
                if arrival >= end_cycles {
                    return Err(SimError::InvalidPlacement(format!(
                        "process '{}' on core {c} arrives at {arrival} cycles, at or after \
                         the end of the run ({end_cycles})",
                        spec.name
                    )));
                }
            }
            let pid = ProcessId(procs.len() as u32);
            if arrival == 0 {
                run.push(procs.len());
            } else {
                pending_arrivals += 1;
            }
            procs.push(ProcState {
                pid,
                name: spec.name,
                core: c,
                weight: opts.weights.as_ref().map_or(1.0, |w| w[c][k]),
                arrival,
                departure,
                gen: spec.generator,
                rng: ChaCha8Rng::seed_from_u64(master_rng.gen()),
                counters: CounterSet::new(),
                active_cycles: 0,
                occupancy_sum: 0.0,
                occupancy_snaps: 0,
            });
        }
        let sched = if run.is_empty() {
            None
        } else {
            let weights: Vec<f64> = run.iter().map(|&pi| procs[pi].weight).collect();
            Some(
                TimeSliceScheduler::new(run.len(), timeslice, &weights)
                    .map_err(SimError::InvalidOptions)?,
            )
        };
        let done = run.is_empty() && pending_arrivals == 0;
        cores.push(CoreState {
            clock: 0,
            die,
            run,
            sched,
            retired_expiries: 0,
            pending_arrivals,
            buckets: vec![CounterSet::new(); num_buckets + 1],
            bucket: 0,
            bucket_edge: period_cycles,
            done,
        });
    }

    let mut l2s: Vec<SetAssocCache> =
        (0..machine.dies).map(|_| SetAssocCache::new(machine.l2_sets, machine.l2_assoc)).collect();
    for &(pid, ways) in &opts.way_quotas {
        if pid as usize >= procs.len() {
            return Err(SimError::InvalidOptions(format!(
                "way quota for process {pid}, but only {} processes placed",
                procs.len()
            )));
        }
        if ways == 0 || ways > machine.l2_assoc {
            return Err(SimError::InvalidOptions(format!(
                "way quota {ways} out of range 1..={}",
                machine.l2_assoc
            )));
        }
        let die = cores[procs[pid as usize].core].die;
        l2s[die].set_way_quota(ProcessId(pid), ways);
    }
    let prefetchers: Vec<Option<NextLinePrefetcher>> =
        (0..machine.dies).map(|_| opts.prefetch.map(NextLinePrefetcher::new)).collect();

    let power_seed = master_rng.gen();
    Ok(SimWorld {
        procs,
        cores,
        l2s,
        prefetchers,
        end_cycles,
        warmup_cycles,
        period_cycles,
        num_buckets,
        timeslice,
        power_seed,
        context_switches: 0,
        slice_expiries: 0,
    })
}

/// Records one occupancy snapshot at global time `at` for every resident
/// process (both kernels fire these on the same causally consistent
/// frontier: no step starting at or after `at` has executed yet).
pub(crate) fn snapshot_occupancy(world: &mut SimWorld, at: Cycles) {
    if at < world.warmup_cycles {
        return;
    }
    for p in world.procs.iter_mut() {
        if p.arrival <= at && at < p.departure {
            let die = world.cores[p.core].die;
            p.occupancy_sum += world.l2s[die].avg_ways_of(p.pid);
            p.occupancy_snaps += 1;
        }
    }
}

/// Executes one step of process `proc` on `core`: generates the step,
/// performs the L2 access, charges cycles, and attributes HPC/process
/// counters at completion time. Shared verbatim by both kernels — this is
/// the single definition of what a "step" does.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_core(
    machine: &MachineConfig,
    core: &mut CoreState,
    proc: &mut ProcState,
    l2: &mut SetAssocCache,
    prefetcher: &mut Option<NextLinePrefetcher>,
    warmup_cycles: Cycles,
    end_cycles: Cycles,
    period_cycles: Cycles,
    num_buckets: usize,
) {
    let step = proc.gen.next_step(&mut proc.rng);
    debug_assert!(step.instructions > 0 || step.access.is_some(), "generator produced a zero step");
    let mut cycles =
        ((step.instructions as f64) * machine.cpi_base).round() as Cycles + step.stall_cycles;
    let mut misses = 0u64;
    let mut l2_refs = 0u64;
    let mut prefetches = 0u64;

    if let Some(addr) = step.access {
        l2_refs = 1;
        let outcome = l2.access(addr, proc.pid);
        match outcome {
            crate::cache::AccessOutcome::Hit { prefetch_covered: false } => {
                cycles += machine.l2_hit_cycles;
            }
            crate::cache::AccessOutcome::Hit { prefetch_covered: true } => {
                // First touch of a prefetched line: the fill may still
                // be in flight, so only part of the memory latency is
                // hidden.
                cycles += machine.prefetch_covered_cycles;
            }
            crate::cache::AccessOutcome::Miss { .. } => {
                cycles += machine.mem_cycles;
                misses = 1;
            }
        }
        if let Some(pf) = prefetcher {
            let issued = pf.observe(l2, proc.pid, addr);
            prefetches = issued;
            cycles += issued * machine.prefetch_issue_cycles;
        }
    }
    if cycles == 0 {
        cycles = 1; // guarantee progress even for degenerate steps
    }
    core.clock += cycles;

    let delta = CounterSet {
        instructions: step.instructions,
        l1_refs: step.l1_refs,
        l2_refs,
        l2_misses: misses,
        branches: step.branches,
        fp_ops: step.fp_ops,
        prefetches,
    };

    // Core-level HPC bucket (completion-time attribution).
    while core.clock >= core.bucket_edge && core.bucket < num_buckets {
        core.bucket += 1;
        core.bucket_edge += period_cycles;
    }
    core.buckets[core.bucket].merge(&delta);

    // Process-level post-warmup totals.
    if core.clock >= warmup_cycles {
        proc.counters.merge(&delta);
        proc.active_cycles += cycles;
    }

    if core.clock >= end_cycles {
        core.done = true;
    }
}

/// The lockstep oracle: always step the active core with the smallest
/// clock (ties broken by lowest core index via the strict `<` scan).
fn run_lockstep(world: &mut SimWorld, machine: &MachineConfig) {
    let mut next_snapshot: Cycles = world.period_cycles;
    loop {
        let mut min_core: Option<usize> = None;
        let mut min_clock = Cycles::MAX;
        for (i, core) in world.cores.iter().enumerate() {
            if !core.done && core.clock < min_clock {
                min_clock = core.clock;
                min_core = Some(i);
            }
        }
        let Some(ci) = min_core else { break };

        // Occupancy snapshots keyed to the global frontier (the minimum
        // active clock), so every snapshot reflects a causally consistent
        // cache state.
        while min_clock >= next_snapshot {
            snapshot_occupancy(world, next_snapshot);
            next_snapshot += world.period_cycles;
        }

        let core = &mut world.cores[ci];
        // Context switch check at step granularity: boundaries crossed
        // since the last step on this core all expire now.
        if let Some(sched) = &mut core.sched {
            world.context_switches += sched.maybe_switch(core.clock);
        }
        let pi = core.run[core.sched.as_ref().map_or(0, |s| s.current())];
        let die = core.die;
        step_core(
            machine,
            core,
            &mut world.procs[pi],
            &mut world.l2s[die],
            &mut world.prefetchers[die],
            world.warmup_cycles,
            world.end_cycles,
            world.period_cycles,
            world.num_buckets,
        );
    }
    world.slice_expiries =
        world.cores.iter().filter_map(|c| c.sched.as_ref()).map(|s| s.expiries()).sum();
}

/// Assembles per-core rates, power samples, and process statistics from a
/// finished world. Engine-independent.
fn finish(world: SimWorld, machine: &MachineConfig) -> SimResult {
    let num_buckets = world.num_buckets;
    let period_s = world.period_cycles as f64 / machine.freq_hz;
    let mut core_samples: Vec<Vec<EventRates>> = Vec::with_capacity(world.cores.len());
    for core in &world.cores {
        core_samples.push((0..num_buckets).map(|b| core.buckets[b].rates(period_s)).collect());
    }
    let mut power_rng = ChaCha8Rng::seed_from_u64(world.power_seed);
    let mut power = Vec::with_capacity(num_buckets);
    let mut rates: Vec<EventRates> = Vec::with_capacity(world.cores.len());
    for b in 0..num_buckets {
        rates.clear();
        rates.extend(core_samples.iter().map(|cs| cs[b]));
        let true_watts = machine.power.processor_power(&rates);
        let measured_watts = measure_power(&machine.power, true_watts, period_s, &mut power_rng);
        power.push(PowerSample {
            period: b,
            t_start: b as f64 * period_s,
            true_watts,
            measured_watts,
        });
    }

    let prefetches_issued = world.procs.iter().map(|p| p.counters.prefetches).sum();
    let processes = world
        .procs
        .into_iter()
        .map(|p| ProcessStats {
            pid: p.pid,
            name: p.name,
            core: p.core,
            counters: p.counters,
            active_seconds: p.active_cycles as f64 / machine.freq_hz,
            avg_ways: if p.occupancy_snaps > 0 {
                p.occupancy_sum / p.occupancy_snaps as f64
            } else {
                0.0
            },
        })
        .collect();

    SimResult {
        processes,
        core_samples,
        power,
        sample_period_s: period_s,
        warmup_periods: (world.warmup_cycles / world.period_cycles) as usize,
        context_switches: world.context_switches,
        slice_expiries: world.slice_expiries,
        prefetches_issued,
    }
}

/// Test-only seam letting `events::tests` drive the kernel with a
/// hand-seeded event order around a normally-built world.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub(crate) fn build_world_for_tests(
        machine: &MachineConfig,
        placement: Placement,
        opts: &SimOptions,
    ) -> SimWorld {
        build_world(machine, placement, opts).expect("test world must validate")
    }

    pub(crate) fn finish_for_tests(world: SimWorld, machine: &MachineConfig) -> SimResult {
        finish(world, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::testutil::CyclicGenerator;
    use crate::process::ProcessSpec;

    fn small_machine() -> MachineConfig {
        MachineConfig {
            l2_sets: 16,
            l2_assoc: 4,
            // Short slices so time-sharing tests see many switches within
            // a sub-second run.
            timeslice_s: 0.01,
            ..MachineConfig::two_core_workstation()
        }
    }

    fn cyclic(base: u64, footprint: u64, gap: u64) -> ProcessSpec {
        ProcessSpec::new(format!("cyc{base}"), Box::new(CyclicGenerator::new(base, footprint, gap)))
    }

    fn quick_opts() -> SimOptions {
        SimOptions { duration_s: 0.3, warmup_s: 0.1, seed: 7, ..Default::default() }
    }

    /// The same options on the lockstep oracle.
    fn lockstep(opts: SimOptions) -> SimOptions {
        SimOptions { engine: EngineKind::Lockstep, ..opts }
    }

    #[test]
    fn placement_validation() {
        let m = small_machine();
        let err = simulate(&m, Placement::idle(3), quick_opts()).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlacement(_)));
    }

    #[test]
    fn options_validation() {
        let m = small_machine();
        let bad = SimOptions { duration_s: 0.0, ..Default::default() };
        assert!(matches!(simulate(&m, Placement::idle(2), bad), Err(SimError::InvalidOptions(_))));
        let bad = SimOptions { duration_s: 1.0, warmup_s: 1.0, ..Default::default() };
        assert!(matches!(simulate(&m, Placement::idle(2), bad), Err(SimError::InvalidOptions(_))));
    }

    #[test]
    fn huge_duration_is_an_error_not_a_truncation() {
        // Regression: `duration_s * freq_hz` used to be cast straight to
        // u64, silently saturating for huge-but-finite products.
        let m = small_machine();
        for dur in [1e300, f64::MAX, (1u64 << 62) as f64 / m.freq_hz + 1.0] {
            let bad = SimOptions { duration_s: dur, ..Default::default() };
            let err = simulate(&m, Placement::idle(2), bad).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidOptions(ref msg) if msg.contains("cycle clock")),
                "duration {dur}: {err}"
            );
        }
    }

    #[test]
    fn nan_and_infinite_durations_are_errors() {
        let m = small_machine();
        for dur in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let bad = SimOptions { duration_s: dur, ..Default::default() };
            assert!(
                matches!(simulate(&m, Placement::idle(2), bad), Err(SimError::InvalidOptions(_))),
                "duration {dur}"
            );
        }
    }

    #[test]
    fn engine_kind_names_round_trip() {
        for kind in [EngineKind::Events, EngineKind::Lockstep] {
            assert_eq!(EngineKind::from_name(kind.name()), Ok(kind));
        }
        assert!(EngineKind::from_name("steam").is_err());
        assert_eq!(EngineKind::default(), EngineKind::Events);
    }

    #[test]
    fn lockstep_rejects_residency_windows() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20).with_arrival(1000)).unwrap();
        let err = simulate(&m, pl, lockstep(quick_opts())).unwrap_err();
        assert!(matches!(err, SimError::InvalidOptions(ref msg) if msg.contains("lockstep")));
    }

    #[test]
    fn residency_window_validation() {
        let m = small_machine();
        // Departure at or before arrival.
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20).with_arrival(500).with_departure(500)).unwrap();
        let err = simulate(&m, pl, quick_opts()).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlacement(_)), "{err}");
        // Arrival past the end of the run.
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20).with_arrival(u64::MAX / 2)).unwrap();
        let err = simulate(&m, pl, quick_opts()).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlacement(ref msg) if msg.contains("end")), "{err}");
    }

    #[test]
    fn idle_machine_draws_idle_power() {
        let m = small_machine();
        let r = simulate(&m, Placement::idle(2), quick_opts()).unwrap();
        let expect = m.power.uncore_w + 2.0 * m.power.core_idle_w;
        assert!((r.avg_measured_power() - expect).abs() < 1.0, "{}", r.avg_measured_power());
        assert_eq!(r.processes.len(), 0);
        assert_eq!(r.context_switches, 0);
        assert_eq!(r.slice_expiries, 0);
    }

    #[test]
    fn single_process_fits_in_cache() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Footprint 32 lines in a 64-line cache: after warmup, ~no misses.
        pl.assign(0, cyclic(0, 32, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let p = &r.processes[0];
        assert!(p.mpa() < 0.02, "mpa {}", p.mpa());
        assert!(p.counters.instructions > 0);
        // Occupancy: 32 lines over 16 sets = 2 ways.
        assert!((p.avg_ways - 2.0).abs() < 0.3, "ways {}", p.avg_ways);
    }

    #[test]
    fn solo_process_slices_expire_without_switching() {
        // Satellite pin: a solo process's slice expiries are no longer
        // silently invisible — `slice_expiries` counts them while
        // `context_switches` stays 0.
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 32, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert_eq!(r.context_switches, 0);
        // 0.3 s at 10 ms slices: ~30 boundaries, minus scheduling slack.
        assert!(r.slice_expiries >= 25, "{}", r.slice_expiries);
    }

    #[test]
    fn oversized_footprint_always_misses() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Footprint 256 lines cycled in order through a 64-line LRU cache:
        // classic worst case, everything misses.
        pl.assign(0, cyclic(0, 256, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.processes[0].mpa() > 0.95, "mpa {}", r.processes[0].mpa());
    }

    #[test]
    fn misses_slow_a_process_down() {
        let m = small_machine();
        let mut fit = Placement::idle(2);
        fit.assign(0, cyclic(0, 32, 20)).unwrap();
        let mut thrash = Placement::idle(2);
        thrash.assign(0, cyclic(0, 1024, 20)).unwrap();
        let fast = simulate(&m, fit, quick_opts()).unwrap();
        let slow = simulate(&m, thrash, quick_opts()).unwrap();
        assert!(slow.processes[0].spi() > 2.0 * fast.processes[0].spi());
    }

    #[test]
    fn contention_splits_cache_between_cores() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Both want 48 of 64 lines; they must share.
        pl.assign(0, cyclic(0, 48, 20)).unwrap();
        pl.assign(1, cyclic(10_000, 48, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let w0 = r.processes[0].avg_ways;
        let w1 = r.processes[1].avg_ways;
        assert!(w0 + w1 <= m.l2_assoc as f64 + 1e-9);
        assert!(w0 > 0.5 && w1 > 0.5, "w0={w0} w1={w1}");
        // Symmetric demands -> roughly symmetric split.
        assert!((w0 - w1).abs() < 1.0, "w0={w0} w1={w1}");
        // Both now miss, unlike when running alone.
        assert!(r.processes[0].mpa() > 0.05);
    }

    #[test]
    fn time_sharing_context_switches() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20)).unwrap();
        pl.assign(0, cyclic(5_000, 16, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.context_switches > 5, "{}", r.context_switches);
        // Both processes made progress.
        assert!(r.processes[0].counters.instructions > 0);
        assert!(r.processes[1].counters.instructions > 0);
        // Active time splits the post-warmup window roughly evenly.
        let ratio = r.processes[0].active_seconds / r.processes[1].active_seconds;
        assert!(ratio > 0.6 && ratio < 1.6, "{ratio}");
    }

    #[test]
    fn weighted_time_sharing() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20)).unwrap();
        pl.assign(0, cyclic(5_000, 16, 20)).unwrap();
        let opts = SimOptions { weights: Some(vec![vec![3.0, 1.0], vec![]]), ..quick_opts() };
        let r = simulate(&m, pl, opts).unwrap();
        let ratio = r.processes[0].active_seconds / r.processes[1].active_seconds;
        assert!(ratio > 2.0 && ratio < 4.5, "{ratio}");
    }

    #[test]
    fn busy_power_exceeds_idle_power() {
        let m = small_machine();
        let idle = simulate(&m, Placement::idle(2), quick_opts()).unwrap();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 32, 10)).unwrap();
        pl.assign(1, cyclic(10_000, 32, 10)).unwrap();
        let busy = simulate(&m, pl, quick_opts()).unwrap();
        assert!(busy.avg_measured_power() > idle.avg_measured_power() + 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = small_machine();
        let run = |seed| {
            let mut pl = Placement::idle(2);
            pl.assign(0, cyclic(0, 48, 20)).unwrap();
            pl.assign(1, cyclic(10_000, 24, 30)).unwrap();
            simulate(&m, pl, SimOptions { seed, ..quick_opts() }).unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a.processes[0].counters, b.processes[0].counters);
        assert_eq!(a.avg_measured_power(), b.avg_measured_power());
        // Different seed shifts the noise (power) even if counters agree.
        assert_ne!(a.avg_measured_power(), c.avg_measured_power());
    }

    #[test]
    fn engines_agree_bit_exactly_without_churn() {
        // In-module parity smoke; the full seeded corpus lives in
        // tests/parallel_determinism.rs.
        let m = small_machine();
        let build = || {
            let mut pl = Placement::idle(2);
            pl.assign(0, cyclic(0, 48, 20)).unwrap();
            pl.assign(0, cyclic(20_000, 16, 35)).unwrap();
            pl.assign(1, cyclic(10_000, 24, 30)).unwrap();
            pl
        };
        let ev = simulate(&m, build(), quick_opts()).unwrap();
        let ls = simulate(&m, build(), lockstep(quick_opts())).unwrap();
        assert_eq!(ev, ls);
        assert!(ev.context_switches > 0);
    }

    #[test]
    fn sample_counts_match_duration() {
        let m = small_machine();
        let opts = SimOptions { duration_s: 0.31, warmup_s: 0.09, seed: 1, ..Default::default() };
        let r = simulate(&m, Placement::idle(2), opts).unwrap();
        // 0.31 s at 30 ms period -> 10 full periods; warmup 0.09 -> 3.
        assert_eq!(r.power.len(), 10);
        assert_eq!(r.warmup_periods, 3);
        assert_eq!(r.settled_power().len(), 7);
        assert_eq!(r.core_samples.len(), 2);
        assert_eq!(r.core_samples[0].len(), 10);
    }

    #[test]
    fn prefetch_helps_streaming_access() {
        let m = small_machine();
        // A pure streaming generator: every access is to the next line.
        struct Stream(u64);
        impl crate::process::AccessGenerator for Stream {
            fn next_step(&mut self, _rng: &mut dyn rand::RngCore) -> crate::process::Step {
                self.0 += 1;
                crate::process::Step {
                    instructions: 20,
                    l1_refs: 6,
                    branches: 2,
                    fp_ops: 4,
                    stall_cycles: 0,
                    access: Some(crate::types::LineAddr(self.0)),
                }
            }
            fn label(&self) -> &str {
                "stream"
            }
        }
        let mut off = Placement::idle(2);
        off.assign(0, ProcessSpec::new("s", Box::new(Stream(0)))).unwrap();
        let mut on = Placement::idle(2);
        on.assign(0, ProcessSpec::new("s", Box::new(Stream(0)))).unwrap();
        let base = simulate(&m, off, quick_opts()).unwrap();
        let pf = simulate(
            &m,
            on,
            SimOptions { prefetch: Some(PrefetchConfig::default()), ..quick_opts() },
        )
        .unwrap();
        assert!(pf.prefetches_issued > 0);
        assert!(
            pf.processes[0].spi() < 0.9 * base.processes[0].spi(),
            "prefetch {} vs base {}",
            pf.processes[0].spi(),
            base.processes[0].spi()
        );
    }

    #[test]
    fn process_lookup_by_name() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 8, 10)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.process("cyc0").is_some());
        assert!(r.process("nope").is_none());
    }

    #[test]
    fn oracle_observables_mirror_process_stats() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 48, 20)).unwrap();
        pl.assign(1, cyclic(10_000, 24, 30)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let oracle = r.oracle_observables();
        assert_eq!(oracle.len(), r.processes.len());
        for (o, p) in oracle.iter().zip(&r.processes) {
            assert_eq!(o.name, p.name);
            assert_eq!(o.avg_ways, p.avg_ways);
            assert_eq!(o.mpa, p.mpa());
            assert_eq!(o.spi, p.spi());
            assert_eq!(o.api, p.api());
            assert!(o.avg_ways > 0.0 && o.mpa >= 0.0 && o.spi > 0.0);
        }
    }

    #[test]
    fn true_power_tracks_measured_power() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 32, 10)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let truth = r.avg_true_power();
        let measured = r.avg_measured_power();
        assert!(truth > 0.0);
        // The measurement chain adds noise and quantization, not bias:
        // averages must stay within a watt of each other here.
        assert!((truth - measured).abs() < 1.0, "true {truth} vs measured {measured}");
    }
}
