//! Event-driven multi-core simulation.
//!
//! Each core advances a local clock in cycles; the core with the smallest
//! clock executes its next [`Step`](crate::process::Step), so accesses to a
//! die's shared L2 interleave in global time order. The feedback loop the
//! paper's equilibrium model captures arises naturally here: a process that
//! misses more runs slower, therefore issues fewer L2 accesses per second,
//! therefore inserts lines more slowly and holds less of the cache.
//!
//! The engine also emulates the measurement infrastructure: per-core HPC
//! sampling at the machine's sampling period and the current-clamp power
//! measurement chain of [`crate::power`].

use crate::cache::SetAssocCache;
use crate::hpc::{CounterSet, EventRates};
use crate::machine::MachineConfig;
use crate::power::measure_power;
use crate::prefetch::{NextLinePrefetcher, PrefetchConfig};
use crate::process::ProcessSpec;
use crate::sched::TimeSliceScheduler;
use crate::types::{Cycles, ProcessId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Error type for simulation setup problems.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The placement does not match the machine topology or is malformed.
    InvalidPlacement(String),
    /// Options are out of domain (e.g. non-positive duration).
    InvalidOptions(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            SimError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A process-to-core placement: `per_core[c]` lists the processes that
/// time-share core `c` (may be empty for an idle core).
#[derive(Debug, Default)]
pub struct Placement {
    /// Processes per core, indexed by core id.
    pub per_core: Vec<Vec<ProcessSpec>>,
}

impl Placement {
    /// Creates an all-idle placement for `num_cores` cores.
    pub fn idle(num_cores: usize) -> Self {
        Placement { per_core: (0..num_cores).map(|_| Vec::new()).collect() }
    }

    /// Adds a process to `core`'s run queue.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlacement`] if `core` is out of range.
    pub fn assign(&mut self, core: usize, spec: ProcessSpec) -> Result<&mut Self, SimError> {
        let num_cores = self.per_core.len();
        match self.per_core.get_mut(core) {
            Some(queue) => {
                queue.push(spec);
                Ok(self)
            }
            None => Err(SimError::InvalidPlacement(format!(
                "core {core} out of range for {num_cores} cores"
            ))),
        }
    }

    /// Total number of processes in the placement.
    pub fn num_processes(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }
}

/// Options controlling one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Simulated duration in (scaled) seconds.
    pub duration_s: f64,
    /// Leading warmup excluded from process statistics (seconds).
    pub warmup_s: f64,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Hardware prefetcher configuration; `None` disables prefetching
    /// (the paper's default assumption).
    pub prefetch: Option<PrefetchConfig>,
    /// Per-core scheduler weights (`weights[c][p]`); `None` means equal
    /// weights, the paper's assumption.
    pub weights: Option<Vec<Vec<f64>>>,
    /// Way-partitioning quotas: `(process index in placement order, ways)`
    /// pairs applied to the process's shared L2. Empty means free LRU
    /// sharing (the paper's setting).
    pub way_quotas: Vec<(u32, usize)>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            duration_s: 2.0,
            warmup_s: 0.5,
            seed: 0xD1C5,
            prefetch: None,
            weights: None,
            way_quotas: Vec::new(),
        }
    }
}

/// Per-process statistics over the post-warmup window.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    /// Dense process id (placement order).
    pub pid: ProcessId,
    /// Display name from the [`ProcessSpec`].
    pub name: String,
    /// Core the process ran on.
    pub core: usize,
    /// Post-warmup event totals.
    pub counters: CounterSet,
    /// Seconds the process was actually scheduled post-warmup.
    pub active_seconds: f64,
    /// Time-averaged ways per set occupied in the shared L2 — the measured
    /// *effective cache size* `S_i`.
    pub avg_ways: f64,
}

impl ProcessStats {
    /// Seconds per instruction while scheduled (the paper's SPI).
    pub fn spi(&self) -> f64 {
        if self.counters.instructions == 0 {
            return f64::INFINITY;
        }
        self.active_seconds / self.counters.instructions as f64
    }

    /// L2 misses per L2 access (the paper's MPA).
    pub fn mpa(&self) -> f64 {
        if self.counters.l2_refs == 0 {
            return 0.0;
        }
        self.counters.l2_misses as f64 / self.counters.l2_refs as f64
    }

    /// L2 accesses per instruction (the paper's API).
    pub fn api(&self) -> f64 {
        if self.counters.instructions == 0 {
            return 0.0;
        }
        self.counters.l2_refs as f64 / self.counters.instructions as f64
    }

    /// L1 references per instruction (paper: L1RPI).
    pub fn l1rpi(&self) -> f64 {
        safe_div(self.counters.l1_refs, self.counters.instructions)
    }

    /// L2 references per instruction (paper: L2RPI, identical to API for
    /// the L2-last-level machines modeled here).
    pub fn l2rpi(&self) -> f64 {
        self.api()
    }

    /// Branches per instruction (paper: BRPI).
    pub fn brpi(&self) -> f64 {
        safe_div(self.counters.branches, self.counters.instructions)
    }

    /// FP operations per instruction (paper: FPPI).
    pub fn fppi(&self) -> f64 {
        safe_div(self.counters.fp_ops, self.counters.instructions)
    }
}

fn safe_div(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One processor-level power sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sampling period index from simulation start.
    pub period: usize,
    /// Period start time in seconds.
    pub t_start: f64,
    /// Noise-free ground-truth processor power (W) — available only
    /// because this is a simulator; the models never see it.
    pub true_watts: f64,
    /// Power as seen through the clamp/DAQ chain (W) — what the paper's
    /// experiments compare against.
    pub measured_watts: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-process post-warmup statistics, in placement order.
    pub processes: Vec<ProcessStats>,
    /// Per-core, per-period event rates: `core_samples[core][period]`.
    pub core_samples: Vec<Vec<EventRates>>,
    /// Processor-level power samples, one per period.
    pub power: Vec<PowerSample>,
    /// Sampling period in seconds.
    pub sample_period_s: f64,
    /// Index of the first post-warmup period.
    pub warmup_periods: usize,
    /// Total context switches across all cores.
    pub context_switches: u64,
    /// Total prefetch lines inserted (0 when prefetching is disabled).
    pub prefetches_issued: u64,
}

impl SimResult {
    /// Power samples from the post-warmup window only.
    pub fn settled_power(&self) -> &[PowerSample] {
        &self.power[self.warmup_periods.min(self.power.len())..]
    }

    /// Mean measured processor power over the post-warmup window.
    pub fn avg_measured_power(&self) -> f64 {
        let s = self.settled_power();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|p| p.measured_watts).sum::<f64>() / s.len() as f64
    }

    /// Per-core event rates for post-warmup periods:
    /// `rates[period - warmup][core]`.
    pub fn settled_core_rates(&self) -> Vec<Vec<EventRates>> {
        let start = self.warmup_periods;
        let periods = self.power.len();
        (start..periods).map(|p| self.core_samples.iter().map(|cs| cs[p]).collect()).collect()
    }

    /// Finds the stats of the process named `name`.
    pub fn process(&self, name: &str) -> Option<&ProcessStats> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Mean *ground-truth* processor power over the post-warmup window
    /// (no clamp/DAQ noise). Only a simulator can provide this; the
    /// differential validation harness uses it as the oracle the power
    /// model is judged against, separating model error from
    /// measurement-chain error.
    pub fn avg_true_power(&self) -> f64 {
        let s = self.settled_power();
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|p| p.true_watts).sum::<f64>() / s.len() as f64
    }

    /// Extracts, per process in placement order, the measured quantities
    /// the performance model predicts — the replay oracle for
    /// differential (model-vs-simulator) validation.
    pub fn oracle_observables(&self) -> Vec<OracleObservables> {
        self.processes
            .iter()
            .map(|p| OracleObservables {
                name: p.name.clone(),
                avg_ways: p.avg_ways,
                mpa: p.mpa(),
                spi: p.spi(),
                api: p.api(),
            })
            .collect()
    }
}

/// The per-process measurements a differential check compares model
/// predictions against: effective cache size `S_i` (time-averaged ways),
/// miss ratio `MPA_i`, speed `SPI_i`, and access rate `API_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleObservables {
    /// Display name from the [`ProcessSpec`].
    pub name: String,
    /// Time-averaged ways per set occupied in the shared L2.
    pub avg_ways: f64,
    /// L2 misses per L2 access.
    pub mpa: f64,
    /// Seconds per instruction while scheduled.
    pub spi: f64,
    /// L2 accesses per instruction.
    pub api: f64,
}

struct ProcState {
    pid: ProcessId,
    name: String,
    core: usize,
    gen: Box<dyn crate::process::AccessGenerator>,
    rng: ChaCha8Rng,
    counters: CounterSet,
    active_cycles: Cycles,
    occupancy_sum: f64,
    occupancy_snaps: u64,
}

struct CoreState {
    clock: Cycles,
    die: usize,
    procs: Vec<usize>,
    sched: Option<TimeSliceScheduler>,
    buckets: Vec<CounterSet>,
    /// Current HPC bucket (`clock / period_cycles`, capped at the
    /// overflow bucket) tracked incrementally so the per-step attribution
    /// needs no division.
    bucket: usize,
    /// Clock at which `bucket` advances (`(bucket + 1) * period_cycles`).
    bucket_edge: Cycles,
    done: bool,
}

/// Runs one simulation.
///
/// # Errors
///
/// Returns [`SimError`] if the placement does not match the machine's core
/// count, weights are malformed, or options are out of domain.
///
/// # Examples
///
/// See the `workloads` crate and `examples/quickstart.rs` for realistic
/// generators; a minimal run with an idle machine:
///
/// ```
/// use cmpsim::engine::{simulate, Placement, SimOptions};
/// use cmpsim::machine::MachineConfig;
///
/// # fn main() -> Result<(), cmpsim::engine::SimError> {
/// let m = MachineConfig::two_core_workstation();
/// let r = simulate(&m, Placement::idle(2), SimOptions { duration_s: 0.2, warmup_s: 0.0, ..Default::default() })?;
/// assert!(r.avg_measured_power() > 0.0); // idle power is still power
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    machine: &MachineConfig,
    placement: Placement,
    opts: SimOptions,
) -> Result<SimResult, SimError> {
    let num_cores = machine.num_cores();
    if placement.per_core.len() != num_cores {
        return Err(SimError::InvalidPlacement(format!(
            "placement has {} cores, machine has {num_cores}",
            placement.per_core.len()
        )));
    }
    if !opts.duration_s.is_finite() || opts.duration_s <= 0.0 {
        return Err(SimError::InvalidOptions("duration must be positive".into()));
    }
    if opts.warmup_s < 0.0 || opts.warmup_s >= opts.duration_s {
        return Err(SimError::InvalidOptions("warmup must lie in [0, duration)".into()));
    }
    if let Some(w) = &opts.weights {
        if w.len() != num_cores {
            return Err(SimError::InvalidOptions(format!(
                "weights cover {} cores, machine has {num_cores}",
                w.len()
            )));
        }
    }

    let end_cycles = (opts.duration_s * machine.freq_hz).round() as Cycles;
    let warmup_cycles = (opts.warmup_s * machine.freq_hz).round() as Cycles;
    let period_cycles = machine.sample_period_cycles().max(1);
    let num_buckets = (end_cycles / period_cycles) as usize;
    let timeslice = machine.timeslice_cycles().max(1);

    let mut master_rng = ChaCha8Rng::seed_from_u64(opts.seed);

    // Flatten processes; build cores.
    let mut procs: Vec<ProcState> = Vec::new();
    let mut cores: Vec<CoreState> = Vec::new();
    for (c, specs) in placement.per_core.into_iter().enumerate() {
        let die = machine.die_of(crate::types::CoreId(c as u32)).0 as usize;
        let mut idxs = Vec::new();
        for spec in specs {
            let pid = ProcessId(procs.len() as u32);
            idxs.push(procs.len());
            procs.push(ProcState {
                pid,
                name: spec.name,
                core: c,
                gen: spec.generator,
                rng: ChaCha8Rng::seed_from_u64(master_rng.gen()),
                counters: CounterSet::new(),
                active_cycles: 0,
                occupancy_sum: 0.0,
                occupancy_snaps: 0,
            });
        }
        let sched = if idxs.is_empty() {
            None
        } else {
            let weights: Vec<f64> = match &opts.weights {
                Some(w) => {
                    if w[c].len() != idxs.len() {
                        return Err(SimError::InvalidOptions(format!(
                            "core {c} has {} processes but {} weights",
                            idxs.len(),
                            w[c].len()
                        )));
                    }
                    w[c].clone()
                }
                None => vec![1.0; idxs.len()],
            };
            Some(
                TimeSliceScheduler::new(idxs.len(), timeslice, &weights)
                    .map_err(SimError::InvalidOptions)?,
            )
        };
        cores.push(CoreState {
            clock: 0,
            die,
            procs: idxs,
            sched,
            buckets: vec![CounterSet::new(); num_buckets + 1],
            bucket: 0,
            bucket_edge: period_cycles,
            done: false,
        });
    }

    let mut l2s: Vec<SetAssocCache> =
        (0..machine.dies).map(|_| SetAssocCache::new(machine.l2_sets, machine.l2_assoc)).collect();
    for &(pid, ways) in &opts.way_quotas {
        if pid as usize >= procs.len() {
            return Err(SimError::InvalidOptions(format!(
                "way quota for process {pid}, but only {} processes placed",
                procs.len()
            )));
        }
        if ways == 0 || ways > machine.l2_assoc {
            return Err(SimError::InvalidOptions(format!(
                "way quota {ways} out of range 1..={}",
                machine.l2_assoc
            )));
        }
        let die = cores[procs[pid as usize].core].die;
        l2s[die].set_way_quota(ProcessId(pid), ways);
    }
    let mut prefetchers: Vec<Option<NextLinePrefetcher>> =
        (0..machine.dies).map(|_| opts.prefetch.map(NextLinePrefetcher::new)).collect();

    // Idle cores are done from the start.
    for core in &mut cores {
        if core.procs.is_empty() {
            core.done = true;
        }
    }

    let mut next_snapshot: Cycles = period_cycles;
    let mut context_switches = 0u64;

    // Main event loop: always step the active core with the smallest clock.
    loop {
        let mut min_core: Option<usize> = None;
        let mut min_clock = Cycles::MAX;
        for (i, core) in cores.iter().enumerate() {
            if !core.done && core.clock < min_clock {
                min_clock = core.clock;
                min_core = Some(i);
            }
        }
        let Some(ci) = min_core else { break };

        // Occupancy snapshots keyed to the global frontier (the minimum
        // active clock), so every snapshot reflects a causally consistent
        // cache state.
        while min_clock >= next_snapshot {
            if next_snapshot >= warmup_cycles {
                for p in procs.iter_mut() {
                    let die = cores[p.core].die;
                    p.occupancy_sum += l2s[die].avg_ways_of(p.pid);
                    p.occupancy_snaps += 1;
                }
            }
            next_snapshot += period_cycles;
        }

        let core = &mut cores[ci];
        // Context switch check at step granularity.
        if let Some(sched) = &mut core.sched {
            if sched.maybe_switch(core.clock) {
                context_switches += 1;
            }
        }
        let pi = core.procs[core.sched.as_ref().map_or(0, |s| s.current())];
        let proc = &mut procs[pi];

        let step = proc.gen.next_step(&mut proc.rng);
        debug_assert!(
            step.instructions > 0 || step.access.is_some(),
            "generator produced a zero step"
        );
        let mut cycles =
            ((step.instructions as f64) * machine.cpi_base).round() as Cycles + step.stall_cycles;
        let mut misses = 0u64;
        let mut l2_refs = 0u64;
        let mut prefetches = 0u64;

        if let Some(addr) = step.access {
            l2_refs = 1;
            let outcome = l2s[core.die].access(addr, proc.pid);
            match outcome {
                crate::cache::AccessOutcome::Hit { prefetch_covered: false } => {
                    cycles += machine.l2_hit_cycles;
                }
                crate::cache::AccessOutcome::Hit { prefetch_covered: true } => {
                    // First touch of a prefetched line: the fill may still
                    // be in flight, so only part of the memory latency is
                    // hidden.
                    cycles += machine.prefetch_covered_cycles;
                }
                crate::cache::AccessOutcome::Miss { .. } => {
                    cycles += machine.mem_cycles;
                    misses = 1;
                }
            }
            if let Some(pf) = &mut prefetchers[core.die] {
                let issued = pf.observe(&mut l2s[core.die], proc.pid, addr);
                prefetches = issued;
                cycles += issued * machine.prefetch_issue_cycles;
            }
        }
        if cycles == 0 {
            cycles = 1; // guarantee progress even for degenerate steps
        }
        core.clock += cycles;

        let delta = CounterSet {
            instructions: step.instructions,
            l1_refs: step.l1_refs,
            l2_refs,
            l2_misses: misses,
            branches: step.branches,
            fp_ops: step.fp_ops,
            prefetches,
        };

        // Core-level HPC bucket (completion-time attribution).
        while core.clock >= core.bucket_edge && core.bucket < num_buckets {
            core.bucket += 1;
            core.bucket_edge += period_cycles;
        }
        core.buckets[core.bucket].merge(&delta);

        // Process-level post-warmup totals.
        if core.clock >= warmup_cycles {
            proc.counters.merge(&delta);
            proc.active_cycles += cycles;
        }

        if core.clock >= end_cycles {
            core.done = true;
        }
    }

    // Assemble per-core rates and power samples.
    let period_s = period_cycles as f64 / machine.freq_hz;
    let mut core_samples: Vec<Vec<EventRates>> = Vec::with_capacity(num_cores);
    for core in &cores {
        core_samples.push((0..num_buckets).map(|b| core.buckets[b].rates(period_s)).collect());
    }
    let mut power_rng = ChaCha8Rng::seed_from_u64(master_rng.gen());
    let mut power = Vec::with_capacity(num_buckets);
    let mut rates: Vec<EventRates> = Vec::with_capacity(num_cores);
    for b in 0..num_buckets {
        rates.clear();
        rates.extend(core_samples.iter().map(|cs| cs[b]));
        let true_watts = machine.power.processor_power(&rates);
        let measured_watts = measure_power(&machine.power, true_watts, period_s, &mut power_rng);
        power.push(PowerSample {
            period: b,
            t_start: b as f64 * period_s,
            true_watts,
            measured_watts,
        });
    }

    let prefetches_issued = procs.iter().map(|p| p.counters.prefetches).sum();
    let processes = procs
        .into_iter()
        .map(|p| ProcessStats {
            pid: p.pid,
            name: p.name,
            core: p.core,
            counters: p.counters,
            active_seconds: p.active_cycles as f64 / machine.freq_hz,
            avg_ways: if p.occupancy_snaps > 0 {
                p.occupancy_sum / p.occupancy_snaps as f64
            } else {
                0.0
            },
        })
        .collect();

    Ok(SimResult {
        processes,
        core_samples,
        power,
        sample_period_s: period_s,
        warmup_periods: (warmup_cycles / period_cycles) as usize,
        context_switches,
        prefetches_issued,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::testutil::CyclicGenerator;
    use crate::process::ProcessSpec;

    fn small_machine() -> MachineConfig {
        MachineConfig {
            l2_sets: 16,
            l2_assoc: 4,
            // Short slices so time-sharing tests see many switches within
            // a sub-second run.
            timeslice_s: 0.01,
            ..MachineConfig::two_core_workstation()
        }
    }

    fn cyclic(base: u64, footprint: u64, gap: u64) -> ProcessSpec {
        ProcessSpec::new(format!("cyc{base}"), Box::new(CyclicGenerator::new(base, footprint, gap)))
    }

    fn quick_opts() -> SimOptions {
        SimOptions { duration_s: 0.3, warmup_s: 0.1, seed: 7, ..Default::default() }
    }

    #[test]
    fn placement_validation() {
        let m = small_machine();
        let err = simulate(&m, Placement::idle(3), quick_opts()).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlacement(_)));
    }

    #[test]
    fn options_validation() {
        let m = small_machine();
        let bad = SimOptions { duration_s: 0.0, ..Default::default() };
        assert!(matches!(simulate(&m, Placement::idle(2), bad), Err(SimError::InvalidOptions(_))));
        let bad = SimOptions { duration_s: 1.0, warmup_s: 1.0, ..Default::default() };
        assert!(matches!(simulate(&m, Placement::idle(2), bad), Err(SimError::InvalidOptions(_))));
    }

    #[test]
    fn idle_machine_draws_idle_power() {
        let m = small_machine();
        let r = simulate(&m, Placement::idle(2), quick_opts()).unwrap();
        let expect = m.power.uncore_w + 2.0 * m.power.core_idle_w;
        assert!((r.avg_measured_power() - expect).abs() < 1.0, "{}", r.avg_measured_power());
        assert_eq!(r.processes.len(), 0);
        assert_eq!(r.context_switches, 0);
    }

    #[test]
    fn single_process_fits_in_cache() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Footprint 32 lines in a 64-line cache: after warmup, ~no misses.
        pl.assign(0, cyclic(0, 32, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let p = &r.processes[0];
        assert!(p.mpa() < 0.02, "mpa {}", p.mpa());
        assert!(p.counters.instructions > 0);
        // Occupancy: 32 lines over 16 sets = 2 ways.
        assert!((p.avg_ways - 2.0).abs() < 0.3, "ways {}", p.avg_ways);
    }

    #[test]
    fn oversized_footprint_always_misses() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Footprint 256 lines cycled in order through a 64-line LRU cache:
        // classic worst case, everything misses.
        pl.assign(0, cyclic(0, 256, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.processes[0].mpa() > 0.95, "mpa {}", r.processes[0].mpa());
    }

    #[test]
    fn misses_slow_a_process_down() {
        let m = small_machine();
        let mut fit = Placement::idle(2);
        fit.assign(0, cyclic(0, 32, 20)).unwrap();
        let mut thrash = Placement::idle(2);
        thrash.assign(0, cyclic(0, 1024, 20)).unwrap();
        let fast = simulate(&m, fit, quick_opts()).unwrap();
        let slow = simulate(&m, thrash, quick_opts()).unwrap();
        assert!(slow.processes[0].spi() > 2.0 * fast.processes[0].spi());
    }

    #[test]
    fn contention_splits_cache_between_cores() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        // Both want 48 of 64 lines; they must share.
        pl.assign(0, cyclic(0, 48, 20)).unwrap();
        pl.assign(1, cyclic(10_000, 48, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let w0 = r.processes[0].avg_ways;
        let w1 = r.processes[1].avg_ways;
        assert!(w0 + w1 <= m.l2_assoc as f64 + 1e-9);
        assert!(w0 > 0.5 && w1 > 0.5, "w0={w0} w1={w1}");
        // Symmetric demands -> roughly symmetric split.
        assert!((w0 - w1).abs() < 1.0, "w0={w0} w1={w1}");
        // Both now miss, unlike when running alone.
        assert!(r.processes[0].mpa() > 0.05);
    }

    #[test]
    fn time_sharing_context_switches() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20)).unwrap();
        pl.assign(0, cyclic(5_000, 16, 20)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.context_switches > 5, "{}", r.context_switches);
        // Both processes made progress.
        assert!(r.processes[0].counters.instructions > 0);
        assert!(r.processes[1].counters.instructions > 0);
        // Active time splits the post-warmup window roughly evenly.
        let ratio = r.processes[0].active_seconds / r.processes[1].active_seconds;
        assert!(ratio > 0.6 && ratio < 1.6, "{ratio}");
    }

    #[test]
    fn weighted_time_sharing() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 16, 20)).unwrap();
        pl.assign(0, cyclic(5_000, 16, 20)).unwrap();
        let opts = SimOptions { weights: Some(vec![vec![3.0, 1.0], vec![]]), ..quick_opts() };
        let r = simulate(&m, pl, opts).unwrap();
        let ratio = r.processes[0].active_seconds / r.processes[1].active_seconds;
        assert!(ratio > 2.0 && ratio < 4.5, "{ratio}");
    }

    #[test]
    fn busy_power_exceeds_idle_power() {
        let m = small_machine();
        let idle = simulate(&m, Placement::idle(2), quick_opts()).unwrap();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 32, 10)).unwrap();
        pl.assign(1, cyclic(10_000, 32, 10)).unwrap();
        let busy = simulate(&m, pl, quick_opts()).unwrap();
        assert!(busy.avg_measured_power() > idle.avg_measured_power() + 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = small_machine();
        let run = |seed| {
            let mut pl = Placement::idle(2);
            pl.assign(0, cyclic(0, 48, 20)).unwrap();
            pl.assign(1, cyclic(10_000, 24, 30)).unwrap();
            simulate(&m, pl, SimOptions { seed, ..quick_opts() }).unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a.processes[0].counters, b.processes[0].counters);
        assert_eq!(a.avg_measured_power(), b.avg_measured_power());
        // Different seed shifts the noise (power) even if counters agree.
        assert_ne!(a.avg_measured_power(), c.avg_measured_power());
    }

    #[test]
    fn sample_counts_match_duration() {
        let m = small_machine();
        let opts = SimOptions { duration_s: 0.31, warmup_s: 0.09, seed: 1, ..Default::default() };
        let r = simulate(&m, Placement::idle(2), opts).unwrap();
        // 0.31 s at 30 ms period -> 10 full periods; warmup 0.09 -> 3.
        assert_eq!(r.power.len(), 10);
        assert_eq!(r.warmup_periods, 3);
        assert_eq!(r.settled_power().len(), 7);
        assert_eq!(r.core_samples.len(), 2);
        assert_eq!(r.core_samples[0].len(), 10);
    }

    #[test]
    fn prefetch_helps_streaming_access() {
        let m = small_machine();
        // A pure streaming generator: every access is to the next line.
        struct Stream(u64);
        impl crate::process::AccessGenerator for Stream {
            fn next_step(&mut self, _rng: &mut dyn rand::RngCore) -> crate::process::Step {
                self.0 += 1;
                crate::process::Step {
                    instructions: 20,
                    l1_refs: 6,
                    branches: 2,
                    fp_ops: 4,
                    stall_cycles: 0,
                    access: Some(crate::types::LineAddr(self.0)),
                }
            }
            fn label(&self) -> &str {
                "stream"
            }
        }
        let mut off = Placement::idle(2);
        off.assign(0, ProcessSpec::new("s", Box::new(Stream(0)))).unwrap();
        let mut on = Placement::idle(2);
        on.assign(0, ProcessSpec::new("s", Box::new(Stream(0)))).unwrap();
        let base = simulate(&m, off, quick_opts()).unwrap();
        let pf = simulate(
            &m,
            on,
            SimOptions { prefetch: Some(PrefetchConfig::default()), ..quick_opts() },
        )
        .unwrap();
        assert!(pf.prefetches_issued > 0);
        assert!(
            pf.processes[0].spi() < 0.9 * base.processes[0].spi(),
            "prefetch {} vs base {}",
            pf.processes[0].spi(),
            base.processes[0].spi()
        );
    }

    #[test]
    fn process_lookup_by_name() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 8, 10)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        assert!(r.process("cyc0").is_some());
        assert!(r.process("nope").is_none());
    }

    #[test]
    fn oracle_observables_mirror_process_stats() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 48, 20)).unwrap();
        pl.assign(1, cyclic(10_000, 24, 30)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let oracle = r.oracle_observables();
        assert_eq!(oracle.len(), r.processes.len());
        for (o, p) in oracle.iter().zip(&r.processes) {
            assert_eq!(o.name, p.name);
            assert_eq!(o.avg_ways, p.avg_ways);
            assert_eq!(o.mpa, p.mpa());
            assert_eq!(o.spi, p.spi());
            assert_eq!(o.api, p.api());
            assert!(o.avg_ways > 0.0 && o.mpa >= 0.0 && o.spi > 0.0);
        }
    }

    #[test]
    fn true_power_tracks_measured_power() {
        let m = small_machine();
        let mut pl = Placement::idle(2);
        pl.assign(0, cyclic(0, 32, 10)).unwrap();
        let r = simulate(&m, pl, quick_opts()).unwrap();
        let truth = r.avg_true_power();
        let measured = r.avg_measured_power();
        assert!(truth > 0.0);
        // The measurement chain adds noise and quantization, not bias:
        // averages must stay within a watt of each other here.
        assert!((truth - measured).abs() < 1.0, "true {truth} vs measured {measured}");
    }
}
