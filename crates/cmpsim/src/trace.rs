//! Trace capture, replay, and trace-driven cache analysis.
//!
//! The paper contrasts its on-line approach with trace-driven simulation
//! (Dinero IV, its reference [1]). This module provides that classic
//! substrate: any [`AccessGenerator`] can be wrapped in a
//! [`TraceRecorder`] to capture its step stream, traces can be saved to /
//! loaded from a simple line-oriented text format, replayed bit-exactly
//! through the engine via [`TraceReplayer`], or analyzed directly with
//! the trace-driven utilities ([`miss_ratio_curve`],
//! [`stack_distance_histogram`]).

use crate::process::{AccessGenerator, Step};
use crate::types::LineAddr;
use rand::RngCore;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Mutex};

/// A captured step stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    steps: Vec<Step>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Just the memory accesses (steps without an access are skipped).
    pub fn accesses(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.steps.iter().filter_map(|s| s.access)
    }

    /// Appends a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Mutable access to the recorded steps (trace editing, fault
    /// injection).
    pub fn steps_mut(&mut self) -> &mut Vec<Step> {
        &mut self.steps
    }

    /// Serializes the trace to `w` in the text format
    /// `instructions l1 branches fp stall addr`, one step per line, with
    /// `-` for steps that carry no access. A mutable reference to a
    /// writer also works (`&mut w`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_text<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for s in &self.steps {
            match s.access {
                Some(a) => writeln!(
                    w,
                    "{} {} {} {} {} {:#x}",
                    s.instructions, s.l1_refs, s.branches, s.fp_ops, s.stall_cycles, a.0
                )?,
                None => writeln!(
                    w,
                    "{} {} {} {} {} -",
                    s.instructions, s.l1_refs, s.branches, s.fp_ops, s.stall_cycles
                )?,
            }
        }
        Ok(())
    }

    /// Parses a trace from the text format written by
    /// [`Trace::write_text`]. Blank lines and lines starting with `#` are
    /// ignored. A mutable reference to a reader also works (`&mut r`).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed lines and propagates reader
    /// I/O errors.
    pub fn read_text<R: Read>(r: R) -> std::io::Result<Self> {
        let mut steps = Vec::new();
        for (lineno, line) in BufReader::new(r).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut next_u64 = |what: &str| -> std::io::Result<u64> {
                parts
                    .next()
                    .ok_or_else(|| malformed(lineno, &format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| malformed(lineno, &format!("bad {what}")))
            };
            let instructions = next_u64("instructions")?;
            let l1_refs = next_u64("l1_refs")?;
            let branches = next_u64("branches")?;
            let fp_ops = next_u64("fp_ops")?;
            let stall_cycles = next_u64("stall_cycles")?;
            let access = match parts.next() {
                Some("-") => None,
                Some(tok) => {
                    let raw = tok.strip_prefix("0x").unwrap_or(tok);
                    Some(LineAddr(
                        u64::from_str_radix(raw, 16)
                            .map_err(|_| malformed(lineno, "bad address"))?,
                    ))
                }
                None => return Err(malformed(lineno, "missing address column")),
            };
            if parts.next().is_some() {
                return Err(malformed(lineno, "trailing tokens"));
            }
            steps.push(Step { instructions, l1_refs, branches, fp_ops, stall_cycles, access });
        }
        Ok(Trace { steps })
    }
}

fn malformed(lineno: usize, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("trace line {}: {what}", lineno + 1),
    )
}

impl FromIterator<Step> for Trace {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        Trace { steps: iter.into_iter().collect() }
    }
}

/// Wraps a generator and records every step it produces into a shared
/// [`Trace`] buffer while passing the steps through unchanged.
///
/// # Examples
///
/// ```
/// use cmpsim::process::{AccessGenerator, Step};
/// use cmpsim::trace::TraceRecorder;
/// use cmpsim::types::LineAddr;
/// use rand::SeedableRng;
///
/// struct Ticker(u64);
/// impl AccessGenerator for Ticker {
///     fn next_step(&mut self, _rng: &mut dyn rand::RngCore) -> Step {
///         self.0 += 1;
///         Step { instructions: 4, access: Some(LineAddr(self.0)), ..Default::default() }
///     }
///     fn label(&self) -> &str { "ticker" }
/// }
///
/// let (mut rec, handle) = TraceRecorder::new(Box::new(Ticker(0)));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// for _ in 0..10 {
///     rec.next_step(&mut rng);
/// }
/// assert_eq!(handle.lock().unwrap().len(), 10);
/// ```
pub struct TraceRecorder {
    inner: Box<dyn AccessGenerator>,
    buffer: Arc<Mutex<Trace>>,
    label: String,
}

impl TraceRecorder {
    /// Wraps `inner`; returns the recorder and a shared handle to the
    /// growing trace.
    pub fn new(inner: Box<dyn AccessGenerator>) -> (Self, Arc<Mutex<Trace>>) {
        let buffer = Arc::new(Mutex::new(Trace::new()));
        let label = format!("rec({})", inner.label());
        (TraceRecorder { inner, buffer: Arc::clone(&buffer), label }, buffer)
    }
}

impl AccessGenerator for TraceRecorder {
    fn next_step(&mut self, rng: &mut dyn RngCore) -> Step {
        let step = self.inner.next_step(rng);
        // Recover from a poisoned lock: a panic in another recording
        // thread should cost that thread's steps, not this one's.
        let mut buffer = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
        buffer.push(step);
        step
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Replays a recorded trace as a generator, bit-exactly and independent
/// of the RNG. When the trace is exhausted it loops from the start (an
/// empty trace yields idle single-instruction steps).
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: Trace,
    idx: usize,
    label: String,
}

impl TraceReplayer {
    /// Creates a replayer over `trace`.
    pub fn new(trace: Trace) -> Self {
        TraceReplayer { trace, idx: 0, label: "replay".into() }
    }

    /// How many full passes plus steps have been replayed.
    pub fn position(&self) -> usize {
        self.idx
    }
}

impl AccessGenerator for TraceReplayer {
    fn next_step(&mut self, _rng: &mut dyn RngCore) -> Step {
        if self.trace.is_empty() {
            return Step { instructions: 1, ..Default::default() };
        }
        let step = self.trace.steps()[self.idx % self.trace.len()];
        self.idx += 1;
        step
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Trace-driven miss-ratio curve: the demand miss ratio of the address
/// stream on single-owner LRU caches of `assoc = 1..=max_assoc` ways
/// (`num_sets` fixed) — the Dinero-style sweep.
///
/// Returns `mrc[a - 1]` = miss ratio at associativity `a`. Empty input
/// yields an all-zero curve.
pub fn miss_ratio_curve(addrs: &[LineAddr], num_sets: usize, max_assoc: usize) -> Vec<f64> {
    assert!(num_sets > 0, "need at least one set");
    assert!(max_assoc > 0, "need at least one way");
    let hist = stack_distance_histogram(addrs, num_sets);
    let total = addrs.len() as f64;
    if addrs.is_empty() {
        return vec![0.0; max_assoc];
    }
    // Misses at assoc a = accesses with stack position > a (incl. cold).
    (1..=max_assoc)
        .map(|a| {
            let hits: u64 = hist.iter().take(a).sum();
            (total - hits as f64) / total
        })
        .collect()
}

/// Exact per-set LRU stack-position counts of a trace: `hist[p - 1]`
/// counts accesses whose line was the `p`-th most recently used in its
/// set (cold/deeper accesses are not counted — they are the residual
/// `len - sum(hist)`). The histogram is truncated at `p = 64`.
pub fn stack_distance_histogram(addrs: &[LineAddr], num_sets: usize) -> Vec<u64> {
    assert!(num_sets > 0, "need at least one set");
    const DEPTH: usize = 64;
    let mut stacks: Vec<Vec<LineAddr>> = (0..num_sets).map(|_| Vec::with_capacity(DEPTH)).collect();
    let mut hist = vec![0u64; DEPTH];
    for &addr in addrs {
        let set = (addr.0 % num_sets as u64) as usize;
        let stack = &mut stacks[set];
        // Promote to MRU with one rotation: shift the slots above the hit
        // (or the whole stack on a miss) right by one and write the
        // address at the top. One memmove per access instead of the
        // `remove` + `insert(0, …)` pair.
        match stack.iter().position(|&a| a == addr) {
            Some(pos) => {
                hist[pos] += 1;
                stack.copy_within(0..pos, 1);
                stack[0] = addr;
            }
            None => {
                if stack.len() < DEPTH {
                    stack.push(addr);
                }
                let last = stack.len() - 1;
                stack.copy_within(0..last, 1);
                stack[0] = addr;
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::testutil::CyclicGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn step(instr: u64, addr: Option<u64>) -> Step {
        Step {
            instructions: instr,
            l1_refs: instr / 3,
            branches: 1,
            fp_ops: 0,
            stall_cycles: 0,
            access: addr.map(LineAddr),
        }
    }

    #[test]
    fn text_roundtrip() {
        let trace: Trace =
            [step(10, Some(0xabc)), step(5, None), step(7, Some(0))].into_iter().collect();
        let mut buf = Vec::new();
        trace.write_text(&mut buf).unwrap();
        let back = Trace::read_text(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn text_format_tolerates_comments_and_blanks() {
        let text = "# a comment\n\n10 3 1 0 0 0xff\n5 1 1 0 2 -\n";
        let t = Trace::read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.steps()[0].access, Some(LineAddr(0xff)));
        assert_eq!(t.steps()[1].access, None);
        assert_eq!(t.steps()[1].stall_cycles, 2);
    }

    #[test]
    fn text_format_rejects_garbage() {
        assert!(Trace::read_text("1 2 3".as_bytes()).is_err());
        assert!(Trace::read_text("a b c d e f".as_bytes()).is_err());
        assert!(Trace::read_text("1 2 3 4 5 0xZZ".as_bytes()).is_err());
        assert!(Trace::read_text("1 2 3 4 5 - extra".as_bytes()).is_err());
    }

    #[test]
    fn recorder_captures_passthrough() {
        let gen = CyclicGenerator::new(100, 4, 10);
        let (mut rec, handle) = TraceRecorder::new(Box::new(gen));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let emitted: Vec<Step> = (0..8).map(|_| rec.next_step(&mut rng)).collect();
        let captured = handle.lock().unwrap().clone();
        assert_eq!(captured.steps(), emitted.as_slice());
        assert!(rec.label().contains("cyclic"));
    }

    #[test]
    fn replayer_is_deterministic_and_loops() {
        let trace: Trace = [step(1, Some(1)), step(2, Some(2))].into_iter().collect();
        let mut rep = TraceReplayer::new(trace.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<Step> = (0..4).map(|_| rep.next_step(&mut rng)).collect();
        assert_eq!(first[0], trace.steps()[0]);
        assert_eq!(first[2], trace.steps()[0], "must loop");
        assert_eq!(rep.position(), 4);
    }

    #[test]
    fn empty_replayer_yields_idle_steps() {
        let mut rep = TraceReplayer::new(Trace::new());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let s = rep.next_step(&mut rng);
        assert_eq!(s.instructions, 1);
        assert!(s.access.is_none());
    }

    #[test]
    fn stack_distance_histogram_counts_positions() {
        // Cyclic over 3 lines in one set: after warmup, every access is at
        // position 3.
        let addrs: Vec<LineAddr> = (0..30).map(|i| LineAddr((i % 3) * 4)).collect();
        let hist = stack_distance_histogram(&addrs, 4);
        assert_eq!(hist[2], 27); // 30 accesses, 3 cold
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn miss_ratio_curve_matches_lru_semantics() {
        let addrs: Vec<LineAddr> = (0..40).map(|i| LineAddr((i % 4) * 8)).collect();
        // One set (num_sets 1 via modulo 1? use 1 set): cyclic over 4
        // lines: misses everywhere below assoc 4, nearly none at 4+.
        let mrc = miss_ratio_curve(&addrs, 1, 6);
        assert!(mrc[2] > 0.85, "assoc 3 thrashes: {}", mrc[2]);
        assert!(mrc[3] < 0.15, "assoc 4 fits: {}", mrc[3]);
        assert!(mrc[5] <= mrc[3] + 1e-12);
        // Monotone non-increasing.
        for w in mrc.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn miss_ratio_curve_empty_trace() {
        assert_eq!(miss_ratio_curve(&[], 4, 3), vec![0.0; 3]);
    }

    #[test]
    fn record_then_replay_produces_identical_cache_behaviour() {
        use crate::cache::SetAssocCache;
        use crate::types::ProcessId;
        let gen = CyclicGenerator::new(0, 20, 5);
        let (mut rec, handle) = TraceRecorder::new(Box::new(gen));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut cache_a = SetAssocCache::new(8, 2);
        let mut hits_a = 0;
        for _ in 0..100 {
            if let Some(a) = rec.next_step(&mut rng).access {
                hits_a += u64::from(cache_a.access(a, ProcessId(0)).is_hit());
            }
        }
        let trace = handle.lock().unwrap().clone();
        let mut rep = TraceReplayer::new(trace);
        let mut cache_b = SetAssocCache::new(8, 2);
        let mut hits_b = 0;
        for _ in 0..100 {
            if let Some(a) = rep.next_step(&mut rng).access {
                hits_b += u64::from(cache_b.access(a, ProcessId(0)).is_hit());
            }
        }
        assert_eq!(hits_a, hits_b);
    }
}
