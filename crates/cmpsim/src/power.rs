//! Ground-truth power synthesis and the simulated measurement chain.
//!
//! The paper measures processor power with a Fluke i30 current clamp on a
//! 12 V supply line, sampled at 10 kHz by an NI USB-6210 DAQ, assuming a
//! fixed 90 % regulator efficiency (`P = 0.9 * 12 V * I = 10.8 * I`).
//!
//! We reproduce that chain end to end:
//!
//! 1. A hidden **ground-truth** per-core power function turns event rates
//!    into watts. It is deliberately *not* a member of the fitted model
//!    family (Eq. 9): it depends on instruction throughput (absent from the
//!    paper's five features) and contains a saturating interaction term, so
//!    the MVLR fit quality reported by the experiments is a genuine result
//!    rather than a tautology. The dependence on IPS is also what makes the
//!    fitted L2MPS coefficient come out *negative* — misses stall the core,
//!    suppressing instruction power, exactly the effect the paper notes
//!    ("increased cache contention leads to lower processor power
//!    consumption because c3 is negative").
//! 2. The processor power (cores + uncore) is converted to a 12 V supply
//!    current, corrupted with sensor noise, quantized by the DAQ's ADC, and
//!    averaged over each sampling period, then converted back with the
//!    nominal `10.8 * I` formula.

use crate::hpc::EventRates;
use rand::Rng;

/// Ground-truth power parameters for one machine.
///
/// All energy constants are joules per event, calibrated to the scaled
/// clock (see [`crate::machine`] docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Power of a core with no process scheduled (W).
    pub core_idle_w: f64,
    /// Constant uncore/package power (W) — always present.
    pub uncore_w: f64,
    /// Energy per instruction (J).
    pub e_inst: f64,
    /// Energy per L1 data reference (J).
    pub e_l1: f64,
    /// Energy per L2 reference (J).
    pub e_l2: f64,
    /// Energy per L2 miss (J) — bus/DRAM-interface activity.
    pub e_miss: f64,
    /// Energy per branch (J).
    pub e_branch: f64,
    /// Energy per floating-point operation (J).
    pub e_fp: f64,
    /// Strength of the saturating IPS x L1RPS interaction term (J).
    pub gamma_interact: f64,
    /// DRAM-interface term: watts per sqrt(L2 misses/second). Square-root
    /// laws are common for mixed static/dynamic interface power and are
    /// deliberately outside the Eq. 9 linear family.
    pub kappa_miss_sqrt: f64,
    /// Watts shed by clock gating when the core is fully stalled on
    /// memory. Stalls scale with the miss rate, so this term is what makes
    /// a fitted L2MPS coefficient come out negative (the paper's c3 < 0).
    pub stall_gating_w: f64,
    /// Seconds of pipeline stall caused by one L2 miss (memory latency
    /// over clock frequency).
    pub stall_s_per_miss: f64,
    /// Std-dev of slow per-period power disturbance (W) — thermal and
    /// VR-operating-point wander the clamp cannot distinguish from load.
    pub sigma_disturbance_w: f64,
    /// Std-dev of clamp sensor noise per DAQ sample (A).
    pub sigma_sensor_a: f64,
}

impl PowerParams {
    /// Ground truth for the Q6600-like 4-core server (~105 W nominal TDP).
    pub fn quad_server() -> Self {
        PowerParams {
            core_idle_w: 6.0,
            uncore_w: 20.0,
            e_inst: 3.4e-7,
            e_l1: 4.0e-7,
            e_l2: 7.5e-6,
            e_miss: 9.0e-6,
            e_branch: 4.0e-7,
            e_fp: 5.0e-7,
            gamma_interact: 5.0e-7,
            kappa_miss_sqrt: 0.004,
            stall_gating_w: 3.0,
            stall_s_per_miss: 240.0 / 2.4e7,
            sigma_disturbance_w: 0.8,
            sigma_sensor_a: 0.02,
        }
    }

    /// Ground truth for the E2220-like 2-core workstation (~65 W class).
    pub fn dual_workstation() -> Self {
        PowerParams {
            core_idle_w: 5.0,
            uncore_w: 14.0,
            e_inst: 3.0e-7,
            e_l1: 3.5e-7,
            e_l2: 6.5e-6,
            e_miss: 8.0e-6,
            e_branch: 3.5e-7,
            e_fp: 4.5e-7,
            gamma_interact: 4.5e-7,
            kappa_miss_sqrt: 0.0035,
            stall_gating_w: 2.5,
            stall_s_per_miss: 220.0 / 2.4e7,
            sigma_disturbance_w: 0.6,
            sigma_sensor_a: 0.02,
        }
    }

    /// Ground truth for the P6800-like duo laptop (~25 W class).
    pub fn duo_laptop() -> Self {
        PowerParams {
            core_idle_w: 2.5,
            uncore_w: 7.0,
            e_inst: 1.5e-7,
            e_l1: 1.8e-7,
            e_l2: 3.5e-6,
            e_miss: 4.5e-6,
            e_branch: 1.8e-7,
            e_fp: 2.2e-7,
            gamma_interact: 2.5e-7,
            kappa_miss_sqrt: 0.002,
            stall_gating_w: 1.2,
            stall_s_per_miss: 240.0 / 2.4e7,
            sigma_disturbance_w: 0.3,
            sigma_sensor_a: 0.015,
        }
    }

    /// True (noise-free) power of one core given its event rates.
    pub fn core_power(&self, r: &EventRates) -> f64 {
        let linear = self.e_inst * r.ips
            + self.e_l1 * r.l1rps
            + self.e_l2 * r.l2rps
            + self.e_miss * r.l2mps
            + self.e_branch * r.brps
            + self.e_fp * r.fpps;
        // Saturating interaction: simultaneous high issue and high L1
        // traffic heats shared structures superlinearly at first, then
        // saturates. Not representable by Eq. 9's linear form.
        let interact = if r.ips + r.l1rps > 0.0 {
            self.gamma_interact * (r.ips * r.l1rps) / (r.ips + r.l1rps)
        } else {
            0.0
        };
        let dram_interface = self.kappa_miss_sqrt * r.l2mps.sqrt();
        // Clock gating sheds power in proportion to the fraction of time
        // the core sits stalled on memory.
        let stall_fraction = (r.l2mps * self.stall_s_per_miss).min(1.0);
        let gating = self.stall_gating_w * stall_fraction;
        (self.core_idle_w + linear + interact + dram_interface - gating).max(0.0)
    }

    /// True processor power for a set of per-core rates (idle cores should
    /// be passed as all-zero rates).
    pub fn processor_power(&self, cores: &[EventRates]) -> f64 {
        self.uncore_w + cores.iter().map(|r| self.core_power(r)).sum::<f64>()
    }
}

/// Nominal rail voltage the paper's clamp measures (V).
pub const RAIL_VOLTS: f64 = 12.0;
/// Assumed voltage-regulator efficiency (paper: 90 %).
pub const REGULATOR_EFFICIENCY: f64 = 0.9;
/// DAQ sampling frequency (paper: 10 kHz).
pub const DAQ_HZ: f64 = 10_000.0;
/// DAQ full-scale current range (A) for quantization.
pub const DAQ_RANGE_A: f64 = 20.0;
/// DAQ resolution in bits (NI USB-6210: 16-bit; we model 12 effective).
pub const DAQ_EFFECTIVE_BITS: u32 = 12;

/// Simulates the clamp + DAQ measurement of a constant true power level
/// over one sampling period of `period_s` seconds, returning the measured
/// power `10.8 * mean(I)` the experiment pipeline sees.
///
/// `rng` supplies the sensor noise and the per-period disturbance.
pub fn measure_power<R: Rng + ?Sized>(
    params: &PowerParams,
    true_watts: f64,
    period_s: f64,
    rng: &mut R,
) -> f64 {
    // Slow disturbance: one draw per period.
    let disturbed = (true_watts + gaussian(rng, params.sigma_disturbance_w)).max(0.0);
    // True current drawn from the 12 V rail ahead of the regulator.
    let true_current = disturbed / (REGULATOR_EFFICIENCY * RAIL_VOLTS);
    // Average of n quantized noisy DAQ samples. Sampling is i.i.d., so we
    // draw the mean of n Gaussians directly (sigma / sqrt(n)) and then
    // apply quantization once — indistinguishable in distribution from the
    // per-sample loop for the magnitudes involved, and far cheaper.
    let n = (period_s * DAQ_HZ).max(1.0);
    let mean_noise = gaussian(rng, params.sigma_sensor_a / n.sqrt());
    let step = DAQ_RANGE_A / (1u64 << DAQ_EFFECTIVE_BITS) as f64;
    let quantized = ((true_current + mean_noise) / step).round() * step;
    REGULATOR_EFFICIENCY * RAIL_VOLTS * quantized
}

/// Draws a zero-mean Gaussian with the given standard deviation using the
/// Box–Muller transform (keeps us off `rand_distr`).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    // lint:allow(nan_safe) -- exact sentinel: sigma == 0 short-circuits the noiseless case; a NaN sigma falls through and surfaces as NaN output
    if sigma == 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn busy_rates() -> EventRates {
        EventRates {
            ips: 2.2e7,
            l1rps: 7.0e6,
            l2rps: 2.0e5,
            l2mps: 5.0e4,
            brps: 3.3e6,
            fpps: 2.0e6,
        }
    }

    #[test]
    fn idle_core_draws_idle_power() {
        let p = PowerParams::quad_server();
        assert_eq!(p.core_power(&EventRates::default()), p.core_idle_w);
    }

    #[test]
    fn busy_core_power_is_plausible() {
        let p = PowerParams::quad_server();
        let w = p.core_power(&busy_rates());
        assert!(w > p.core_idle_w + 5.0, "busy core should be well above idle: {w}");
        assert!(w < 40.0, "single core should stay below 40 W: {w}");
    }

    #[test]
    fn processor_power_sums_cores_and_uncore() {
        let p = PowerParams::quad_server();
        let idle4 = p.processor_power(&[EventRates::default(); 4]);
        assert!((idle4 - (p.uncore_w + 4.0 * p.core_idle_w)).abs() < 1e-9);
        let busy = p.processor_power(&[busy_rates(); 4]);
        assert!(busy > idle4 + 20.0);
        assert!(busy < 160.0, "{busy}");
    }

    #[test]
    fn interaction_term_is_bounded_by_min_rate() {
        // (a*b)/(a+b) <= min(a, b), so the interaction can never blow up.
        let p = PowerParams { gamma_interact: 1.0, ..PowerParams::quad_server() };
        let r = EventRates { ips: 5.0, l1rps: 1e12, ..Default::default() };
        let w = p.core_power(&r);
        let base = PowerParams { gamma_interact: 0.0, ..p.clone() }.core_power(&r);
        assert!(w - base <= 5.0 + 1e-6);
    }

    #[test]
    fn measurement_is_close_to_truth_on_average() {
        let p = PowerParams::quad_server();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let truth = 80.0;
        let n = 400;
        let mean: f64 =
            (0..n).map(|_| measure_power(&p, truth, 0.030, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - truth).abs() < 0.2, "mean measured {mean} vs {truth}");
    }

    #[test]
    fn measurement_has_nonzero_noise() {
        let p = PowerParams::quad_server();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = measure_power(&p, 80.0, 0.030, &mut rng);
        let b = measure_power(&p, 80.0, 0.030, &mut rng);
        assert_ne!(a, b);
        assert!((a - 80.0).abs() < 3.0);
    }

    #[test]
    fn measurement_never_negative() {
        let p = PowerParams::quad_server();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Quantization can yield zero or dip one ADC step below it when
        // sensor noise straddles the lowest code, never more than that.
        let step_w =
            REGULATOR_EFFICIENCY * RAIL_VOLTS * DAQ_RANGE_A / (1u64 << DAQ_EFFECTIVE_BITS) as f64;
        for _ in 0..100 {
            let m = measure_power(&p, 0.05, 0.030, &mut rng);
            assert!(m >= -step_w - 1e-12, "{m}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "{mean}");
        assert!((var - 4.0).abs() < 0.2, "{var}");
        assert_eq!(gaussian(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn machine_classes_are_ordered_by_power() {
        let server = PowerParams::quad_server();
        let ws = PowerParams::dual_workstation();
        let duo = PowerParams::duo_laptop();
        let r = busy_rates();
        assert!(server.core_power(&r) > ws.core_power(&r));
        assert!(ws.core_power(&r) > duo.core_power(&r));
    }
}
