//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes a set of corruptions — bit-flipped trace
//! addresses, truncated or torn trace files, dropped HPC samples, NaN or
//! negative mass injected into histograms — and applies them
//! reproducibly from a seed. The robustness test suite uses it to prove
//! that every injected fault surfaces as a typed error or a finite
//! degraded prediction, never as a panic.
//!
//! This module is compiled only with the `faults` cargo feature;
//! production builds carry none of this machinery.

use crate::trace::Trace;
use crate::types::LineAddr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One kind of injected corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Replace each recorded trace address with a random one, with the
    /// given probability per access.
    CorruptTraceAddresses {
        /// Per-access corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Keep only the leading fraction of the trace's steps.
    TruncateTrace {
        /// Fraction of steps to keep, in `[0, 1]`.
        keep_fraction: f64,
    },
    /// Overwrite random bytes of a serialized artifact (a torn or
    /// bit-rotted file on disk).
    ScrambleText {
        /// Number of bytes to overwrite.
        bytes: usize,
    },
    /// Drop measurement samples (an HPC reader losing interrupts), with
    /// the given probability per sample.
    DropSamples {
        /// Per-sample drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Overwrite histogram bins with NaN.
    NanHistogram {
        /// Number of bins to poison.
        count: usize,
    },
    /// Negate histogram bins (impossible probability mass).
    NegateHistogram {
        /// Number of bins to negate.
        count: usize,
    },
}

/// A seeded, reproducible set of faults.
///
/// Each `apply_*` method derives its own RNG stream from the plan seed,
/// so the corruption a given fault produces does not depend on which
/// other faults are in the plan or the order they are applied in.
///
/// # Examples
///
/// ```
/// use cmpsim::faults::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new(7)
///     .with(Fault::NanHistogram { count: 2 })
///     .with(Fault::DropSamples { rate: 0.5 });
/// let mut probs = vec![0.25; 4];
/// plan.apply_to_histogram(&mut probs);
/// assert_eq!(probs.iter().filter(|p| p.is_nan()).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan reproducible from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in this plan, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn rng(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Applies every trace-shaped fault in the plan to `trace`
    /// ([`Fault::CorruptTraceAddresses`], [`Fault::TruncateTrace`]).
    pub fn apply_to_trace(&self, trace: &mut Trace) {
        for (i, fault) in self.faults.iter().enumerate() {
            let mut rng = self.rng(0x7_2ACE ^ i as u64);
            match *fault {
                Fault::CorruptTraceAddresses { rate } => {
                    for step in trace.steps_mut().iter_mut() {
                        if step.access.is_some() && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            step.access = Some(LineAddr(rng.gen::<u64>()));
                        }
                    }
                }
                Fault::TruncateTrace { keep_fraction } => {
                    let keep = (trace.len() as f64 * keep_fraction.clamp(0.0, 1.0)) as usize;
                    trace.steps_mut().truncate(keep);
                }
                _ => {}
            }
        }
    }

    /// Applies [`Fault::ScrambleText`] faults to a serialized artifact,
    /// returning the corrupted text. Overwritten bytes are drawn from a
    /// set that includes digits, punctuation, and letters, so the result
    /// exercises parsers with plausible-looking garbage.
    pub fn corrupt_text(&self, text: &str) -> String {
        let mut bytes_vec = text.as_bytes().to_vec();
        for (i, fault) in self.faults.iter().enumerate() {
            if let Fault::ScrambleText { bytes } = *fault {
                let mut rng = self.rng(0x7E_C7 ^ i as u64);
                const GARBAGE: &[u8] = b"x?~9-#.Zq!";
                for _ in 0..bytes {
                    if bytes_vec.is_empty() {
                        break;
                    }
                    let pos = rng.gen_range(0..bytes_vec.len());
                    let g = GARBAGE[rng.gen_range(0..GARBAGE.len())];
                    bytes_vec[pos] = g;
                }
            }
        }
        // The source was UTF-8 and every replacement byte is ASCII.
        String::from_utf8_lossy(&bytes_vec).into_owned()
    }

    /// Applies [`Fault::DropSamples`] faults to a sample series (power
    /// readings, HPC rate samples).
    pub fn apply_to_samples<T>(&self, samples: &mut Vec<T>) {
        for (i, fault) in self.faults.iter().enumerate() {
            if let Fault::DropSamples { rate } = *fault {
                let mut rng = self.rng(0x5A_4F ^ i as u64);
                samples.retain(|_| !rng.gen_bool(rate.clamp(0.0, 1.0)));
            }
        }
    }

    /// Applies histogram-shaped faults ([`Fault::NanHistogram`],
    /// [`Fault::NegateHistogram`]) to a probability vector.
    pub fn apply_to_histogram(&self, probs: &mut [f64]) {
        if probs.is_empty() {
            return;
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let mut rng = self.rng(0x41_57 ^ i as u64);
            match *fault {
                Fault::NanHistogram { count } => {
                    for _ in 0..count.min(probs.len()) {
                        let pos = rng.gen_range(0..probs.len());
                        probs[pos] = f64::NAN;
                    }
                }
                Fault::NegateHistogram { count } => {
                    for _ in 0..count.min(probs.len()) {
                        let pos = rng.gen_range(0..probs.len());
                        probs[pos] = -probs[pos].abs().max(0.1);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Step;

    fn sample_trace(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(Step {
                instructions: 10,
                l1_refs: 3,
                branches: 2,
                fp_ops: 1,
                stall_cycles: 0,
                access: Some(LineAddr(i as u64 * 64)),
            });
        }
        t
    }

    #[test]
    fn plans_are_deterministic() {
        let plan = FaultPlan::new(42).with(Fault::CorruptTraceAddresses { rate: 0.5 });
        let mut a = sample_trace(100);
        let mut b = sample_trace(100);
        plan.apply_to_trace(&mut a);
        plan.apply_to_trace(&mut b);
        assert_eq!(a, b);
        // A different seed corrupts differently.
        let mut c = sample_trace(100);
        FaultPlan::new(43).with(Fault::CorruptTraceAddresses { rate: 0.5 }).apply_to_trace(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn truncation_keeps_fraction() {
        let plan = FaultPlan::new(1).with(Fault::TruncateTrace { keep_fraction: 0.25 });
        let mut t = sample_trace(100);
        plan.apply_to_trace(&mut t);
        assert_eq!(t.len(), 25);
    }

    #[test]
    fn scramble_changes_text_same_length() {
        let plan = FaultPlan::new(9).with(Fault::ScrambleText { bytes: 8 });
        let text = "0 1 2 3 4 0x40\n".repeat(20);
        let out = plan.corrupt_text(&text);
        assert_eq!(out.len(), text.len());
        assert_ne!(out, text);
        assert_eq!(out, plan.corrupt_text(&text), "deterministic");
    }

    #[test]
    fn drop_samples_thins_series() {
        let plan = FaultPlan::new(3).with(Fault::DropSamples { rate: 0.5 });
        let mut s: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        plan.apply_to_samples(&mut s);
        assert!(s.len() > 300 && s.len() < 700, "dropped ~half, got {}", s.len());
    }

    #[test]
    fn histogram_poisoning() {
        let mut probs = vec![0.25; 8];
        FaultPlan::new(5).with(Fault::NanHistogram { count: 1 }).apply_to_histogram(&mut probs);
        assert!(probs.iter().any(|p| p.is_nan()));

        let mut probs = vec![0.25; 8];
        FaultPlan::new(5).with(Fault::NegateHistogram { count: 1 }).apply_to_histogram(&mut probs);
        assert!(probs.iter().any(|p| *p < 0.0));
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let plan = FaultPlan::new(0)
            .with(Fault::NanHistogram { count: 3 })
            .with(Fault::DropSamples { rate: 1.0 })
            .with(Fault::TruncateTrace { keep_fraction: 0.0 });
        plan.apply_to_histogram(&mut []);
        let mut empty: Vec<f64> = Vec::new();
        plan.apply_to_samples(&mut empty);
        let mut t = Trace::new();
        plan.apply_to_trace(&mut t);
        assert!(t.is_empty());
    }
}
