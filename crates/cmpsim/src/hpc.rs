//! Hardware performance counter emulation.
//!
//! Stands in for PAPI in the paper's setup: the simulator advances per-core
//! event counters, and the sampler converts counter deltas over each
//! sampling period into *event rates* (events per second). The five rates
//! the paper's power model uses (§4.1) are L1RPS, L2RPS, L2MPS, BRPS, and
//! FPPS; instructions per second is also tracked because the ground-truth
//! power function (but deliberately *not* the fitted model) depends on it.

/// Cumulative event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    /// Instructions retired.
    pub instructions: u64,
    /// L1 data-cache references.
    pub l1_refs: u64,
    /// L2 cache references (L1 misses reaching the L2).
    pub l2_refs: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// Branch instructions retired.
    pub branches: u64,
    /// Floating-point operations retired.
    pub fp_ops: u64,
    /// Prefetch requests issued (diagnostic; not a model feature).
    pub prefetches: u64,
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        self.instructions += other.instructions;
        self.l1_refs += other.l1_refs;
        self.l2_refs += other.l2_refs;
        self.l2_misses += other.l2_misses;
        self.branches += other.branches;
        self.fp_ops += other.fp_ops;
        self.prefetches += other.prefetches;
    }

    /// Converts counts accumulated over `dt` seconds into rates.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn rates(&self, dt: f64) -> EventRates {
        assert!(dt > 0.0, "sampling interval must be positive, got {dt}");
        EventRates {
            ips: self.instructions as f64 / dt,
            l1rps: self.l1_refs as f64 / dt,
            l2rps: self.l2_refs as f64 / dt,
            l2mps: self.l2_misses as f64 / dt,
            brps: self.branches as f64 / dt,
            fpps: self.fp_ops as f64 / dt,
        }
    }
}

/// Event rates over one sampling period (events per second).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EventRates {
    /// Instructions per second.
    pub ips: f64,
    /// L1 data-cache references per second (paper: L1RPS).
    pub l1rps: f64,
    /// L2 references per second (paper: L2RPS).
    pub l2rps: f64,
    /// L2 misses per second (paper: L2MPS).
    pub l2mps: f64,
    /// Branches retired per second (paper: BRPS).
    pub brps: f64,
    /// Floating-point operations retired per second (paper: FPPS).
    pub fpps: f64,
}

impl EventRates {
    /// The five-feature vector of the paper's power model (Eq. 9), in
    /// order: L1RPS, L2RPS, L2MPS, BRPS, FPPS.
    pub fn paper_features(&self) -> [f64; 5] {
        [self.l1rps, self.l2rps, self.l2mps, self.brps, self.fpps]
    }

    /// Elementwise sum (used to aggregate cores into processor rates).
    pub fn add(&self, other: &EventRates) -> EventRates {
        EventRates {
            ips: self.ips + other.ips,
            l1rps: self.l1rps + other.l1rps,
            l2rps: self.l2rps + other.l2rps,
            l2mps: self.l2mps + other.l2mps,
            brps: self.brps + other.brps,
            fpps: self.fpps + other.fpps,
        }
    }

    /// L2 misses per L2 reference (paper: L2MPR), or 0 when there are no
    /// references.
    pub fn l2mpr(&self) -> f64 {
        if self.l2rps > 0.0 {
            self.l2mps / self.l2rps
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_interval() {
        let c = CounterSet {
            instructions: 300,
            l1_refs: 90,
            l2_refs: 30,
            l2_misses: 6,
            branches: 45,
            fp_ops: 15,
            prefetches: 0,
        };
        let r = c.rates(3.0);
        assert_eq!(r.ips, 100.0);
        assert_eq!(r.l1rps, 30.0);
        assert_eq!(r.l2rps, 10.0);
        assert_eq!(r.l2mps, 2.0);
        assert_eq!(r.brps, 15.0);
        assert_eq!(r.fpps, 5.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CounterSet { instructions: 1, ..Default::default() };
        let b = CounterSet { instructions: 2, l2_misses: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.instructions, 3);
        assert_eq!(a.l2_misses, 5);
    }

    #[test]
    fn paper_features_order() {
        let r = EventRates { ips: 1.0, l1rps: 2.0, l2rps: 3.0, l2mps: 4.0, brps: 5.0, fpps: 6.0 };
        assert_eq!(r.paper_features(), [2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn l2mpr_handles_zero_refs() {
        let r = EventRates::default();
        assert_eq!(r.l2mpr(), 0.0);
        let r = EventRates { l2rps: 10.0, l2mps: 4.0, ..Default::default() };
        assert_eq!(r.l2mpr(), 0.4);
    }

    #[test]
    fn add_is_elementwise() {
        let a = EventRates { ips: 1.0, l1rps: 1.0, l2rps: 1.0, l2mps: 1.0, brps: 1.0, fpps: 1.0 };
        let s = a.add(&a);
        assert_eq!(s.ips, 2.0);
        assert_eq!(s.fpps, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        CounterSet::new().rates(0.0);
    }
}
