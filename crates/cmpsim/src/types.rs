//! Identifier and unit newtypes shared across the simulator.

use std::fmt;

/// A cache-line-granular memory address. The low bits select the set
/// (`addr % num_sets`) and the full value doubles as the tag.
// Derived PartialOrd on integer fields expands to the banned partial_cmp.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The next sequential line (used by streaming patterns and the
    /// prefetcher).
    pub fn next(self) -> LineAddr {
        LineAddr(self.0.wrapping_add(1))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Identifies a simulated process within one simulation run.
// Derived PartialOrd on integer fields expands to the banned partial_cmp.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a core within a machine (dense, `0..num_cores`).
// Derived PartialOrd on integer fields expands to the banned partial_cmp.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifies a die (a group of cores sharing one L2 cache).
// Derived PartialOrd on integer fields expands to the banned partial_cmp.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DieId(pub u32);

impl fmt::Display for DieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Simulated time in cycles of the machine's base clock.
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_next_wraps() {
        assert_eq!(LineAddr(1).next(), LineAddr(2));
        assert_eq!(LineAddr(u64::MAX).next(), LineAddr(0));
    }

    #[test]
    fn displays() {
        assert_eq!(LineAddr(255).to_string(), "0xff");
        assert_eq!(ProcessId(3).to_string(), "P3");
        assert_eq!(CoreId(1).to_string(), "C1");
        assert_eq!(DieId(0).to_string(), "D0");
    }

    #[test]
    fn ordering_and_hash_derives_usable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ProcessId(1));
        assert!(s.contains(&ProcessId(1)));
        assert!(CoreId(0) < CoreId(1));
    }
}
